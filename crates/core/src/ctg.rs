//! The Context Transition Graph (§3.1, §4.1; Figure 6).
//!
//! `CTG(v, x)` is a multigraph whose nodes pair schema-tree nodes with
//! template rules that may match their instances, and whose edges record
//! possible context transitions: an edge `((n1,r1), (n2,r2), a)` exists
//! when rule `r1`, fired on an instance of `n1`, can — through the
//! apply-templates node `a` — lead rule `r2` to fire on an instance of
//! `n2` (mode(a) = mode(r2)). Each edge carries the select-match subtree
//! produced by `COMBINE(SELECTQ(n1, a, n2), MATCHQ(n2, r2))`.

use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xslt::{Stylesheet, DEFAULT_MODE};

use crate::combine::combine;
use crate::error::{Error, Result};
use crate::matchq::matchq;
use crate::selectq::selectq_all;
use crate::tree_pattern::TreePattern;

/// A CTG node `(n, r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtgNode {
    /// The schema-tree node (possibly the implied root).
    pub view: ViewNodeId,
    /// Index of the template rule in the stylesheet.
    pub rule: usize,
}

/// A CTG edge with its select-match subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct CtgEdge {
    /// Index of the source node in [`Ctg::nodes`].
    pub from: usize,
    /// Index of the target node in [`Ctg::nodes`].
    pub to: usize,
    /// Index of the apply-templates node within the source rule
    /// (document order, per [`xvc_xslt::TemplateRule::apply_templates`]).
    pub apply_idx: usize,
    /// The select-match subtree `smt(e)`.
    pub smt: TreePattern,
}

/// The context transition graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Ctg {
    /// Nodes, in (view pre-order, rule index) order before pruning.
    pub nodes: Vec<CtgNode>,
    /// Edges, grouped by source in construction order.
    pub edges: Vec<CtgEdge>,
}

impl Ctg {
    /// Entry nodes: `(root, r)` pairs in the default mode — where XSLT
    /// processing starts (`PROCESS(x, root, #default)`).
    pub fn entry_nodes(&self, view: &SchemaTree, stylesheet: &Stylesheet) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| view.is_root(n.view) && stylesheet.rules[n.rule].mode == DEFAULT_MODE)
            .map(|(i, _)| i)
            .collect()
    }

    /// Outgoing edge indices of a node, in construction order.
    pub fn outgoing(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.from == node)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if the edge relation contains a cycle (recursion, §5.3).
    pub fn has_cycle(&self) -> Option<usize> {
        // Iterative DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, next-edge-cursor)
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                let succs: Vec<usize> = self
                    .edges
                    .iter()
                    .filter(|e| e.from == node)
                    .map(|e| e.to)
                    .collect();
                if *cursor < succs.len() {
                    let next = succs[*cursor];
                    *cursor += 1;
                    match color[next] {
                        Color::Gray => return Some(next),
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Renders the CTG as Graphviz DOT (for visual inspection of larger
    /// compositions; the Figure 6 artwork is a drawing of this graph).
    pub fn to_dot(&self, view: &SchemaTree, stylesheet: &Stylesheet) -> String {
        let mut out = String::from("digraph ctg {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let view_label = if view.is_root(n.view) {
                "(0, root)".to_owned()
            } else {
                let vn = view.node(n.view).expect("non-root");
                format!("({}, {})", vn.id, vn.tag)
            };
            out.push_str(&format!(
                "  n{i} [label=\"({view_label}, R{})\"];\n",
                n.rule + 1
            ));
        }
        for e in &self.edges {
            let select = stylesheet.rules[self.nodes[e.from].rule]
                .apply_templates()
                .get(e.apply_idx)
                .map(|a| a.select.to_string())
                .unwrap_or_default()
                .replace('\"', "\\\"");
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{select}\"];\n",
                e.from, e.to
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Renders the CTG in the Figure 6 style: one line per node, edges
    /// with their select-match subtrees beneath.
    pub fn render(&self, view: &SchemaTree, stylesheet: &Stylesheet) -> String {
        let mut out = String::new();
        let label = |i: usize| {
            let n = &self.nodes[i];
            let view_label = if view.is_root(n.view) {
                "(0, root)".to_owned()
            } else {
                let vn = view.node(n.view).expect("non-root");
                format!("({}, {})", vn.id, vn.tag)
            };
            format!("({view_label}, R{})", n.rule + 1)
        };
        out.push_str("nodes:\n");
        for i in 0..self.nodes.len() {
            out.push_str(&format!("  {}\n", label(i)));
        }
        out.push_str("edges:\n");
        for (k, e) in self.edges.iter().enumerate() {
            let select = stylesheet.rules[self.nodes[e.from].rule]
                .apply_templates()
                .get(e.apply_idx)
                .map(|a| a.select.to_string())
                .unwrap_or_default();
            out.push_str(&format!(
                "  e{}: {} -> {}  [select {}]\n",
                k + 1,
                label(e.from),
                label(e.to),
                select,
            ));
            for line in e.smt.render(view).lines() {
                out.push_str("      ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// Builds `CTG(v, x)` (Figure 9 lines 1–15), including the dead-node
/// pruning of line 15.
pub fn build_ctg(view: &SchemaTree, stylesheet: &Stylesheet) -> Result<Ctg> {
    // Lines 4–7: nodes (n, r) with MATCHQ(n, r) ≠ NULL.
    let mut nodes = Vec::new();
    for vid in view.ids() {
        for (ri, rule) in stylesheet.rules.iter().enumerate() {
            if matchq(view, vid, &rule.match_pattern)?.is_some() {
                nodes.push(CtgNode {
                    view: vid,
                    rule: ri,
                });
            }
        }
    }

    // Lines 8–14: edges.
    let mut edges = Vec::new();
    for (i, n1) in nodes.iter().enumerate() {
        let r1 = &stylesheet.rules[n1.rule];
        for (apply_idx, a) in r1.apply_templates().iter().enumerate() {
            for (j, n2) in nodes.iter().enumerate() {
                let r2 = &stylesheet.rules[n2.rule];
                if a.mode != r2.mode {
                    continue;
                }
                let Some(p) = matchq(view, n2.view, &r2.match_pattern)? else {
                    continue;
                };
                for t in selectq_all(view, n1.view, &a.select)? {
                    if t.view(t.new_context) != n2.view {
                        continue;
                    }
                    let smt = combine(view, &t, &p)?;
                    edges.push(CtgEdge {
                        from: i,
                        to: j,
                        apply_idx,
                        smt,
                    });
                }
            }
        }
    }

    // Line 15: repeatedly delete nodes without incoming edges, except the
    // (root, r) entry nodes.
    let mut ctg = Ctg { nodes, edges };
    loop {
        let keep: Vec<bool> = ctg
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let is_entry =
                    view.is_root(n.view) && stylesheet.rules[n.rule].mode == DEFAULT_MODE;
                is_entry || ctg.edges.iter().any(|e| e.to == i)
            })
            .collect();
        if keep.iter().all(|&k| k) {
            break;
        }
        let mut remap = vec![usize::MAX; ctg.nodes.len()];
        let mut new_nodes = Vec::new();
        for (i, n) in ctg.nodes.iter().enumerate() {
            if keep[i] {
                remap[i] = new_nodes.len();
                new_nodes.push(n.clone());
            }
        }
        let new_edges = ctg
            .edges
            .iter()
            .filter(|e| keep[e.from] && keep[e.to])
            .map(|e| CtgEdge {
                from: remap[e.from],
                to: remap[e.to],
                apply_idx: e.apply_idx,
                smt: e.smt.clone(),
            })
            .collect();
        ctg = Ctg {
            nodes: new_nodes,
            edges: new_edges,
        };
    }
    if ctg.entry_nodes(view, stylesheet).is_empty() {
        return Err(Error::NotComposable {
            reason: "no template rule matches the document root in the default mode".into(),
        });
    }
    Ok(ctg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::figure1_view;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn node_label(ctg: &Ctg, view: &SchemaTree, i: usize) -> (u32, usize) {
        let n = &ctg.nodes[i];
        let paper_id = if view.is_root(n.view) {
            0
        } else {
            view.node(n.view).unwrap().id
        };
        (paper_id, n.rule)
    }

    #[test]
    fn figure6_ctg() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        // Figure 6: four nodes — ((0,root),R1), ((1,metro),R2),
        // ((4,confstat),R3), ((5,confroom),R4).
        let mut labels: Vec<(u32, usize)> = (0..ctg.nodes.len())
            .map(|i| node_label(&ctg, &v, i))
            .collect();
        labels.sort();
        assert_eq!(labels, vec![(0, 0), (1, 1), (4, 2), (5, 3)]);
        // Three edges e1, e2, e3 along the chain.
        assert_eq!(ctg.edges.len(), 3);
        assert!(ctg.has_cycle().is_none());
        assert_eq!(ctg.entry_nodes(&v, &x).len(), 1);
    }

    #[test]
    fn pruning_removes_unreachable_matches() {
        // R3 (confstat) also matches the metro-level confstat (id 2), but
        // nothing selects it — so ((2, confstat), R3) must be pruned.
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let metro_confstat = v.find_by_paper_id(2).unwrap();
        assert!(ctg.nodes.iter().all(|n| n.view != metro_confstat));
    }

    #[test]
    fn render_lists_nodes_and_edges() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let r = ctg.render(&v, &x);
        assert!(r.contains("((0, root), R1)"));
        assert!(r.contains("((4, confstat), R3)"));
        assert!(r.contains("[select hotel/confstat]"));
        assert!(r.contains("query context node"));
    }

    #[test]
    fn dot_rendering_is_wellformed() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let dot = ctg.to_dot(&v, &x);
        assert!(dot.starts_with("digraph ctg {"), "{dot}");
        assert_eq!(dot.matches(" -> ").count(), 3, "{dot}");
        assert!(dot.contains("(1, metro), R2"), "{dot}");
        assert!(dot.contains("label=\"hotel/confstat\""), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }

    #[test]
    fn detects_recursive_stylesheets() {
        // A stylesheet that cycles between hotel and confstat via the
        // parent axis.
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h><xsl:apply-templates select="confstat"/></h>
                 </xsl:template>
                 <xsl:template match="confstat">
                   <c><xsl:apply-templates select=".."/></c>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        assert!(ctg.has_cycle().is_some());
    }

    #[test]
    fn no_root_rule_is_an_error() {
        let v = figure1_view();
        let x = parse_stylesheet(
            "<xsl:stylesheet><xsl:template match=\"metro\"><m/></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        assert!(matches!(
            build_ctg(&v, &x),
            Err(Error::NotComposable { .. })
        ));
    }

    #[test]
    fn modes_gate_edges() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro" mode="a"/></xsl:template>
                 <xsl:template match="metro" mode="b"><m/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        // Mode mismatch: the metro rule is unreachable and gets pruned,
        // leaving just the entry node with no edges.
        let ctg = build_ctg(&v, &x).unwrap();
        assert_eq!(ctg.edges.len(), 0);
        assert_eq!(ctg.nodes.len(), 1);
    }
}
