//! Steps 3 and 4: output tag trees and the final stylesheet view
//! (§4.3, §4.4; Figures 7(b), 7(c), 14, 15, 16).
//!
//! Conceptually the paper first builds one output tag tree per TVQ node
//! (the rule's output fragment under a pseudo-root), connects them along
//! TVQ edges at the apply-templates positions, copies each TVQ node's tag
//! query onto its pseudo-root, and then removes pseudo-roots by pushing
//! queries down into their children. This module fuses those steps: it
//! walks the TVQ and instantiates each rule's output fragment directly
//! into the result [`SchemaTree`], carrying the tag query as a *carrier*
//! that the fragment's top-level nodes absorb:
//!
//! * a top-level literal element absorbs the query (generated once per
//!   tuple, publishing no tuple data — Figure 7(c)'s `<result_confstat>`);
//! * a top-level `<xsl:value-of select="."/>` absorbs the query *and*
//!   publishes the tuple (Figure 7(c)'s `<confroom>`);
//! * a top-level `<xsl:apply-templates>` triggers **forced unbinding**
//!   (Figures 15/16): the child TVQ node's query is unbound with the
//!   carrier query, the carrier's columns are added to its select list,
//!   and references to the vanished binding variable are renamed in the
//!   child's subtree (Figure 9 lines 33–42);
//! * nested occurrences of `value-of` become *context-copy* nodes
//!   ([`xvc_view::ViewNode::context_tuple_of`]), and `.[guard]`
//!   transitions produced by the §5.2 rewrites become guarded nodes.

use std::collections::HashMap;

use xvc_rel::eval::output_columns;
use xvc_rel::rewrite::{rename_params, unbind_param_nested};
use xvc_rel::{Catalog, ScalarExpr, SelectItem, SelectQuery};
use xvc_view::{AttrProjection, SchemaTree, ViewNode, ViewNodeId};
use xvc_xpath::{Axis, Expr, NodeTest};
use xvc_xslt::{OutputNode, Stylesheet};

use crate::error::{Error, Result};
use crate::tvq::Tvq;
use crate::unbind::UnboundQuery;

/// Builds the stylesheet view from the TVQ.
pub fn build_stylesheet_view(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    tvq: &Tvq,
    catalog: &Catalog,
) -> Result<SchemaTree> {
    let mut emitter = Emitter {
        view,
        stylesheet,
        tvq,
        catalog,
        out: SchemaTree::new(),
        next_id: 1,
        lit_counter: 0,
        copy_counter: 0,
        used_bvs: std::collections::HashSet::new(),
    };
    for &root in &tvq.roots {
        let out_root = emitter.out.root();
        emitter.emit_tvq_node(root, out_root, None, &HashMap::new())?;
    }
    let out = emitter.out;
    out.validate()?;
    Ok(out)
}

/// What a fragment's top-level nodes absorb.
#[derive(Debug, Clone)]
enum Carrier {
    /// Entry node: fragment elements are pure literals.
    None,
    /// A tag query; absorbing elements iterate its tuples.
    Query(SelectQuery),
    /// A reused binding with an optional guard.
    Rebind {
        source: String,
        guard: Option<ScalarExpr>,
    },
}

struct Emitter<'a> {
    view: &'a SchemaTree,
    stylesheet: &'a Stylesheet,
    tvq: &'a Tvq,
    catalog: &'a Catalog,
    out: SchemaTree,
    next_id: u32,
    lit_counter: usize,
    copy_counter: usize,
    /// Binding variables already bound by emitted nodes: several sibling
    /// elements can absorb the same carrier (a multi-element fragment, or
    /// guarded self-transitions folded into copies of one query), and each
    /// needs its own variable.
    used_bvs: std::collections::HashSet<String>,
}

impl Emitter<'_> {
    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Claims a binding variable for an emitted query node, uniquifying on
    /// collision (`m_new`, `m_new__2`, …).
    fn claim_bv(&mut self, wanted: &str) -> String {
        if self.used_bvs.insert(wanted.to_owned()) {
            return wanted.to_owned();
        }
        let mut i = 2;
        loop {
            let cand = format!("{wanted}__{i}");
            if self.used_bvs.insert(cand.clone()) {
                return cand;
            }
            i += 1;
        }
    }

    /// Emits TVQ node `w` under `parent_vid`. `carrier_override` replaces
    /// the node's own binding (forced unbinding); `renames` maps binding
    /// variables that were eliminated upstream.
    fn emit_tvq_node(
        &mut self,
        w_idx: usize,
        parent_vid: ViewNodeId,
        carrier_override: Option<Carrier>,
        renames: &HashMap<String, String>,
    ) -> Result<()> {
        let w = &self.tvq.nodes[w_idx];
        let carrier = match carrier_override {
            Some(c) => c,
            None => {
                if w.is_entry {
                    Carrier::None
                } else {
                    match &w.binding {
                        UnboundQuery::Query(q) => {
                            let mut q = q.clone();
                            rename_params(&mut q, renames);
                            Carrier::Query(q)
                        }
                        UnboundQuery::Rebind { source, guard } => Carrier::Rebind {
                            source: renames
                                .get(source)
                                .cloned()
                                .unwrap_or_else(|| source.clone()),
                            guard: guard.clone().map(|g| rename_scalar(g, renames)),
                        },
                        // Literal transition target: once per parent, no tuple.
                        UnboundQuery::Literal => Carrier::None,
                    }
                }
            }
        };
        let ctx_bv: Option<String> = if w.is_entry {
            None
        } else {
            match &carrier {
                Carrier::Query(_) => Some(w.bv.clone()),
                Carrier::Rebind { source, .. } => Some(source.clone()),
                Carrier::None => None,
            }
        };
        let output = self.stylesheet.rules[w.rule].output.clone();
        let mut apply_counter = 0usize;
        for node in &output {
            self.emit_fragment(
                node,
                parent_vid,
                Some(&carrier),
                w_idx,
                ctx_bv.as_deref(),
                &mut apply_counter,
                renames,
            )?;
        }
        Ok(())
    }

    /// Emits one output-fragment node. `carrier` is `Some` only at the top
    /// level of a rule's fragment (the pseudo-root's children).
    #[allow(clippy::too_many_arguments)]
    fn emit_fragment(
        &mut self,
        node: &OutputNode,
        parent_vid: ViewNodeId,
        carrier: Option<&Carrier>,
        w_idx: usize,
        ctx_bv: Option<&str>,
        apply_counter: &mut usize,
        renames: &HashMap<String, String>,
    ) -> Result<()> {
        match node {
            OutputNode::Element {
                name,
                attrs,
                children,
            } => {
                // Prescan: value-of/copy-of on attributes attach to this
                // element rather than becoming nodes.
                let mut attr_cols: Vec<String> = Vec::new();
                let mut body: Vec<&OutputNode> = Vec::new();
                for c in children {
                    if let Some(a) = as_attr_select(c) {
                        if !attr_cols.contains(&a) {
                            attr_cols.push(a);
                        }
                    } else {
                        body.push(c);
                    }
                }
                let id = self.fresh_id();
                let mut claimed: Option<(String, String)> = None;
                let vnode = match carrier {
                    Some(Carrier::Query(q)) => {
                        let wanted = self.tvq.nodes[w_idx].bv.clone();
                        let bv = self.claim_bv(&wanted);
                        if bv != wanted {
                            claimed = Some((wanted, bv.clone()));
                        }
                        ViewNode {
                            id,
                            tag: name.clone(),
                            bv,
                            query: Some(q.clone()),
                            attrs: projection(&attr_cols),
                            static_attrs: attrs.clone(),
                            context_tuple_of: None,
                            guard: None,
                            query_span: Default::default(),
                        }
                    }
                    Some(Carrier::Rebind { source, guard }) => {
                        let w = &self.tvq.nodes[w_idx];
                        ViewNode {
                            id,
                            tag: name.clone(),
                            bv: w.bv.clone(),
                            query: None,
                            attrs: projection(&attr_cols),
                            static_attrs: attrs.clone(),
                            context_tuple_of: Some(source.clone()),
                            guard: guard.clone(),
                            query_span: Default::default(),
                        }
                    }
                    Some(Carrier::None) | None => {
                        if attr_cols.is_empty() {
                            let mut n = ViewNode::literal(id, name.clone());
                            n.static_attrs = attrs.clone();
                            n
                        } else {
                            // Nested literal carrying tuple attributes:
                            // a parameter-projection query.
                            let ctx = ctx_bv.ok_or_else(|| Error::NotComposable {
                                reason: format!(
                                    "<xsl:value-of select=\"@...\"/> inside <{name}> has no \
                                     context tuple (rule matching the document root)"
                                ),
                            })?;
                            self.lit_counter += 1;
                            let q = SelectQuery::new(
                                attr_cols
                                    .iter()
                                    .map(|a| SelectItem::aliased(ScalarExpr::param(ctx, a), a))
                                    .collect(),
                                vec![],
                            );
                            ViewNode {
                                id,
                                tag: name.clone(),
                                bv: format!("__lit{}", self.lit_counter),
                                query: Some(q),
                                attrs: AttrProjection::Columns(attr_cols.clone()),
                                static_attrs: attrs.clone(),
                                context_tuple_of: None,
                                guard: None,
                                query_span: Default::default(),
                            }
                        }
                    }
                };
                let node_bv = vnode.bv.clone();
                let vid = self.out.add_child(parent_vid, vnode)?;
                // Cascade a bv rename (and the new context variable) into
                // the element's subtree when the carrier variable was
                // uniquified.
                let (sub_renames, sub_ctx);
                let (renames_ref, ctx_ref): (&HashMap<String, String>, Option<&str>) = match claimed
                {
                    Some((old, new)) => {
                        let mut m = renames.clone();
                        m.insert(old, new);
                        sub_renames = m;
                        sub_ctx = node_bv;
                        (&sub_renames, Some(sub_ctx.as_str()))
                    }
                    None => (renames, ctx_bv),
                };
                for c in body {
                    self.emit_fragment(c, vid, None, w_idx, ctx_ref, apply_counter, renames_ref)?;
                }
                Ok(())
            }
            OutputNode::ApplyTemplates(_) => {
                let ordinal = *apply_counter;
                *apply_counter += 1;
                let children: Vec<usize> = self.tvq.nodes[w_idx]
                    .children
                    .iter()
                    .filter(|&&(_, a)| a == ordinal)
                    .map(|&(c, _)| c)
                    .collect();
                match carrier {
                    // Top-level apply-templates: forced unbinding
                    // (Figures 15/16, Figure 9 lines 33–42).
                    Some(Carrier::Query(q_parent)) => {
                        let parent_bv = self.tvq.nodes[w_idx].bv.clone();
                        for c in children {
                            self.emit_forced(c, parent_vid, q_parent.clone(), &parent_bv, renames)?;
                        }
                        Ok(())
                    }
                    Some(Carrier::Rebind { source, guard }) => {
                        // The rule has no output of its own and its context
                        // is a reused tuple: children keep their own
                        // queries; the guard gates them.
                        for c in children {
                            let w2 = &self.tvq.nodes[c];
                            let override_carrier = match (&w2.binding, guard) {
                                (UnboundQuery::Query(q2), Some(g)) => {
                                    let mut q2 = q2.clone();
                                    q2.and_where(g.clone());
                                    Some(Carrier::Query(q2))
                                }
                                (
                                    UnboundQuery::Rebind {
                                        source: s2,
                                        guard: g2,
                                    },
                                    g,
                                ) => {
                                    let merged = match (g2.clone(), g.clone()) {
                                        (None, None) => None,
                                        (Some(a), None) | (None, Some(a)) => Some(a),
                                        (Some(a), Some(b)) => {
                                            Some(ScalarExpr::binary(xvc_rel::BinOp::And, a, b))
                                        }
                                    };
                                    Some(Carrier::Rebind {
                                        source: s2.clone(),
                                        guard: merged,
                                    })
                                }
                                _ => None,
                            };
                            let _ = source;
                            self.emit_tvq_node(c, parent_vid, override_carrier, renames)?;
                        }
                        Ok(())
                    }
                    // Entry node (root rule) or nested position: children
                    // attach where the apply node sat.
                    Some(Carrier::None) | None => {
                        for c in children {
                            self.emit_tvq_node(c, parent_vid, None, renames)?;
                        }
                        Ok(())
                    }
                }
            }
            OutputNode::ValueOf { select, .. } | OutputNode::CopyOf { select, .. } => {
                let deep = matches!(node, OutputNode::CopyOf { .. });
                match classify_value_select(select) {
                    ValueSelect::Context => {
                        self.emit_context_value(parent_vid, carrier, w_idx, ctx_bv, deep, renames)
                    }
                    ValueSelect::Attribute(a) => Err(Error::NotComposable {
                        reason: format!(
                            "<xsl:value-of select=\"@{a}\"/> outside a literal \
                             result element has nothing to attach to"
                        ),
                    }),
                    ValueSelect::Other => Err(Error::NotComposable {
                        reason: format!(
                            "value-of/copy-of select `{select}` is outside XSLT_basic \
                             restriction (10); lower it with the §5.2 rewrites first"
                        ),
                    }),
                }
            }
            OutputNode::Text(_) => Err(Error::NotComposable {
                reason: "literal text in an output fragment (the paper's output \
                         model is attribute-only, §2.2.2 restriction (10))"
                    .into(),
            }),
            OutputNode::If { .. } | OutputNode::Choose { .. } | OutputNode::ForEach { .. } => {
                Err(Error::NotComposable {
                    reason: "flow-control element in an output fragment; lower the \
                             stylesheet first via Composer::rewrites(true) (§5.2)"
                        .into(),
                })
            }
        }
    }

    /// `<xsl:value-of select="."/>` / `<xsl:copy-of select="."/>`:
    /// a copy of the context element (Figure 7(c)'s `<confroom>` node).
    fn emit_context_value(
        &mut self,
        parent_vid: ViewNodeId,
        carrier: Option<&Carrier>,
        w_idx: usize,
        ctx_bv: Option<&str>,
        deep: bool,
        renames: &HashMap<String, String>,
    ) -> Result<()> {
        let w = &self.tvq.nodes[w_idx];
        let view_node = self.view.node(w.view).ok_or_else(|| Error::NotComposable {
            reason: "value-of \".\" in a rule matching the document root".into(),
        })?;
        // A literal context node: its copy is a literal clone (tag +
        // static attributes).
        if view_node.query.is_none() && view_node.context_tuple_of.is_none() {
            let id = self.fresh_id();
            let mut clone = ViewNode::literal(id, view_node.tag.clone());
            clone.static_attrs = view_node.static_attrs.clone();
            let vid = self.out.add_child(parent_vid, clone)?;
            if deep {
                let map = HashMap::new();
                let children: Vec<ViewNodeId> = self.view.children(w.view).to_vec();
                for c in children {
                    self.graft_subtree(c, vid, &map)?;
                }
            }
            return Ok(());
        }
        let tag = view_node.tag.clone();
        let orig_bv = view_node.bv.clone();
        // The composed tuple is wider than the original element (ancestor
        // columns ride along through `TEMP.*`); publish exactly the
        // original node's columns so the copy matches the XSLT output.
        let orig_cols = match &view_node.query {
            Some(q) => AttrProjection::Columns(output_columns(q, self.catalog)?),
            None => AttrProjection::All,
        };
        let id = self.fresh_id();
        let vnode = match carrier {
            Some(Carrier::Query(q)) => {
                let wanted = w.bv.clone();
                let bv = self.claim_bv(&wanted);
                ViewNode {
                    id,
                    tag,
                    bv,
                    query: Some(q.clone()),
                    attrs: orig_cols,
                    static_attrs: Vec::new(),
                    context_tuple_of: None,
                    guard: None,
                    query_span: Default::default(),
                }
            }
            Some(Carrier::Rebind { source, guard }) => ViewNode {
                id,
                tag,
                bv: w.bv.clone(),
                query: None,
                attrs: orig_cols,
                static_attrs: Vec::new(),
                context_tuple_of: Some(source.clone()),
                guard: guard.clone(),
                query_span: Default::default(),
            },
            Some(Carrier::None) | None => {
                let ctx = ctx_bv.ok_or_else(|| Error::NotComposable {
                    reason: "value-of \".\" has no context tuple here".into(),
                })?;
                self.copy_counter += 1;
                ViewNode {
                    id,
                    tag,
                    bv: format!("__ctx{}", self.copy_counter),
                    query: None,
                    attrs: orig_cols,
                    static_attrs: Vec::new(),
                    context_tuple_of: Some(ctx.to_owned()),
                    guard: None,
                    query_span: Default::default(),
                }
            }
        };
        let node_bv = vnode.bv.clone();
        let vid = self.out.add_child(parent_vid, vnode)?;
        if deep {
            // copy-of: re-publish the original subtree beneath the copy.
            let mut map = self.tvq.nodes[w_idx].bvmap.clone();
            for v in map.values_mut() {
                if let Some(r) = renames.get(v) {
                    *v = r.clone();
                }
            }
            map.insert(orig_bv, node_bv);
            let children: Vec<ViewNodeId> = self.view.children(w.view).to_vec();
            for c in children {
                self.graft_subtree(c, vid, &map)?;
            }
        }
        Ok(())
    }

    /// Deep-copies an original view subtree into the output, renaming
    /// binding variables so grafted tag queries reference output bindings.
    fn graft_subtree(
        &mut self,
        orig: ViewNodeId,
        parent_vid: ViewNodeId,
        bv_renames: &HashMap<String, String>,
    ) -> Result<()> {
        let n = self.view.node(orig).expect("non-root").clone();
        self.copy_counter += 1;
        let new_bv = format!("{}__cp{}", n.bv, self.copy_counter);
        let mut map = bv_renames.clone();
        map.insert(n.bv.clone(), new_bv.clone());
        let mut query = n.query.clone();
        if let Some(q) = &mut query {
            rename_params(q, &map);
        }
        let id = self.fresh_id();
        let vid = self.out.add_child(
            parent_vid,
            ViewNode {
                id,
                tag: n.tag.clone(),
                bv: new_bv,
                query,
                attrs: n.attrs.clone(),
                static_attrs: n.static_attrs.clone(),
                context_tuple_of: None,
                guard: None,
                query_span: Default::default(),
            },
        )?;
        let children: Vec<ViewNodeId> = self.view.children(orig).to_vec();
        for c in children {
            self.graft_subtree(c, vid, &map)?;
        }
        Ok(())
    }

    /// Forced unbinding (Figures 15/16): the parent rule produced no
    /// element; the child's query swallows the parent's query as a derived
    /// table and the parent's binding variable disappears.
    fn emit_forced(
        &mut self,
        child_idx: usize,
        parent_vid: ViewNodeId,
        parent_query: SelectQuery,
        parent_bv: &str,
        renames: &HashMap<String, String>,
    ) -> Result<()> {
        let child = &self.tvq.nodes[child_idx];
        match &child.binding {
            UnboundQuery::Query(q2) => {
                let mut q2 = q2.clone();
                rename_params(&mut q2, renames);
                unbind_param_nested(&mut q2, parent_bv, &parent_query, self.catalog)?;
                // References to the vanished parent binding in the child's
                // subtree now resolve through the child's own tuple
                // (Figure 9 line 41).
                let mut child_renames = renames.clone();
                child_renames.insert(parent_bv.to_owned(), child.bv.clone());
                self.emit_tvq_node(
                    child_idx,
                    parent_vid,
                    Some(Carrier::Query(q2)),
                    &child_renames,
                )?;
                Ok(())
            }
            UnboundQuery::Rebind { source, guard } if source == parent_bv => {
                // A guarded self-transition under an output-less rule: the
                // parent's tuple is never materialized, so the child's
                // elements iterate the parent query directly, with the
                // guard folded in (WHERE for plain columns, HAVING for
                // aggregate outputs).
                let mut q2 = parent_query;
                if let Some(g) = guard {
                    fold_guard_into_query(&mut q2, g, source)?;
                }
                self.emit_tvq_node(child_idx, parent_vid, Some(Carrier::Query(q2)), renames)
            }
            UnboundQuery::Rebind { .. } => self.emit_tvq_node(child_idx, parent_vid, None, renames),
            // A literal child under an output-less rule: the parent query's
            // tuples are never materialized, but the child occurs once per
            // parent *tuple* — absorb the parent query with no published
            // data by handing it down as the carrier.
            UnboundQuery::Literal => self.emit_tvq_node(
                child_idx,
                parent_vid,
                Some(Carrier::Query(parent_query)),
                renames,
            ),
        }
    }
}

/// Folds a rebind guard (conditions over `$source.col`) into the query
/// that computes `source`'s tuples: `$source.col` resolves against the
/// query's own select list — aggregate outputs substitute their aggregate
/// expression and land in HAVING, everything else in WHERE. EXISTS
/// subqueries inside the guard correlate through unqualified columns.
fn fold_guard_into_query(q: &mut SelectQuery, guard: &ScalarExpr, source: &str) -> Result<()> {
    fn conjuncts<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
        match e {
            ScalarExpr::Binary {
                op: xvc_rel::BinOp::And,
                lhs,
                rhs,
            } => {
                conjuncts(lhs, out);
                conjuncts(rhs, out);
            }
            other => out.push(other),
        }
    }
    fn translate(
        e: &ScalarExpr,
        source: &str,
        q: &SelectQuery,
        has_agg: &mut bool,
    ) -> Result<ScalarExpr> {
        Ok(match e {
            ScalarExpr::Param { var, column } if var == source => {
                resolve_output_ref(q, column, has_agg)?
            }
            ScalarExpr::Binary { op, lhs, rhs } => ScalarExpr::Binary {
                op: *op,
                lhs: Box::new(translate(lhs, source, q, has_agg)?),
                rhs: Box::new(translate(rhs, source, q, has_agg)?),
            },
            ScalarExpr::Not(i) => ScalarExpr::Not(Box::new(translate(i, source, q, has_agg)?)),
            ScalarExpr::IsNull(i) => {
                ScalarExpr::IsNull(Box::new(translate(i, source, q, has_agg)?))
            }
            ScalarExpr::Exists(sub) => {
                let mut sub = sub.clone();
                xvc_rel::rewrite::visit_exprs(&mut sub, &mut |e| {
                    if let ScalarExpr::Param { var, column } = e {
                        if var == source {
                            *e = ScalarExpr::Column {
                                qualifier: None,
                                name: column.clone(),
                            };
                        }
                    }
                });
                ScalarExpr::Exists(sub)
            }
            other => other.clone(),
        })
    }
    let mut parts = Vec::new();
    conjuncts(guard, &mut parts);
    for part in parts {
        let mut has_agg = false;
        let translated = translate(part, source, q, &mut has_agg)?;
        if has_agg {
            q.and_having(translated);
        } else {
            q.and_where(translated);
        }
    }
    Ok(())
}

/// Resolves `$source.col` against the query's select list: aggregate items
/// substitute their expression (setting the HAVING flag); everything else
/// becomes a column reference.
fn resolve_output_ref(q: &SelectQuery, column: &str, has_agg: &mut bool) -> Result<ScalarExpr> {
    for item in &q.select {
        if let SelectItem::Expr { expr, alias } = item {
            let name = match alias {
                Some(a) => a.clone(),
                None => match expr {
                    ScalarExpr::Column { name, .. } => name.clone(),
                    ScalarExpr::Param { column, .. } => column.clone(),
                    ScalarExpr::Aggregate { func, .. } => func.default_column_name().to_owned(),
                    _ => continue,
                },
            };
            if name == column {
                if expr.contains_aggregate() {
                    *has_agg = true;
                }
                return Ok(expr.clone());
            }
        }
    }
    // Covered by a `*` item: plain column.
    Ok(ScalarExpr::col(column))
}

fn projection(attr_cols: &[String]) -> AttrProjection {
    if attr_cols.is_empty() {
        AttrProjection::None
    } else {
        AttrProjection::Columns(attr_cols.to_vec())
    }
}

/// Detects `<xsl:value-of select="@attr"/>` (also copy-of) as a child that
/// attaches an attribute to its parent element.
fn as_attr_select(node: &OutputNode) -> Option<String> {
    let (OutputNode::ValueOf { select, .. } | OutputNode::CopyOf { select, .. }) = node else {
        return None;
    };
    match classify_value_select(select) {
        ValueSelect::Attribute(a) => Some(a),
        _ => None,
    }
}

enum ValueSelect {
    /// `.`
    Context,
    /// `@attr`
    Attribute(String),
    /// anything else (outside restriction (10))
    Other,
}

fn classify_value_select(select: &Expr) -> ValueSelect {
    let Expr::Path(p) = select else {
        return ValueSelect::Other;
    };
    if p.absolute || p.steps.len() != 1 {
        return ValueSelect::Other;
    }
    let step = &p.steps[0];
    if !step.predicates.is_empty() {
        return ValueSelect::Other;
    }
    match (step.axis, &step.test) {
        (Axis::SelfAxis, NodeTest::Wildcard) => ValueSelect::Context,
        (Axis::Attribute, NodeTest::Name(a)) => ValueSelect::Attribute(a.clone()),
        _ => ValueSelect::Other,
    }
}

fn rename_scalar(g: ScalarExpr, renames: &HashMap<String, String>) -> ScalarExpr {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(g);
    rename_params(&mut probe, renames);
    probe.where_clause.take().expect("just set")
}
