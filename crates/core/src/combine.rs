//! `COMBINE(t, p)` — unification of select and match tree patterns (§3.5,
//! Figure 8; predicate conjunction per §5.1).
//!
//! The new query context node of the select pattern `t` and the (single)
//! context node of the match pattern `p` refer to the same schema-tree
//! node; they are unified, then parents are unified upward as long as both
//! exist. Where the match chain extends above the select pattern's top,
//! the select pattern is extended. Predicates of unified nodes are
//! conjoined.

use xvc_view::SchemaTree;

use crate::error::{Error, Result};
use crate::tree_pattern::TreePattern;

/// Combines a select pattern `t` (from [`crate::selectq()`]) with a match
/// pattern `p` (from [`crate::matchq()`]) into the select-match subtree for
/// a CTG edge.
pub fn combine(view: &SchemaTree, t: &TreePattern, p: &TreePattern) -> Result<TreePattern> {
    let mut out = t.clone();
    let mut u_t = out.new_context;
    let mut u_p = p.context;
    loop {
        if out.view(u_t) != p.view(u_p) {
            // The paper: "as COMBINE is used in this paper, they are
            // guaranteed to be the same schema-tree node" — reaching this
            // branch means the caller paired incompatible patterns.
            return Err(Error::NotComposable {
                reason: format!(
                    "COMBINE unification failed: select pattern node {:?} vs \
                     match pattern node {:?}",
                    view.tag(out.view(u_t)),
                    view.tag(p.view(u_p)),
                ),
            });
        }
        for pred in p.predicates(u_p) {
            out.add_predicate(u_t, pred.clone());
        }
        match (out.parent(u_t), p.parent(u_p)) {
            (_, None) => break,
            (Some(a), Some(b)) => {
                u_t = a;
                u_p = b;
            }
            (None, Some(b)) => {
                // Extend the select pattern upward with the match chain.
                let a = out.add_parent_above(u_t, p.view(b));
                u_t = a;
                u_p = b;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchq::matchq;
    use crate::paper_fixtures::figure1_view;
    use crate::selectq::selectq;
    use xvc_view::ViewNodeId;
    use xvc_xpath::{parse_path, parse_pattern};

    fn by_id(view: &SchemaTree, id: u32) -> ViewNodeId {
        view.find_by_paper_id(id).unwrap()
    }

    #[test]
    fn figure8_combine() {
        let v = figure1_view();
        // t: select(a in R3) from (4, confstat) to (5, confroom).
        let t = selectq(
            &v,
            by_id(&v, 4),
            &parse_path("../hotel_available/../confroom").unwrap(),
            by_id(&v, 5),
        )
        .unwrap()
        .remove(0);
        // p: match(R4) at (5, confroom).
        let p = matchq(
            &v,
            by_id(&v, 5),
            &parse_pattern("metro/hotel/confroom").unwrap(),
        )
        .unwrap()
        .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        // Figure 8 bottom: metro on top, hotel below, then the three
        // siblings — 5 nodes in total.
        assert_eq!(smt.len(), 5, "{}", smt.render(&v));
        assert_eq!(smt.view(smt.root()), by_id(&v, 1));
        assert_eq!(smt.view(smt.context), by_id(&v, 4));
        assert_eq!(smt.view(smt.new_context), by_id(&v, 5));
        let rendered = smt.render(&v);
        assert!(rendered.contains("metro"));
        assert!(rendered.contains("hotel_available"));
    }

    #[test]
    fn combine_merges_predicates() {
        let v = figure1_view();
        let t = selectq(
            &v,
            by_id(&v, 4),
            &parse_path("../hotel_available/../confroom[@capacity>250]").unwrap(),
            by_id(&v, 5),
        )
        .unwrap()
        .remove(0);
        let p = matchq(
            &v,
            by_id(&v, 5),
            &parse_pattern("metro[@metroname=\"chicago\"]/hotel/confroom").unwrap(),
        )
        .unwrap()
        .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        // The new-context confroom keeps its select predicate; the metro
        // node (added by extension) gains the match predicate.
        assert_eq!(smt.predicates(smt.new_context).len(), 1);
        let root = smt.root();
        assert_eq!(smt.view(root), by_id(&v, 1));
        assert_eq!(smt.predicates(root).len(), 1);
        assert_eq!(
            smt.predicates(root)[0].to_string(),
            "@metroname = 'chicago'"
        );
    }

    #[test]
    fn combine_simple_single_node_match() {
        let v = figure1_view();
        // Edge e2: select "hotel/confstat" from metro, match "confstat".
        let t = selectq(
            &v,
            by_id(&v, 1),
            &parse_path("hotel/confstat").unwrap(),
            by_id(&v, 4),
        )
        .unwrap()
        .remove(0);
        let p = matchq(&v, by_id(&v, 4), &parse_pattern("confstat").unwrap())
            .unwrap()
            .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        // metro → hotel → confstat chain; context metro, new ctx confstat.
        assert_eq!(smt.len(), 3);
        assert_eq!(smt.view(smt.context), by_id(&v, 1));
        assert_eq!(smt.view(smt.new_context), by_id(&v, 4));
    }

    #[test]
    fn root_edge_combine() {
        let v = figure1_view();
        // Edge e1: select "metro" from the root, match "metro".
        let t = selectq(&v, v.root(), &parse_path("metro").unwrap(), by_id(&v, 1))
            .unwrap()
            .remove(0);
        let p = matchq(&v, by_id(&v, 1), &parse_pattern("metro").unwrap())
            .unwrap()
            .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        assert_eq!(smt.len(), 2); // root + metro
        assert!(v.is_root(smt.view(smt.context)));
        assert_eq!(smt.view(smt.new_context), by_id(&v, 1));
    }
}
