//! §5.3 — handling recursion by partial pushdown (Figures 25–27).
//!
//! Recursive stylesheets (rules that cycle through the parent axis) cannot
//! be fully composed: the number of context transitions depends on runtime
//! values. The paper's approach — illustrated on Figures 25/26/27 and
//! described as "currently limited to only a few cases" — pushes the
//! *path computation* of one recursion round into the view as a pair of
//! materialized nodes (`..._down` / `..._up`), leaving the recursion
//! itself to a small residual stylesheet that bounces between them:
//!
//! * the **down query** composes the downward select path (minus its
//!   variable predicates, which cannot be evaluated at composition time);
//! * the **up query** is the down query further restricted by the upward
//!   path's value predicates (Figure 26's `HAVING COUNT(a_id) > 50`);
//! * the **residual stylesheet** (Figure 27) keeps the parameters, flow
//!   control and variable predicates, but navigates single steps between
//!   the two materialized siblings instead of re-traversing the original
//!   document — none of the intermediate `hotel` / `confstat` /
//!   `hotel_available` nodes are ever materialized.
//!
//! The supported shape is the paper's: an anchor rule matching a top-level
//! view node `A`, whose (only) recursive apply-templates walks a
//! child-axis path down to a node `B` matched by a second rule, which in
//! turn walks back up to `A` via self/parent steps. Like the paper's, the
//! rewrite preserves the recursion structure rather than being a verified
//! general-purpose equivalence (the paper argues it "by inspection").

use xvc_rel::eval::output_columns;
use xvc_rel::Catalog;
use xvc_view::{AttrProjection, SchemaTree, ViewNode, ViewNodeId};
use xvc_xpath::{Axis, Expr, NodeTest, PathExpr, Step};
use xvc_xslt::{ApplyTemplates, OutputNode, Stylesheet, TemplateRule};

use crate::combine::combine;
use crate::error::{Error, Result};
use crate::matchq::matchq;
use crate::predicate;
use crate::selectq::selectq;
use crate::unbind::{unbind_smt, UnboundQuery};

/// Result of the §5.3 partial pushdown.
#[derive(Debug, Clone)]
pub struct RecursiveComposition {
    /// The materialized view `v'` (Figure 26): the anchor node plus the
    /// `..._down` / `..._up` pair.
    pub view: SchemaTree,
    /// The residual stylesheet `x'` (Figure 27).
    pub stylesheet: Stylesheet,
    /// Tag of the materialized down node.
    pub down_tag: String,
    /// Tag of the materialized up node.
    pub up_tag: String,
}

/// Composes a recursive stylesheet with a view per §5.3.
///
/// Expects the Figure 25 shape (see module docs); anything else yields
/// [`Error::NotComposable`].
pub fn compose_recursive(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
) -> Result<RecursiveComposition> {
    view.validate()?;
    let shape = detect_shape(view, stylesheet)?;

    let ra = &stylesheet.rules[shape.anchor_rule];
    let rb = &stylesheet.rules[shape.inner_rule];

    // Compose the down path (variable predicates stripped).
    let t = selectq(view, shape.anchor, &shape.down_stripped, shape.target)?
        .into_iter()
        .next()
        .ok_or_else(|| Error::NotComposable {
            reason: "the downward select path does not reach the recursion target".into(),
        })?;
    let p = matchq(view, shape.target, &rb.match_pattern)?.ok_or_else(|| Error::NotComposable {
        reason: "the inner rule does not match the recursion target".into(),
    })?;
    let smt = combine(view, &t, &p)?;
    let anchor_bv = view
        .bv(shape.anchor)
        .expect("anchor is a query node")
        .to_owned();
    let mut bvmap = std::collections::HashMap::new();
    bvmap.insert(anchor_bv.clone(), anchor_bv.clone());
    let unbound = unbind_smt(view, &smt, "d", &bvmap, catalog)?;
    let UnboundQuery::Query(q_down) = unbound.query else {
        return Err(Error::NotComposable {
            reason: "the downward path is degenerate (no chain to unbind)".into(),
        });
    };

    // The up query: down query + the upward path's value predicates
    // (Figure 26's extra HAVING).
    let mut q_up = q_down.clone();
    for pred in &shape.up_value_preds {
        predicate::push_into_query(&mut q_up, pred)?;
    }

    // Published attributes: exactly the original target node's columns, so
    // the residual stylesheet sees the same attributes the original view
    // exposed (e.g. `@count`).
    let target_node = view.node(shape.target).expect("non-root");
    let target_query = target_node.query.as_ref().expect("query node");
    let b_cols = output_columns(target_query, catalog)?;

    let down_tag = format!("{}_down", target_node.tag);
    let up_tag = format!("{}_up", target_node.tag);

    // Build v' (Figure 26).
    let mut v2 = SchemaTree::new();
    let anchor_node = view.node(shape.anchor).expect("non-root").clone();
    let max_id = view
        .node_ids()
        .iter()
        .filter_map(|&i| view.node(i).map(|n| n.id))
        .max()
        .unwrap_or(0);
    let a2 = v2.add_root_node(anchor_node)?;
    v2.add_child(
        a2,
        ViewNode {
            id: max_id + 1,
            tag: down_tag.clone(),
            bv: "d".into(),
            query: Some(q_down),
            attrs: AttrProjection::Columns(b_cols.clone()),
            static_attrs: Vec::new(),
            context_tuple_of: None,
            guard: None,
            query_span: Default::default(),
        },
    )?;
    v2.add_child(
        a2,
        ViewNode {
            id: max_id + 2,
            tag: up_tag.clone(),
            bv: "u".into(),
            query: Some(q_up),
            attrs: AttrProjection::Columns(b_cols),
            static_attrs: Vec::new(),
            context_tuple_of: None,
            guard: None,
            query_span: Default::default(),
        },
    )?;
    v2.validate()?;

    // Build x' (Figure 27).
    let mut rules = Vec::new();
    // Keep a root driver rule if the stylesheet has one.
    for r in &stylesheet.rules {
        if r.match_pattern.steps.is_empty() && r.match_pattern.absolute {
            rules.push(r.clone());
        }
    }
    // R1': the anchor rule, its recursive select becoming a single child
    // step to the down node with the variable predicates re-applied.
    let down_select = PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name(down_tag.clone()),
            predicates: shape.down_var_preds.clone(),
        }],
    };
    let mut r1 = ra.clone();
    r1.output = replace_apply_select(&r1.output, &shape.down_select, &down_select);
    rules.push(r1);
    // R2': the inner rule re-anchored on the down node, recursing to the
    // up sibling.
    let up_sibling = sibling_select(&up_tag, &shape.up_var_preds);
    let mut r2 = rb.clone();
    r2.match_pattern = PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name(down_tag.clone()),
            predicates: Vec::new(),
        }],
    };
    r2.output = replace_apply_select(&r2.output, &shape.up_select, &up_sibling);
    rules.push(r2);
    // R3': the inner rule re-anchored on the up node, recursing back to
    // the down sibling with the down path's variable predicates.
    let down_sibling = sibling_select(&down_tag, &shape.down_var_preds);
    let mut r3 = rb.clone();
    r3.match_pattern = PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Child,
            test: NodeTest::Name(up_tag.clone()),
            predicates: Vec::new(),
        }],
    };
    r3.output = replace_apply_select(&r3.output, &shape.up_select, &down_sibling);
    rules.push(r3);

    Ok(RecursiveComposition {
        view: v2,
        stylesheet: Stylesheet { rules },
        down_tag,
        up_tag,
    })
}

/// `../tag[preds]`.
fn sibling_select(tag: &str, preds: &[Expr]) -> PathExpr {
    PathExpr {
        absolute: false,
        steps: vec![
            Step::parent(),
            Step {
                axis: Axis::Child,
                test: NodeTest::Name(tag.to_owned()),
                predicates: preds.to_vec(),
            },
        ],
    }
}

struct Shape {
    anchor_rule: usize,
    inner_rule: usize,
    anchor: ViewNodeId,
    target: ViewNodeId,
    /// The anchor rule's recursive select, as written.
    down_select: PathExpr,
    /// ... with variable predicates stripped (composable part).
    down_stripped: PathExpr,
    /// Variable predicates of the down select's final step.
    down_var_preds: Vec<Expr>,
    /// The inner rule's upward select, as written.
    up_select: PathExpr,
    /// Value predicates of the up path (pushed into the up query).
    up_value_preds: Vec<Expr>,
    /// Variable predicates of the up path (stay in the residual).
    up_var_preds: Vec<Expr>,
}

fn detect_shape(view: &SchemaTree, stylesheet: &Stylesheet) -> Result<Shape> {
    for (ai, ra) in stylesheet.rules.iter().enumerate() {
        // Anchor: matches exactly one top-level view node.
        let anchors: Vec<ViewNodeId> = view
            .node_ids()
            .into_iter()
            .filter(|&vid| {
                view.parent(vid) == Some(view.root())
                    && matchq(view, vid, &ra.match_pattern)
                        .map(|m| m.is_some())
                        .unwrap_or(false)
            })
            .collect();
        let [anchor] = anchors.as_slice() else {
            continue;
        };
        for a in ra.apply_templates() {
            let (down_stripped, down_var_preds, ok) = strip_variable_predicates(&a.select);
            if !ok || !down_stripped.steps.iter().all(|s| s.axis == Axis::Child) {
                continue;
            }
            for (bi, rb) in stylesheet.rules.iter().enumerate() {
                if bi == ai || rb.mode != a.mode {
                    continue;
                }
                // Find the target: the end of the down path, matched by rb.
                let Ok(candidates) = crate::selectq::selectq_all(view, *anchor, &down_stripped)
                else {
                    continue;
                };
                let Some(target) = candidates
                    .iter()
                    .map(|tp| tp.view(tp.new_context))
                    .find(|&b| {
                        matchq(view, b, &rb.match_pattern)
                            .map(|m| m.is_some())
                            .unwrap_or(false)
                    })
                else {
                    continue;
                };
                // rb must walk back up to the anchor via self/parent steps.
                for b_apply in rb.apply_templates() {
                    let up = &b_apply.select;
                    let upward_only = up
                        .steps
                        .iter()
                        .all(|s| matches!(s.axis, Axis::SelfAxis | Axis::Parent));
                    if !upward_only || b_apply.mode != ra.mode {
                        continue;
                    }
                    let Ok(back) = selectq(view, target, &strip_all_predicates(up), *anchor) else {
                        continue;
                    };
                    if back.is_empty() {
                        continue;
                    }
                    // Partition the up path's predicates.
                    let mut up_value_preds = Vec::new();
                    let mut up_var_preds = Vec::new();
                    for s in &up.steps {
                        for pr in &s.predicates {
                            if pr.uses_variables() {
                                up_var_preds.push(pr.clone());
                            } else if s.axis == Axis::SelfAxis {
                                up_value_preds.push(pr.clone());
                            } else {
                                return Err(Error::NotComposable {
                                    reason: format!(
                                        "predicate `{pr}` on an upward parent step is \
                                         outside the supported §5.3 shape"
                                    ),
                                });
                            }
                        }
                    }
                    return Ok(Shape {
                        anchor_rule: ai,
                        inner_rule: bi,
                        anchor: *anchor,
                        target,
                        down_select: a.select.clone(),
                        down_stripped,
                        down_var_preds,
                        up_select: up.clone(),
                        up_value_preds,
                        up_var_preds,
                    });
                }
            }
        }
    }
    Err(Error::NotComposable {
        reason: "no supported §5.3 recursion shape found (anchor rule on a \
                 top-level node, child-axis down path, self/parent up path)"
            .into(),
    })
}

/// Removes variable predicates; returns `(stripped path, final-step
/// variable predicates, supported)` — variable predicates on intermediate
/// steps make the shape unsupported (`false`).
fn strip_variable_predicates(path: &PathExpr) -> (PathExpr, Vec<Expr>, bool) {
    let mut stripped = path.clone();
    let mut var_preds = Vec::new();
    let last = stripped.steps.len().saturating_sub(1);
    let mut ok = true;
    for (i, step) in stripped.steps.iter_mut().enumerate() {
        step.predicates.retain(|p| {
            if p.uses_variables() {
                if i == last {
                    var_preds.push(p.clone());
                } else {
                    ok = false;
                }
                false
            } else {
                true
            }
        });
    }
    (stripped, var_preds, ok)
}

fn strip_all_predicates(path: &PathExpr) -> PathExpr {
    let mut p = path.clone();
    for s in &mut p.steps {
        s.predicates.clear();
    }
    p
}

/// Clones an output fragment, substituting the select of every
/// apply-templates node whose select equals `old`.
fn replace_apply_select(nodes: &[OutputNode], old: &PathExpr, new: &PathExpr) -> Vec<OutputNode> {
    nodes
        .iter()
        .map(|n| match n {
            OutputNode::ApplyTemplates(a) if &a.select == old => {
                OutputNode::ApplyTemplates(ApplyTemplates {
                    select: new.clone(),
                    mode: a.mode.clone(),
                    with_params: a.with_params.clone(),
                    select_span: a.select_span,
                })
            }
            OutputNode::Element {
                name,
                attrs,
                children,
            } => OutputNode::Element {
                name: name.clone(),
                attrs: attrs.clone(),
                children: replace_apply_select(children, old, new),
            },
            OutputNode::If {
                test,
                children,
                span,
            } => OutputNode::If {
                test: test.clone(),
                children: replace_apply_select(children, old, new),
                span: *span,
            },
            OutputNode::Choose {
                whens,
                otherwise,
                span,
            } => OutputNode::Choose {
                whens: whens
                    .iter()
                    .map(|(t, b)| (t.clone(), replace_apply_select(b, old, new)))
                    .collect(),
                otherwise: replace_apply_select(otherwise, old, new),
                span: *span,
            },
            OutputNode::ForEach {
                select,
                children,
                span,
            } => OutputNode::ForEach {
                select: select.clone(),
                children: replace_apply_select(children, old, new),
                span: *span,
            },
            other => other.clone(),
        })
        .collect()
}

/// Prepends a driver rule `match="/"` applying templates to `tag`, when the
/// stylesheet lacks a root rule. The Figure 25 stylesheet starts at
/// `/metro` without one; engines need the root transition to be explicit
/// once built-in rules are overridden.
pub fn with_root_driver(stylesheet: &Stylesheet, tag: &str) -> Stylesheet {
    if stylesheet
        .rules
        .iter()
        .any(|r| r.match_pattern.absolute && r.match_pattern.steps.is_empty())
    {
        return stylesheet.clone();
    }
    let mut rules = vec![TemplateRule::new(
        PathExpr::root(),
        vec![OutputNode::ApplyTemplates(ApplyTemplates::new(PathExpr {
            absolute: false,
            steps: vec![Step::child(tag)],
        }))],
    )];
    rules.extend(stylesheet.rules.iter().cloned());
    Stylesheet { rules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::{
        dense_availability_database, figure1_view, figure2_catalog, FIGURE25_XSLT,
    };
    use xvc_view::Engine;
    use xvc_xslt::{parse_stylesheet, process};

    fn figure25() -> RecursiveComposition {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE25_XSLT).unwrap();
        compose_recursive(&v, &x, &figure2_catalog()).unwrap()
    }

    #[test]
    fn figure26_view_structure() {
        let rc = figure25();
        let r = rc.view.render();
        // v': metro with the two materialized siblings.
        assert!(r.contains("<metro>"), "{r}");
        assert!(r.contains("<metro_available_down>"), "{r}");
        assert!(r.contains("<metro_available_up>"), "{r}");
        // Qmd: the composed down path — nested derived tables with the
        // @count>10 HAVING inside, parameterized by metro.
        assert!(r.contains("HAVING COUNT(a_id) > 10"), "{r}");
        assert!(r.contains("starrating > 4"), "{r}");
        assert!(r.contains("$m.metroid"), "{r}");
        // Qmu additionally filters @count>50 (Figure 26's extra HAVING).
        assert!(r.contains("HAVING COUNT(a_id) > 50"), "{r}");
        // The variable predicate @count<$idx is NOT composed.
        assert!(!r.contains("idx"), "{r}");
    }

    #[test]
    fn figure27_stylesheet_structure() {
        let rc = figure25();
        let x2 = &rc.stylesheet;
        assert_eq!(x2.rules.len(), 3);
        // R1' selects the down node with the variable predicate.
        let r1_selects: Vec<String> = x2.rules[0]
            .apply_templates()
            .iter()
            .map(|a| a.select.to_string())
            .collect();
        assert_eq!(r1_selects, vec!["metro_available_down[@count < $idx]"]);
        // R2' matches the down node and recurses to the up sibling.
        assert_eq!(x2.rules[1].node_name(), "metro_available_down");
        let r2_selects: Vec<String> = x2.rules[1]
            .apply_templates()
            .iter()
            .map(|a| a.select.to_string())
            .collect();
        assert_eq!(r2_selects, vec!["../metro_available_up"]);
        // R3' matches the up node and recurses back down, re-applying the
        // variable predicate.
        assert_eq!(x2.rules[2].node_name(), "metro_available_up");
        let r3_selects: Vec<String> = x2.rules[2]
            .apply_templates()
            .iter()
            .map(|a| a.select.to_string())
            .collect();
        assert_eq!(r3_selects, vec!["../metro_available_down[@count < $idx]"]);
        // Parameters survive.
        assert_eq!(x2.rules[1].params.len(), 1);
        assert_eq!(x2.rules[1].params[0].name, "idx");
    }

    #[test]
    fn residual_runs_on_materialized_view() {
        // x'(v'(I)) executes: the recursion bounces between the
        // materialized siblings and terminates via the $idx countdown.
        // Note the Figure 25 defaults are unsatisfiable (`@count < $idx`
        // with $idx=10 at the metro level can never hold together with
        // `@count > 10` at the hotel level, since the metro total dominates
        // the hotel count), so the driver passes a larger $idx.
        let rc = figure25();
        let db = dense_availability_database();
        let published = Engine::new(&rc.view).session().publish(&db).unwrap();
        let (doc, stats) = (published.document, published.stats);
        assert!(stats.elements > 0);
        // Only metro/down/up nodes are materialized — none of the hotel /
        // confstat / confroom intermediates (the §5.3 selling point).
        let xml = doc.to_xml();
        assert!(!xml.contains("<hotel "), "{xml}");
        assert!(!xml.contains("confroom"), "{xml}");
        assert!(xml.contains("<metro_available_down"), "{xml}");
        assert!(xml.contains("<metro_available_up"), "{xml}");
        let driver = driver_with_idx(&rc.stylesheet, 64);
        let out = process(&driver, &doc).unwrap();
        let out_xml = out.to_xml();
        assert!(out_xml.contains("<result_metro>"), "{out_xml}");
        // The countdown produces nested result_metroavail wrappers, ending
        // in a value-of copy when the predicate or countdown bottoms out.
        assert!(out_xml.contains("<result_metroavail>"), "{out_xml}");
        assert!(
            out_xml.matches("<result_metroavail>").count() >= 2,
            "{out_xml}"
        );
    }

    /// A driver that starts the Figure 25 recursion with an explicit $idx.
    fn driver_with_idx(stylesheet: &Stylesheet, idx: i64) -> Stylesheet {
        use xvc_xslt::WithParam;
        let mut apply = ApplyTemplates::new(PathExpr {
            absolute: false,
            steps: vec![Step::child("metro")],
        });
        apply.with_params.push(WithParam {
            name: "idx".into(),
            select: Expr::Number(idx as f64),
        });
        let mut rules = vec![TemplateRule::new(
            PathExpr::root(),
            vec![OutputNode::ApplyTemplates(apply)],
        )];
        rules.extend(stylesheet.rules.iter().cloned());
        Stylesheet { rules }
    }

    #[test]
    fn down_attrs_match_original_columns() {
        // The down/up nodes publish exactly the original metro_available
        // columns (here: `count`), despite the wider composed query.
        let rc = figure25();
        let db = dense_availability_database();
        let doc = Engine::new(&rc.view)
            .session()
            .publish(&db)
            .unwrap()
            .document;
        let xml = doc.to_xml();
        let down_open = xml
            .split('<')
            .find(|s| s.starts_with("metro_available_down"))
            .expect("a down element");
        assert!(down_open.contains("count=\""), "{down_open}");
        assert!(!down_open.contains("hotelid"), "{down_open}");
    }

    #[test]
    fn non_recursive_shapes_are_rejected() {
        let v = figure1_view();
        let x = parse_stylesheet(xvc_xslt::parse::FIGURE4_XSLT).unwrap();
        assert!(matches!(
            compose_recursive(&v, &x, &figure2_catalog()),
            Err(Error::NotComposable { .. })
        ));
    }
}
