//! Translating `XPath` predicates into SQL conditions (§5.1, Figure 19/20).
//!
//! By restriction (10) database values surface as XML attributes, so an
//! attribute-level predicate like `@capacity > 250` is a condition over a
//! tag query's result columns. Two placements occur:
//!
//! * **own-query conditions** ([`push_into_query`]) — the predicate sits on
//!   the node whose query is being generated: `@attr` resolves to that
//!   query's output column. If the column is produced by an *aggregate*
//!   select item (e.g. `@sum` over `SELECT SUM(capacity)`), the condition
//!   must go to `HAVING` with the aggregate expression substituted —
//!   Figure 20's `HAVING SUM(capacity) > 100`;
//! * **binding-tuple conditions** ([`to_param_condition`]) — the predicate
//!   sits on a context-side node whose tuple is carried by a binding
//!   variable: `@attr` becomes `$bv.attr` (Figure 20's
//!   `$s_new.sum < 200`-style conditions; the paper prints
//!   `$s_new.SUM_capacity`, we use the aggregate's output column name).

use xvc_rel::{AggFunc, BinOp as SqlOp, ScalarExpr, SelectItem, SelectQuery, Value};
use xvc_xpath::{Axis, BinOp as XpOp, Expr, NodeTest, PathExpr};

use crate::error::{Error, Result};

/// How `@attr` references resolve during translation.
enum AttrMode<'a> {
    /// Into the output columns of this query (aggregate-aware).
    OwnQuery(&'a SelectQuery),
    /// Into the binding tuple `$var`.
    Param(&'a str),
}

/// Pushes an attribute-level predicate into the query itself: `WHERE` for
/// plain columns, `HAVING` when the referenced column is an aggregate.
pub fn push_into_query(q: &mut SelectQuery, pred: &Expr) -> Result<()> {
    let (scalar, has_agg) = translate(pred, &AttrMode::OwnQuery(q))?;
    if has_agg {
        q.and_having(scalar);
    } else {
        q.and_where(scalar);
    }
    Ok(())
}

/// Translates an attribute-level predicate into a condition over the
/// binding tuple `$var` (to be conjoined into a descendant query's WHERE).
pub fn to_param_condition(var: &str, pred: &Expr) -> Result<ScalarExpr> {
    let (scalar, has_agg) = translate(pred, &AttrMode::Param(var))?;
    debug_assert!(!has_agg, "param mode never yields aggregates");
    Ok(scalar)
}

fn translate(e: &Expr, mode: &AttrMode<'_>) -> Result<(ScalarExpr, bool)> {
    match e {
        Expr::Literal(s) => Ok((ScalarExpr::Literal(Value::Str(s.clone())), false)),
        Expr::Number(n) => {
            let v = if n.fract() == 0.0 && n.abs() < 1e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            };
            Ok((ScalarExpr::Literal(v), false))
        }
        Expr::Var(name) => Err(Error::NotComposable {
            reason: format!(
                "variable ${name} in a predicate (variables are handled by the \
                 §5.3 residual stylesheet, not by composition)"
            ),
        }),
        Expr::Path(p) => {
            // A bare attribute path as a boolean: existence of the value.
            let (col, agg) = attr_ref(p, mode)?;
            Ok((
                ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(col)))),
                agg,
            ))
        }
        Expr::Binary { op, lhs, rhs } => {
            let sql_op = map_op(*op)?;
            let (l, la) = operand(lhs, mode)?;
            let (r, ra) = operand(rhs, mode)?;
            Ok((ScalarExpr::binary(sql_op, l, r), la || ra))
        }
        Expr::And(a, b) => {
            let (l, la) = translate(a, mode)?;
            let (r, ra) = translate(b, mode)?;
            Ok((ScalarExpr::binary(SqlOp::And, l, r), la || ra))
        }
        Expr::Or(a, b) => {
            let (l, la) = translate(a, mode)?;
            let (r, ra) = translate(b, mode)?;
            Ok((ScalarExpr::binary(SqlOp::Or, l, r), la || ra))
        }
        Expr::Not(a) => {
            let (inner, agg) = translate(a, mode)?;
            Ok((ScalarExpr::Not(Box::new(inner)), agg))
        }
    }
}

/// An operand of a comparison/arithmetic: attribute paths become value
/// references (not existence tests).
fn operand(e: &Expr, mode: &AttrMode<'_>) -> Result<(ScalarExpr, bool)> {
    match e {
        Expr::Path(p) => attr_ref(p, mode),
        other => translate(other, mode),
    }
}

fn attr_ref(p: &PathExpr, mode: &AttrMode<'_>) -> Result<(ScalarExpr, bool)> {
    let attr = match (&p.steps.as_slice(), p.absolute) {
        ([step], false) if step.axis == Axis::Attribute && step.predicates.is_empty() => {
            match &step.test {
                NodeTest::Name(a) => a.clone(),
                NodeTest::Wildcard => {
                    return Err(Error::NotComposable {
                        reason: "wildcard attribute reference `@*` in a predicate".into(),
                    })
                }
            }
        }
        _ => {
            return Err(Error::NotComposable {
                reason: format!("non-attribute path `{p}` in a scalar position"),
            })
        }
    };
    match mode {
        AttrMode::Param(var) => Ok((ScalarExpr::param(*var, attr), false)),
        AttrMode::OwnQuery(q) => {
            // Aggregate-aware lookup over the select list.
            for item in &q.select {
                if let SelectItem::Expr { expr, alias } = item {
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => default_item_name(expr),
                    };
                    if name == attr {
                        if expr.contains_aggregate() {
                            return Ok((expr.clone(), true));
                        }
                        return Ok((expr.clone(), false));
                    }
                }
            }
            // Star/qualified-star items or late-bound columns: plain
            // column reference resolved at evaluation time.
            Ok((ScalarExpr::col(attr), false))
        }
    }
}

fn default_item_name(expr: &ScalarExpr) -> String {
    match expr {
        ScalarExpr::Column { name, .. } => name.clone(),
        ScalarExpr::Param { column, .. } => column.clone(),
        ScalarExpr::Aggregate { func, .. } => agg_name(*func).to_owned(),
        _ => String::new(),
    }
}

fn agg_name(f: AggFunc) -> &'static str {
    f.default_column_name()
}

fn map_op(op: XpOp) -> Result<SqlOp> {
    Ok(match op {
        XpOp::Eq => SqlOp::Eq,
        XpOp::Ne => SqlOp::Ne,
        XpOp::Lt => SqlOp::Lt,
        XpOp::Le => SqlOp::Le,
        XpOp::Gt => SqlOp::Gt,
        XpOp::Ge => SqlOp::Ge,
        XpOp::Add => SqlOp::Add,
        XpOp::Sub => SqlOp::Sub,
        XpOp::Mul => SqlOp::Mul,
        XpOp::Div => SqlOp::Div,
        XpOp::Mod => {
            return Err(Error::NotComposable {
                reason: "the `mod` operator has no SQL counterpart here".into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_rel::parse_query;
    use xvc_xpath::parse_expr;

    #[test]
    fn plain_column_predicate_goes_to_where() {
        let mut q = parse_query("SELECT * FROM confroom").unwrap();
        push_into_query(&mut q, &parse_expr("@capacity > 250").unwrap()).unwrap();
        assert_eq!(q.to_sql(), "SELECT *\nFROM confroom\nWHERE capacity > 250");
    }

    #[test]
    fn aggregate_column_predicate_goes_to_having() {
        // Figure 20: the @sum>100 check on a SUM(capacity) query becomes
        // HAVING SUM(capacity) > 100.
        let mut q = parse_query("SELECT SUM(capacity) FROM confroom WHERE chotel_id = 1").unwrap();
        push_into_query(&mut q, &parse_expr("@sum > 100").unwrap()).unwrap();
        assert!(
            q.to_sql().ends_with("HAVING SUM(capacity) > 100"),
            "{}",
            q.to_sql()
        );
    }

    #[test]
    fn aliased_aggregate_lookup() {
        let mut q = parse_query("SELECT COUNT(a_id) AS total FROM availability").unwrap();
        push_into_query(&mut q, &parse_expr("@total >= 3").unwrap()).unwrap();
        assert!(q.to_sql().contains("HAVING COUNT(a_id) >= 3"));
    }

    #[test]
    fn param_condition_references_binding_tuple() {
        let c = to_param_condition("s_new", &parse_expr("@sum < 200").unwrap()).unwrap();
        assert_eq!(
            c,
            ScalarExpr::binary(
                SqlOp::Lt,
                ScalarExpr::param("s_new", "sum"),
                ScalarExpr::int(200)
            )
        );
    }

    #[test]
    fn boolean_attribute_existence() {
        let mut q = parse_query("SELECT * FROM hotel").unwrap();
        push_into_query(&mut q, &parse_expr("@pool").unwrap()).unwrap();
        assert!(q.to_sql().contains("NOT (pool IS NULL)"));
        let c = to_param_condition("h", &parse_expr("not(@pool)").unwrap()).unwrap();
        assert_eq!(
            c,
            ScalarExpr::Not(Box::new(ScalarExpr::Not(Box::new(ScalarExpr::IsNull(
                Box::new(ScalarExpr::param("h", "pool"))
            )))))
        );
    }

    #[test]
    fn connectives_translate() {
        let mut q = parse_query("SELECT * FROM hotel").unwrap();
        push_into_query(
            &mut q,
            &parse_expr("@starrating > 3 and @city = 'chicago' or @gym = 'yes'").unwrap(),
        )
        .unwrap();
        let sql = q.to_sql();
        assert!(
            sql.contains("starrating > 3 AND city = 'chicago' OR gym = 'yes'"),
            "{sql}"
        );
    }

    #[test]
    fn string_literals_and_numbers() {
        let c = to_param_condition("m", &parse_expr("@metroname = \"chicago\"").unwrap()).unwrap();
        assert!(matches!(
            c,
            ScalarExpr::Binary { rhs, .. }
                if *rhs == ScalarExpr::Literal(Value::Str("chicago".into()))
        ));
        let c = to_param_condition("m", &parse_expr("@x = 2.5").unwrap()).unwrap();
        assert!(matches!(
            c,
            ScalarExpr::Binary { rhs, .. }
                if *rhs == ScalarExpr::Literal(Value::Float(2.5))
        ));
    }

    #[test]
    fn variables_rejected() {
        assert!(matches!(
            to_param_condition("m", &parse_expr("@count < $idx").unwrap()),
            Err(Error::NotComposable { .. })
        ));
    }

    #[test]
    fn arithmetic_operands() {
        let mut q = parse_query("SELECT * FROM confroom").unwrap();
        push_into_query(&mut q, &parse_expr("@capacity * 2 > 500").unwrap()).unwrap();
        assert!(q.to_sql().contains("capacity * 2 > 500"));
    }
}
