//! `SELECTQ(n1, a, n2)` — abstract select-expression evaluation over the
//! schema tree (§3.5).
//!
//! A select expression is walked over schema-tree nodes instead of
//! document nodes: child steps descend (branching over children whose tag
//! matches), parent steps ascend, self steps stay. The walk records a
//! [`TreePattern`]: child steps always create *fresh* pattern nodes
//! (revisiting a tag creates a new required instance — Figure 18 has two
//! `confstat` pattern nodes), parent steps reuse the existing pattern
//! parent (which is what folds `../hotel_available/../confroom` into the
//! Figure 8 tree shape).
//!
//! Predicates (§5.1) are split per step: attribute-level conditions attach
//! to the pattern node; relative-path existence conditions are walked into
//! extra pattern branches.

use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xpath::{Axis, Expr, NodeTest, PathExpr, Step};

use crate::error::{Error, Result};
use crate::tree_pattern::{TpId, TreePattern};

/// Abstractly evaluates `select` from query context node `n1`; returns all
/// tree patterns whose new query context node is `n2`.
///
/// The paper's `SELECTQ(n1, a, n2)` returns a single pattern or NULL; with
/// wildcard steps several distinct walks can end at `n2`, so this returns
/// them all (the CTG adds one edge per pattern).
pub fn selectq(
    view: &SchemaTree,
    n1: ViewNodeId,
    select: &PathExpr,
    n2: ViewNodeId,
) -> Result<Vec<TreePattern>> {
    Ok(selectq_all(view, n1, select)?
        .into_iter()
        .filter(|tp| tp.view(tp.new_context) == n2)
        .collect())
}

/// Abstractly evaluates `select` from `n1`, returning one completed
/// [`TreePattern`] per possible walk (each with `new_context` set to its
/// endpoint).
pub fn selectq_all(
    view: &SchemaTree,
    n1: ViewNodeId,
    select: &PathExpr,
) -> Result<Vec<TreePattern>> {
    let start = if select.absolute { view.root() } else { n1 };
    let mut tp = TreePattern::single(start);
    // The *context* marker must refer to n1 even for absolute selects; for
    // absolute paths the walk context is the root, which only coincides
    // with n1 when n1 is the root. The paper's select expressions are
    // relative; absolute selects are anchored at the root pattern node.
    tp.context = TpId(0);
    let mut states = vec![(tp, TpId(0))];
    for step in &select.steps {
        let mut next = Vec::new();
        for (tp, cur) in states {
            walk_step(view, &tp, cur, step, &mut next)?;
        }
        states = next;
        if states.is_empty() {
            return Ok(Vec::new());
        }
    }
    Ok(states
        .into_iter()
        .filter(|(tp, end)| !view.is_root(tp.view(*end)))
        .map(|(mut tp, end)| {
            tp.new_context = end;
            tp
        })
        .collect())
}

fn walk_step(
    view: &SchemaTree,
    tp: &TreePattern,
    cur: TpId,
    step: &Step,
    out: &mut Vec<(TreePattern, TpId)>,
) -> Result<()> {
    match step.axis {
        Axis::SelfAxis => {
            let vid = tp.view(cur);
            if accepts(view, vid, &step.test) || matches!(step.test, NodeTest::Wildcard) {
                let mut tp = tp.clone();
                attach_predicates(view, &mut tp, cur, &step.predicates)?;
                out.push((tp, cur));
            }
        }
        Axis::Parent => {
            // Reuse the pattern parent if present; otherwise extend upward
            // along the schema tree.
            let (mut tp, parent) = match tp.parent(cur) {
                Some(p) => (tp.clone(), p),
                None => {
                    let vid = tp.view(cur);
                    match view.parent(vid) {
                        Some(vp) => {
                            let mut tp = tp.clone();
                            let p = tp.add_parent_above(cur, vp);
                            (tp, p)
                        }
                        None => return Ok(()), // above the root: dead walk
                    }
                }
            };
            let pvid = tp.view(parent);
            let name_ok = match &step.test {
                NodeTest::Wildcard => true,
                NodeTest::Name(n) => view.tag(pvid) == Some(n.as_str()),
            };
            if name_ok {
                attach_predicates(view, &mut tp, parent, &step.predicates)?;
                out.push((tp, parent));
            }
        }
        Axis::Child => {
            let vid = tp.view(cur);
            for &child in view.children(vid) {
                if accepts(view, child, &step.test) {
                    let mut tp = tp.clone();
                    let c = tp.add_child(cur, child);
                    attach_predicates(view, &mut tp, c, &step.predicates)?;
                    out.push((tp, c));
                }
            }
        }
        // The descendant axis is excluded from XSLT_basic (restriction
        // (9)), but the abstract walk extends to it naturally: each
        // schema-reachable descendant has a unique child path from the
        // context, which becomes an explicit chain in the pattern — one
        // walk (and later one CTG edge) per endpoint.
        Axis::Descendant | Axis::DescendantOrSelf => {
            if step.axis == Axis::DescendantOrSelf {
                let vid = tp.view(cur);
                if accepts(view, vid, &step.test) || matches!(step.test, NodeTest::Wildcard) {
                    let mut tp = tp.clone();
                    attach_predicates(view, &mut tp, cur, &step.predicates)?;
                    out.push((tp, cur));
                }
            }
            let start = tp.view(cur);
            let mut stack: Vec<(ViewNodeId, Vec<ViewNodeId>)> =
                view.children(start).iter().map(|&c| (c, vec![c])).collect();
            while let Some((vid, path)) = stack.pop() {
                if accepts(view, vid, &step.test) {
                    let mut tp = tp.clone();
                    let mut cur2 = cur;
                    for &p in &path {
                        cur2 = tp.add_child(cur2, p);
                    }
                    attach_predicates(view, &mut tp, cur2, &step.predicates)?;
                    out.push((tp, cur2));
                }
                for &c in view.children(vid) {
                    let mut p2 = path.clone();
                    p2.push(c);
                    stack.push((c, p2));
                }
            }
        }
        Axis::Attribute => {
            return Err(Error::NotComposable {
                reason: "attribute axis in an apply-templates select \
                         (selects must yield nodes, Definition 3)"
                    .into(),
            })
        }
    }
    Ok(())
}

fn accepts(view: &SchemaTree, vid: ViewNodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Wildcard => !view.is_root(vid),
        NodeTest::Name(n) => view.tag(vid) == Some(n.as_str()),
    }
}

/// Splits a step's predicates per §5.1: attribute-level conditions attach
/// to the node, relative-path existence conditions become pattern
/// branches.
pub fn attach_predicates(
    view: &SchemaTree,
    tp: &mut TreePattern,
    node: TpId,
    predicates: &[Expr],
) -> Result<()> {
    for pred in predicates {
        attach_predicate(view, tp, node, pred)?;
    }
    Ok(())
}

fn attach_predicate(
    view: &SchemaTree,
    tp: &mut TreePattern,
    node: TpId,
    pred: &Expr,
) -> Result<()> {
    let pred = simplify_self_paths(pred);
    match &pred {
        Expr::And(a, b) => {
            attach_predicate(view, tp, node, a)?;
            attach_predicate(view, tp, node, b)?;
        }
        // A bare relative path: existence branch.
        Expr::Path(p) if !is_attr_only_path(p) => {
            walk_branch(view, tp, node, p, false)?;
        }
        // A negated path: negated existence branch (NOT EXISTS in SQL).
        Expr::Not(inner) => match inner.as_ref() {
            Expr::Path(p) if !is_attr_only_path(p) => {
                walk_branch(view, tp, node, p, true)?;
            }
            other if is_attribute_level(other) => {
                tp.add_predicate(node, pred.clone());
            }
            other => {
                return Err(Error::NotComposable {
                    reason: format!(
                        "negated predicate `not({other})` is outside the \
                         composable fragment"
                    ),
                })
            }
        },
        other if is_attribute_level(other) => {
            tp.add_predicate(node, other.clone());
        }
        other => {
            return Err(Error::NotComposable {
                reason: format!(
                    "predicate `{other}` mixes paths and comparisons in a way \
                     the composition does not support"
                ),
            })
        }
    }
    Ok(())
}

/// Normalizes self-only predicate paths: `.[p1][p2]` as a boolean is
/// equivalent to `p1 and p2` (the self step always selects the context
/// node), and a bare `.` is true. The §5.2 rewrites generate such shapes
/// (`not(.[@eid > 11])` from conflict resolution, `.[e]` guards).
pub fn simplify_self_paths(e: &Expr) -> Expr {
    match e {
        Expr::Path(p)
            if !p.absolute
                && !p.steps.is_empty()
                && p.steps
                    .iter()
                    .all(|s| s.axis == Axis::SelfAxis && matches!(s.test, NodeTest::Wildcard)) =>
        {
            let mut preds: Vec<Expr> = p
                .steps
                .iter()
                .flat_map(|s| s.predicates.iter())
                .map(simplify_self_paths)
                .collect();
            match preds.len() {
                0 => Expr::Number(1.0), // `.` exists: true
                1 => preds.pop().expect("len checked"),
                _ => {
                    let mut it = preds.into_iter();
                    let first = it.next().expect("len checked");
                    it.fold(first, |acc, x| Expr::And(Box::new(acc), Box::new(x)))
                }
            }
        }
        Expr::And(a, b) => Expr::And(
            Box::new(simplify_self_paths(a)),
            Box::new(simplify_self_paths(b)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(simplify_self_paths(a)),
            Box::new(simplify_self_paths(b)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(simplify_self_paths(a))),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(simplify_self_paths(lhs)),
            rhs: Box::new(simplify_self_paths(rhs)),
        },
        other => other.clone(),
    }
}

/// Walks a predicate path deterministically from `node`, creating
/// existence branches; ambiguity (several children with the matching tag)
/// is an error.
fn walk_branch(
    view: &SchemaTree,
    tp: &mut TreePattern,
    node: TpId,
    path: &PathExpr,
    negate: bool,
) -> Result<()> {
    if path.absolute {
        return Err(Error::NotComposable {
            reason: format!("absolute path `{path}` inside a predicate"),
        });
    }
    let mut cur = node;
    let mut first_created: Option<TpId> = None;
    for step in &path.steps {
        match step.axis {
            Axis::SelfAxis => {}
            Axis::Parent => {
                cur = match tp.parent(cur) {
                    Some(p) => p,
                    None => {
                        let vid = tp.view(cur);
                        match view.parent(vid) {
                            Some(vp) => tp.add_parent_above(cur, vp),
                            None => {
                                return Err(Error::NotComposable {
                                    reason: format!(
                                        "predicate path `{path}` climbs above the root"
                                    ),
                                })
                            }
                        }
                    }
                };
            }
            Axis::Child => {
                let vid = tp.view(cur);
                let mut candidates = view
                    .children(vid)
                    .iter()
                    .copied()
                    .filter(|&c| accepts(view, c, &step.test));
                let Some(child) = candidates.next() else {
                    return Err(Error::NotComposable {
                        reason: format!(
                            "predicate path `{path}` selects nothing in the schema tree"
                        ),
                    });
                };
                if candidates.next().is_some() {
                    return Err(Error::Ambiguous {
                        reason: format!(
                            "predicate path `{path}` is ambiguous over the schema tree"
                        ),
                    });
                }
                cur = tp.add_child(cur, child);
                if first_created.is_none() {
                    first_created = Some(cur);
                }
            }
            Axis::Attribute => {
                // Trailing @attr: existence of the attribute on `cur`.
                if let NodeTest::Name(a) = &step.test {
                    tp.add_predicate(
                        node_attr_existence_target(tp, cur),
                        Expr::Path(PathExpr {
                            absolute: false,
                            steps: vec![Step {
                                axis: Axis::Attribute,
                                test: NodeTest::Name(a.clone()),
                                predicates: Vec::new(),
                            }],
                        }),
                    );
                }
                return Ok(());
            }
            axis => {
                return Err(Error::NotComposable {
                    reason: format!("axis {} inside a predicate path", axis.name()),
                })
            }
        }
        attach_predicates(view, tp, cur, &step.predicates)?;
    }
    if negate {
        match first_created {
            Some(id) => tp.set_negated(id),
            None => {
                return Err(Error::NotComposable {
                    reason: format!(
                        "`not({path})` negates only already-required nodes \
                         (the path descends nowhere)"
                    ),
                })
            }
        }
    }
    Ok(())
}

fn node_attr_existence_target(_tp: &TreePattern, cur: TpId) -> TpId {
    cur
}

/// A path consisting solely of one attribute step (`@attr`).
fn is_attr_only_path(p: &PathExpr) -> bool {
    !p.absolute && p.steps.len() == 1 && p.steps[0].axis == Axis::Attribute
}

/// True for expressions whose every path operand is a self-level attribute
/// reference (`@attr`) — these translate directly into SQL conditions on
/// the node's tag-query columns.
pub fn is_attribute_level(e: &Expr) -> bool {
    match e {
        Expr::Path(p) => is_attr_only_path(p),
        // Variables are flagged later (composition cannot bind them; the
        // §5.3 pipeline keeps them in the residual stylesheet).
        Expr::Literal(_) | Expr::Number(_) | Expr::Var(_) => true,
        Expr::Binary { lhs, rhs, .. } => is_attribute_level(lhs) && is_attribute_level(rhs),
        Expr::And(a, b) | Expr::Or(a, b) => is_attribute_level(a) && is_attribute_level(b),
        Expr::Not(a) => is_attribute_level(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::figure1_view;
    use xvc_xpath::parse_path;

    fn by_id(view: &SchemaTree, id: u32) -> ViewNodeId {
        view.find_by_paper_id(id).unwrap()
    }

    #[test]
    fn child_walk_reaches_targets() {
        let v = figure1_view();
        // R2's select "hotel/confstat" from metro reaches the hotel-level
        // confstat (id 4) only.
        let results =
            selectq_all(&v, by_id(&v, 1), &parse_path("hotel/confstat").unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].view(results[0].new_context), by_id(&v, 4));
        // Directed form.
        let hits = selectq(
            &v,
            by_id(&v, 1),
            &parse_path("hotel/confstat").unwrap(),
            by_id(&v, 4),
        )
        .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(selectq(
            &v,
            by_id(&v, 1),
            &parse_path("hotel/confstat").unwrap(),
            by_id(&v, 2),
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn figure8_parent_axis_walk() {
        let v = figure1_view();
        // R3's select from (4, confstat).
        let results = selectq_all(
            &v,
            by_id(&v, 4),
            &parse_path("../hotel_available/../confroom").unwrap(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        let tp = &results[0];
        assert_eq!(tp.view(tp.new_context), by_id(&v, 5));
        // The Figure 8 shape: hotel on top (no metro — the select never
        // climbs that high), three children: confstat (context),
        // hotel_available, confroom (new context).
        let root = tp.root();
        assert_eq!(tp.view(root), by_id(&v, 3));
        assert_eq!(tp.children(root).len(), 3);
        assert_eq!(tp.len(), 4);
        assert_eq!(tp.view(tp.context), by_id(&v, 4));
    }

    #[test]
    fn wildcard_steps_branch() {
        let v = figure1_view();
        // "*" from metro reaches both confstat (2) and hotel (3).
        let results = selectq_all(&v, by_id(&v, 1), &parse_path("*").unwrap()).unwrap();
        let mut tags: Vec<_> = results
            .iter()
            .map(|tp| v.tag(tp.view(tp.new_context)).unwrap().to_owned())
            .collect();
        tags.sort();
        assert_eq!(tags, vec!["confstat", "hotel"]);
    }

    #[test]
    fn dead_walks_return_empty() {
        let v = figure1_view();
        assert!(
            selectq_all(&v, by_id(&v, 1), &parse_path("nonexistent").unwrap())
                .unwrap()
                .is_empty()
        );
        // Climbing above the root dies.
        assert!(
            selectq_all(&v, by_id(&v, 1), &parse_path("../../..").unwrap())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn absolute_select_anchors_at_root() {
        let v = figure1_view();
        let results = selectq_all(&v, by_id(&v, 4), &parse_path("/metro").unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].view(results[0].new_context), by_id(&v, 1));
    }

    #[test]
    fn figure18_predicates_build_two_confstat_nodes() {
        let v = figure1_view();
        let path =
            ".[@sum<200]/../hotel_available/../confroom[../confstat[@sum>100]][@capacity>250]";
        let results = selectq_all(&v, by_id(&v, 4), &parse_path(path).unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        let tp = &results[0];
        // Figure 18: hotel on top (under metro per match side; select side
        // stops at hotel), with confstat (context, pred @sum<200),
        // hotel_available, confroom (new context, pred @capacity>250) and a
        // second confstat branch carrying @sum>100.
        let confstat_nodes: Vec<TpId> = (0..tp.len())
            .map(TpId)
            .filter(|&id| tp.view(id) == by_id(&v, 4))
            .collect();
        assert_eq!(confstat_nodes.len(), 2, "{}", tp.render(&v));
        assert_eq!(tp.predicates(tp.context).len(), 1);
        assert_eq!(tp.predicates(tp.new_context).len(), 1);
        let branch = confstat_nodes
            .into_iter()
            .find(|&id| id != tp.context)
            .unwrap();
        assert_eq!(tp.predicates(branch).len(), 1);
        assert_eq!(tp.predicates(branch)[0].to_string(), "@sum > 100");
    }

    #[test]
    fn descendant_axis_expands_to_explicit_chains() {
        let v = figure1_view();
        // metro//confstat reaches BOTH confstat nodes (ids 2 and 4), each
        // via its own explicit chain.
        let results = selectq_all(&v, by_id(&v, 1), &parse_path(".//confstat").unwrap()).unwrap();
        let mut ids: Vec<u32> = results
            .iter()
            .map(|tp| v.node(tp.view(tp.new_context)).unwrap().id)
            .collect();
        ids.sort();
        assert_eq!(ids, vec![2, 4]);
        // The deep one's pattern contains the intermediate hotel node.
        let deep = results
            .iter()
            .find(|tp| v.node(tp.view(tp.new_context)).unwrap().id == 4)
            .unwrap();
        assert_eq!(deep.len(), 3); // metro, hotel, confstat
                                   // //metro_available from the root finds the grandchild.
        let results = selectq_all(&v, v.root(), &parse_path("//metro_available").unwrap()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].len(), 5); // root..metro_available chain
    }

    #[test]
    fn attribute_axis_rejected() {
        let v = figure1_view();
        assert!(matches!(
            selectq_all(&v, by_id(&v, 1), &parse_path("hotel/@hotelid").unwrap()),
            Err(Error::NotComposable { .. })
        ));
    }

    #[test]
    fn attribute_level_classification() {
        for (src, expected) in [
            ("@sum < 200", true),
            ("@a = 1 and @b = 2", true),
            ("not(@a)", true),
            ("$idx <= 1", true),
            ("../confstat[@sum>100]", false),
            ("@a = b/c", false),
        ] {
            assert_eq!(
                is_attribute_level(&xvc_xpath::parse_expr(src).unwrap()),
                expected,
                "{src}"
            );
        }
    }

    #[test]
    fn self_path_simplification() {
        use xvc_xpath::parse_expr;
        for (src, expected) in [
            (".[@a > 1]", "@a > 1"),
            ("not(.[@a > 1])", "not(@a > 1)"),
            (".[@a > 1][@b = 2]", "@a > 1 and @b = 2"),
            (".", "1"),
            ("@a > 1", "@a > 1"),
        ] {
            let simplified = simplify_self_paths(&parse_expr(src).unwrap());
            assert_eq!(simplified.to_string(), expected, "{src}");
        }
    }

    #[test]
    fn negated_branch_is_marked() {
        let v = figure1_view();
        // hotel[not(confroom)] from metro.
        let results = selectq_all(
            &v,
            by_id(&v, 1),
            &parse_path("hotel[not(confroom)]").unwrap(),
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        let tp = &results[0];
        let confroom = (0..tp.len())
            .map(TpId)
            .find(|&id| tp.view(id) == by_id(&v, 5))
            .expect("branch node");
        assert!(tp.is_negated(confroom));
        assert!(!tp.is_negated(tp.new_context));
        assert!(tp.render(&v).contains("NOT confroom"));
    }

    #[test]
    fn negating_nothing_is_rejected() {
        let v = figure1_view();
        // `not(..)` creates no branch node to negate.
        assert!(matches!(
            selectq_all(&v, by_id(&v, 4), &parse_path(".[not(..)]").unwrap()),
            Err(Error::NotComposable { .. })
        ));
    }

    #[test]
    fn ambiguous_predicate_path_rejected() {
        let v = figure1_view();
        // "confstat" from metro is unique (id 2); from hotel also unique
        // (id 4). Build ambiguity via a wildcard child: metro has two
        // children, so a `*` existence predicate is ambiguous.
        let path = ".[*]";
        assert!(matches!(
            selectq_all(&v, by_id(&v, 1), &parse_path(path).unwrap()),
            Err(Error::Ambiguous { .. })
        ));
    }
}
