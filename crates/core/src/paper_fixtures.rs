//! The paper's running artifacts, reconstructed verbatim:
//!
//! * [`figure2_catalog`] — the hotel-reservation relational schema;
//! * [`figure1_view`] — the conference-planning schema-tree view query;
//! * [`FIGURE15_XSLT`], [`FIGURE17_XSLT`], [`FIGURE25_XSLT`] — the example
//!   stylesheets of §4.4, §5.1 and §5.3 (Figure 4 lives in
//!   [`xvc_xslt::parse::FIGURE4_XSLT`]);
//! * [`sample_database`] — a small deterministic instance of the hotel
//!   schema used by unit and golden tests (benchmark-scale data lives in
//!   `xvc-bench`).

use xvc_rel::{parse_query, Catalog, ColumnDef, ColumnType, Database, TableSchema, Value};
use xvc_view::{SchemaTree, ViewNode};

/// The hotel reservation schema of Figure 2.
pub fn figure2_catalog() -> Catalog {
    use ColumnType::{Int, Str};
    let mut c = Catalog::new();
    // The first column of every Figure 2 table is its PRIMARY KEY, matching
    // the annotations in `examples/files/paper/figure2.sql`.
    let t = |name: &str, cols: &[(&str, ColumnType)]| {
        TableSchema::new(
            name,
            cols.iter()
                .enumerate()
                .map(|(i, (n, ty))| {
                    let def = ColumnDef::new(*n, *ty);
                    if i == 0 {
                        def.primary_key()
                    } else {
                        def
                    }
                })
                .collect(),
        )
        .expect("static schema is well-formed")
    };
    c.add(t(
        "hotelchain",
        &[("chainid", Int), ("companyname", Str), ("hqstate", Str)],
    ));
    c.add(t("metroarea", &[("metroid", Int), ("metroname", Str)]));
    c.add(t(
        "hotel",
        &[
            ("hotelid", Int),
            ("hotelname", Str),
            ("starrating", Int),
            ("chain_id", Int),
            ("metro_id", Int),
            ("state_id", Int),
            ("city", Str),
            ("pool", Str),
            ("gym", Str),
        ],
    ));
    c.add(t(
        "guestroom",
        &[
            ("r_id", Int),
            ("rhotel_id", Int),
            ("roomnumber", Int),
            ("type", Str),
            ("rackrate", Int),
        ],
    ));
    c.add(t(
        "confroom",
        &[
            ("c_id", Int),
            ("chotel_id", Int),
            ("croomnumber", Int),
            ("capacity", Int),
            ("rackrate", Int),
        ],
    ));
    c.add(t(
        "availability",
        &[
            ("a_id", Int),
            ("a_r_id", Int),
            ("startdate", Str),
            ("enddate", Str),
            ("price", Int),
        ],
    ));
    c
}

/// An empty database over the Figure 2 schema.
pub fn figure2_database() -> Database {
    let mut db = Database::new();
    for schema in figure2_catalog().iter() {
        db.create_table(schema.clone());
    }
    db
}

/// The schema-tree view query of Figure 1 (conference planning).
pub fn figure1_view() -> SchemaTree {
    let mut v = SchemaTree::new();
    let q = |sql: &str| parse_query(sql).expect("static SQL is well-formed");
    let metro = v
        .add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            q("SELECT metroid, metroname FROM metroarea"),
        ))
        .expect("valid tag");
    v.add_child(
        metro,
        ViewNode::new(
            2,
            "confstat",
            "cs",
            q("SELECT SUM(capacity) FROM confroom, hotel \
               WHERE chotel_id = hotelid AND metro_id = $m.metroid"),
        ),
    )
    .expect("valid tag");
    let hotel = v
        .add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                q("SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4"),
            ),
        )
        .expect("valid tag");
    v.add_child(
        hotel,
        ViewNode::new(
            4,
            "confstat",
            "s",
            q("SELECT SUM(capacity) FROM confroom WHERE chotel_id = $h.hotelid"),
        ),
    )
    .expect("valid tag");
    v.add_child(
        hotel,
        ViewNode::new(
            5,
            "confroom",
            "c",
            q("SELECT * FROM confroom WHERE chotel_id = $h.hotelid"),
        ),
    )
    .expect("valid tag");
    let avail = v
        .add_child(
            hotel,
            ViewNode::new(
                6,
                "hotel_available",
                "a",
                q(
                    "SELECT COUNT(a_id), startdate FROM availability, guestroom \
                   WHERE rhotel_id = $h.hotelid AND a_r_id = r_id GROUP BY startdate",
                ),
            ),
        )
        .expect("valid tag");
    v.add_child(
        avail,
        ViewNode::new(
            7,
            "metro_available",
            "v",
            q("SELECT COUNT(a_id) FROM availability, guestroom, hotel \
               WHERE rhotel_id = hotelid AND a_r_id = r_id \
               AND metro_id = $m.metroid AND startdate = $a.startdate"),
        ),
    )
    .expect("valid tag");
    v
}

/// Figure 15: like Figure 4, but rule R2 has no literal output — the
/// apply-templates sits at the top of the rule body, triggering *forced
/// unbinding* (§4.4).
pub const FIGURE15_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <HTML>
      <HEAD></HEAD>
      <BODY>
        <xsl:apply-templates select="metro"/>
      </BODY>
    </HTML>
  </xsl:template>
  <xsl:template match="metro">
    <xsl:apply-templates select="hotel/confstat"/>
  </xsl:template>
  <xsl:template match="confstat">
    <result_confstat>
      <B></B>
      <xsl:apply-templates select="../hotel_available/../confroom"/>
    </result_confstat>
  </xsl:template>
  <xsl:template match="metro/hotel/confroom">
    <xsl:value-of select="."/>
  </xsl:template>
</xsl:stylesheet>"#;

/// Figure 17: Figure 4 with predicates (§5.1). R3's select carries value
/// and existence predicates; R4's match pattern tests `@metroname`.
pub const FIGURE17_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <HTML>
      <HEAD></HEAD>
      <BODY>
        <xsl:apply-templates select="metro"/>
      </BODY>
    </HTML>
  </xsl:template>
  <xsl:template match="metro">
    <result_metro>
      <A></A>
      <xsl:apply-templates select="hotel/confstat"/>
    </result_metro>
  </xsl:template>
  <xsl:template match="confstat">
    <result_confstat>
      <B/>
      <xsl:apply-templates select=".[@sum&lt;200]/../hotel_available/../confroom[../confstat[@sum&gt;100]][@capacity&gt;250]"/>
    </result_confstat>
  </xsl:template>
  <xsl:template match="metro[@metroname=&quot;chicago&quot;]/hotel/confroom">
    <xsl:value-of select="."/>
  </xsl:template>
</xsl:stylesheet>"#;

/// Figure 25: the recursive stylesheet of §5.3 (mutual recursion between
/// `/metro` and `metro_available` through the parent axis, bounded by the
/// `$idx` parameter).
pub const FIGURE25_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/metro">
    <xsl:param name="idx" select="10"/>
    <result_metro>
      <xsl:apply-templates select="hotel/hotel_available[@count&gt;10]/metro_available[@count&lt;$idx]">
        <xsl:with-param name="idx" select="$idx"/>
      </xsl:apply-templates>
    </result_metro>
  </xsl:template>
  <xsl:template match="metro_available">
    <xsl:param name="idx"/>
    <xsl:choose>
      <xsl:when test="$idx&lt;=1">
        <xsl:value-of select="."/>
      </xsl:when>
      <xsl:otherwise>
        <result_metroavail>
          <xsl:apply-templates select="self::*[@count&gt;50]/../../..">
            <xsl:with-param name="idx" select="$idx - 1"/>
          </xsl:apply-templates>
        </result_metroavail>
      </xsl:otherwise>
    </xsl:choose>
  </xsl:template>
</xsl:stylesheet>"#;

/// A small deterministic instance of the hotel schema: two metro areas,
/// four hotels (three above four stars), conference rooms, guest rooms and
/// availability records. Designed so that every node of the Figure 1 view
/// produces elements and the Figure 4/15/17 stylesheets exercise both the
/// populated and the empty branches.
pub fn sample_database() -> Database {
    let mut db = figure2_database();
    let i = Value::Int;
    let s = |x: &str| Value::Str(x.to_owned());

    db.insert("hotelchain", vec![i(1), s("Grand Chain"), s("IL")])
        .unwrap();
    for (id, name) in [(1, "chicago"), (2, "nyc")] {
        db.insert("metroarea", vec![i(id), s(name)]).unwrap();
    }
    // hotel(hotelid, hotelname, starrating, chain_id, metro_id, state_id,
    //       city, pool, gym)
    for (hid, name, stars, metro, pool, gym) in [
        (10, "palmer", 5, 1, "yes", "yes"),
        (11, "drake", 4, 1, "no", "yes"), // filtered out by starrating > 4
        (12, "plaza", 5, 2, "yes", "no"),
        (13, "ritz", 5, 1, "no", "no"),
    ] {
        db.insert(
            "hotel",
            vec![
                i(hid),
                s(name),
                i(stars),
                i(1),
                i(metro),
                i(1),
                s("city"),
                s(pool),
                s(gym),
            ],
        )
        .unwrap();
    }
    // guestroom(r_id, rhotel_id, roomnumber, type, rackrate)
    for (rid, hid, num) in [
        (100, 10, 101),
        (101, 10, 102),
        (102, 11, 201),
        (103, 12, 301),
        (104, 13, 401),
    ] {
        db.insert("guestroom", vec![i(rid), i(hid), i(num), s("king"), i(250)])
            .unwrap();
    }
    // confroom(c_id, chotel_id, croomnumber, capacity, rackrate)
    for (cid, hid, num, cap) in [
        (200, 10, 1, 300),
        (201, 10, 2, 150),
        (202, 11, 1, 500),
        (203, 12, 1, 120),
    ] {
        db.insert("confroom", vec![i(cid), i(hid), i(num), i(cap), i(900)])
            .unwrap();
    }
    // availability(a_id, a_r_id, startdate, enddate, price): hotel 10 has
    // availability on two dates; hotel 12 has none (so its confroom is not
    // selected by R3's parent-axis path); hotel 13 has one.
    for (aid, rid, start) in [
        (300, 100, "2003-06-09"),
        (301, 101, "2003-06-09"),
        (302, 100, "2003-06-10"),
        (303, 104, "2003-06-09"),
    ] {
        db.insert(
            "availability",
            vec![i(aid), i(rid), s(start), s("2003-06-12"), i(199)],
        )
        .unwrap();
    }
    db
}

/// Like [`sample_database`], with dense availability for hotel 10 (60
/// bookable room-days on one date): enough to clear the Figure 25
/// thresholds (`@count > 10` at the hotel level, `@count > 50` at the
/// metro level) so the §5.3 recursion actually recurses.
pub fn dense_availability_database() -> Database {
    let mut db = sample_database();
    let i = Value::Int;
    let s = |x: &str| Value::Str(x.to_owned());
    for k in 0..60 {
        let room = if k % 2 == 0 { 100 } else { 101 };
        db.insert(
            "availability",
            vec![
                i(400 + k),
                i(room),
                s("2003-07-01"),
                s("2003-07-04"),
                i(150),
            ],
        )
        .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_view::Engine;

    #[test]
    fn figure1_view_is_well_formed() {
        figure1_view().validate().unwrap();
        assert_eq!(figure1_view().len(), 7);
    }

    #[test]
    fn figure2_catalog_has_all_tables() {
        let c = figure2_catalog();
        for t in [
            "hotelchain",
            "metroarea",
            "hotel",
            "guestroom",
            "confroom",
            "availability",
        ] {
            assert!(c.contains(t), "{t}");
        }
    }

    #[test]
    fn sample_database_publishes_figure1() {
        let published = Engine::new(&figure1_view())
            .session()
            .publish(&sample_database())
            .unwrap();
        let (doc, stats) = (published.document, published.stats);
        let xml = doc.to_xml();
        // Two metros; three hotels pass the starrating filter.
        assert_eq!(xml.matches("<metro ").count(), 2);
        assert_eq!(xml.matches("<hotel ").count(), 3);
        // Each hotel has a confstat child; metro-level confstats also
        // appear (ids 2 and 4 share the tag).
        assert!(xml.matches("<confstat").count() >= 4);
        // hotel_available groups by startdate: hotel 10 → 2 dates.
        assert!(xml.contains("hotel_available"));
        assert!(xml.contains("metro_available"));
        assert!(stats.elements > 10);
    }

    #[test]
    fn paper_stylesheets_parse() {
        for (name, src) in [
            ("fig15", FIGURE15_XSLT),
            ("fig17", FIGURE17_XSLT),
            ("fig25", FIGURE25_XSLT),
        ] {
            xvc_xslt::parse_stylesheet(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
