//! `MATCHQ(n, r)` — abstract pattern matching over the schema tree (§3.5).
//!
//! Checks whether the template path `match(r)` matches some suffix of the
//! path from the (implied) document root to schema-tree node `n`. Because
//! `XSLT_basic` has no descendant axis, a match corresponds to a unique
//! simple path, returned as a chain-shaped [`TreePattern`] whose context
//! node is `n` (Figure 8, right). With the `//` extension, all embeddings
//! are enumerated and ambiguity is reported as an error.

use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xpath::{Axis, NodeTest, PathExpr};

use crate::error::{Error, Result};
use crate::selectq::attach_predicates;
use crate::tree_pattern::TreePattern;

/// Abstractly matches `pattern` against view node `n`, returning the
/// tree-pattern chain if it matches, `None` otherwise.
pub fn matchq(view: &SchemaTree, n: ViewNodeId, pattern: &PathExpr) -> Result<Option<TreePattern>> {
    // Pattern "/" matches exactly the implied document root.
    if pattern.steps.is_empty() {
        if pattern.absolute && view.is_root(n) {
            return Ok(Some(TreePattern::single(n)));
        }
        return Ok(None);
    }
    if view.is_root(n) {
        return Ok(None); // element patterns never match the root
    }

    // Enumerate embeddings: chains of view nodes ending at n, aligned with
    // the pattern steps.
    let mut embeddings: Vec<Vec<ViewNodeId>> = Vec::new();
    embed(
        view,
        n,
        pattern,
        pattern.steps.len() - 1,
        &mut vec![n],
        &mut embeddings,
    )?;
    match embeddings.len() {
        0 => Ok(None),
        1 => {
            // `chain` is bottom-up: chain[0] = n, then its matched
            // ancestors. Anchor the pattern at n and grow upward.
            let chain = &embeddings[0];
            let mut tp = TreePattern::single(chain[0]);
            let mut top = tp.context;
            for vid in chain.iter().skip(1) {
                top = tp.add_parent_above(top, *vid);
            }
            // Attach step predicates bottom-up (last step ↦ n), expanding
            // path predicates into existence branches just as SELECTQ does.
            let mut cur = tp.context;
            for step in pattern.steps.iter().rev() {
                attach_predicates(view, &mut tp, cur, &step.predicates)?;
                match tp.parent(cur) {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            // Absolute pattern whose first step is on the child axis:
            // anchor the chain at the implied root.
            if pattern.absolute && pattern.steps[0].axis == Axis::Child {
                let top = tp.root();
                let top_view = tp.view(top);
                if let Some(parent) = view.parent(top_view) {
                    debug_assert!(view.is_root(parent));
                    tp.add_parent_above(top, parent);
                }
            }
            Ok(Some(tp))
        }
        _ => Err(Error::Ambiguous {
            reason: format!(
                "pattern `{pattern}` has {} embeddings ending at view node {}",
                embeddings.len(),
                view.node(n).map(|x| x.id).unwrap_or(0)
            ),
        }),
    }
}

/// Recursively extends a partial embedding upward. `chain` holds the view
/// nodes matched so far, bottom (n) first.
fn embed(
    view: &SchemaTree,
    cur: ViewNodeId,
    pattern: &PathExpr,
    step_idx: usize,
    chain: &mut Vec<ViewNodeId>,
    out: &mut Vec<Vec<ViewNodeId>>,
) -> Result<()> {
    let step = &pattern.steps[step_idx];
    if !test_accepts(view, cur, &step.test) {
        return Ok(());
    }
    if step_idx == 0 {
        // First step: check the anchoring constraint.
        let anchored = match (pattern.absolute, step.axis) {
            (true, Axis::Child) => view.parent(cur).map(|p| view.is_root(p)).unwrap_or(false),
            // `//name` anchors anywhere below the root; relative patterns
            // anchor anywhere.
            _ => true,
        };
        if anchored {
            out.push(chain.clone());
        }
        return Ok(());
    }
    // Where must the previous step match?
    match step.axis {
        Axis::Child => {
            if let Some(p) = view.parent(cur) {
                if !view.is_root(p) {
                    chain.push(p);
                    embed(view, p, pattern, step_idx - 1, chain, out)?;
                    chain.pop();
                }
            }
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            let start = if step.axis == Axis::DescendantOrSelf {
                Some(cur)
            } else {
                view.parent(cur)
            };
            let mut anc = start;
            while let Some(a) = anc {
                if !view.is_root(a) {
                    chain.push(a);
                    embed(view, a, pattern, step_idx - 1, chain, out)?;
                    chain.pop();
                }
                anc = view.parent(a);
            }
        }
        axis => {
            return Err(Error::NotComposable {
                reason: format!("axis {} in a match pattern", axis.name()),
            })
        }
    }
    Ok(())
}

fn test_accepts(view: &SchemaTree, n: ViewNodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Wildcard => !view.is_root(n),
        NodeTest::Name(name) => view.tag(n) == Some(name.as_str()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::figure1_view;
    use xvc_xpath::parse_pattern;

    fn by_id(view: &SchemaTree, id: u32) -> ViewNodeId {
        view.find_by_paper_id(id).unwrap()
    }

    #[test]
    fn root_pattern_matches_root_only() {
        let v = figure1_view();
        let p = parse_pattern("/").unwrap();
        assert!(matchq(&v, v.root(), &p).unwrap().is_some());
        assert!(matchq(&v, by_id(&v, 1), &p).unwrap().is_none());
    }

    #[test]
    fn figure4_rule_matches() {
        let v = figure1_view();
        // match(R2) = "metro" matches node (1, metro).
        let p = parse_pattern("metro").unwrap();
        let tp = matchq(&v, by_id(&v, 1), &p).unwrap().unwrap();
        assert_eq!(tp.len(), 1);
        assert_eq!(tp.view(tp.context), by_id(&v, 1));
        // match(R3) = "confstat" matches BOTH confstat nodes (ids 2 and 4).
        let p = parse_pattern("confstat").unwrap();
        assert!(matchq(&v, by_id(&v, 2), &p).unwrap().is_some());
        assert!(matchq(&v, by_id(&v, 4), &p).unwrap().is_some());
        // match(R4) = "metro/hotel/confroom" matches (5, confroom) with a
        // three-node chain (Figure 8).
        let p = parse_pattern("metro/hotel/confroom").unwrap();
        let tp = matchq(&v, by_id(&v, 5), &p).unwrap().unwrap();
        assert_eq!(tp.len(), 3);
        assert_eq!(tp.view(tp.context), by_id(&v, 5));
        assert_eq!(tp.view(tp.root()), by_id(&v, 1));
        // ... but not the metro-level confstat (id 2).
        assert!(matchq(&v, by_id(&v, 2), &p).unwrap().is_none());
    }

    #[test]
    fn wrong_names_do_not_match() {
        let v = figure1_view();
        let p = parse_pattern("hotel/confstat").unwrap();
        assert!(matchq(&v, by_id(&v, 2), &p).unwrap().is_none()); // metro-level confstat
        assert!(matchq(&v, by_id(&v, 4), &p).unwrap().is_some()); // hotel-level confstat
    }

    #[test]
    fn absolute_patterns_anchor() {
        let v = figure1_view();
        let p = parse_pattern("/metro").unwrap();
        let tp = matchq(&v, by_id(&v, 1), &p).unwrap().unwrap();
        // Chain includes the implied root for the anchoring.
        assert_eq!(tp.len(), 2);
        assert!(v.is_root(tp.view(tp.root())));
        let p = parse_pattern("/hotel").unwrap();
        assert!(matchq(&v, by_id(&v, 3), &p).unwrap().is_none());
    }

    #[test]
    fn descendant_patterns_resolve() {
        let v = figure1_view();
        let p = parse_pattern("metro//confroom").unwrap();
        let tp = matchq(&v, by_id(&v, 5), &p).unwrap().unwrap();
        assert_eq!(tp.len(), 2); // metro and confroom; hotel is skipped
        let p = parse_pattern("//confstat").unwrap();
        assert!(matchq(&v, by_id(&v, 4), &p).unwrap().is_some());
    }

    #[test]
    fn predicates_ride_on_chain_nodes() {
        let v = figure1_view();
        let p = parse_pattern("metro[@metroname=\"chicago\"]/hotel/confroom").unwrap();
        let tp = matchq(&v, by_id(&v, 5), &p).unwrap().unwrap();
        let root = tp.root();
        assert_eq!(tp.predicates(root).len(), 1);
        assert_eq!(tp.predicates(tp.context).len(), 0);
    }

    #[test]
    fn wildcard_pattern_matches_any_element() {
        let v = figure1_view();
        let p = parse_pattern("*").unwrap();
        assert!(matchq(&v, by_id(&v, 3), &p).unwrap().is_some());
        assert!(matchq(&v, v.root(), &p).unwrap().is_none());
    }
}
