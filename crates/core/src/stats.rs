//! Per-stage composition statistics.
//!
//! [`ComposeStats`] quantifies what each stage of Figure 9 produced: how
//! many (view-node, rule) pairs the CTG holds, how much the TVQ unrolling
//! duplicated shared CTG nodes (the §4.5 exponential case — the
//! `duplication_factor` is exactly the blowup the `tvq_limit` budget
//! guards), how deeply `UNBIND` nested derived tables into the composed
//! tag queries, and how much literal OTT fragment material the stylesheet
//! view carries.

use xvc_rel::{ScalarExpr, SelectQuery, TableRef};
use xvc_view::SchemaTree;
use xvc_xslt::Stylesheet;

use crate::ctg::Ctg;
use crate::tvq::Tvq;

/// Size counters for one composition run, one group per pipeline stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComposeStats {
    /// Nodes in the input schema-tree view.
    pub view_nodes: usize,
    /// Template rules in the (lowered) stylesheet.
    pub stylesheet_rules: usize,
    /// CTG nodes: reachable (view-node, rule) pairs.
    pub ctg_nodes: usize,
    /// CTG edges: possible context transitions.
    pub ctg_edges: usize,
    /// TVQ nodes after unrolling the CTG into a tree (post-prune when
    /// [`crate::ComposeOptions::prune`] is on).
    pub tvq_nodes: usize,
    /// TVQ nodes the predicate-dataflow pass removed as provably dead
    /// (0 unless [`crate::ComposeOptions::prune`] is on).
    pub tvq_nodes_pruned: usize,
    /// Provably redundant conjuncts dropped from surviving tag queries by
    /// the same pass.
    pub conjuncts_eliminated: usize,
    /// `tvq_nodes / ctg_nodes` — how much unrolling duplicated shared CTG
    /// nodes (§4.5; 1.0 means the CTG was already a tree).
    pub duplication_factor: f64,
    /// Nodes in the composed stylesheet view.
    pub composed_nodes: usize,
    /// Composed nodes carrying a tag query.
    pub composed_queries: usize,
    /// Composed nodes with neither query nor context copy: literal output
    /// from the rules' OTT fragments.
    pub ott_literal_nodes: usize,
    /// Maximum derived-table nesting across all composed tag queries —
    /// the depth `UNBIND` reached substituting binding variables.
    pub max_unbind_depth: usize,
}

impl ComposeStats {
    /// Gathers counters from the artifacts of one composition run.
    pub fn collect(
        view: &SchemaTree,
        stylesheet: &Stylesheet,
        ctg: &Ctg,
        tvq: &Tvq,
        composed: &SchemaTree,
    ) -> Self {
        let mut composed_queries = 0;
        let mut ott_literal_nodes = 0;
        let mut max_unbind_depth = 0;
        for vid in composed.node_ids() {
            let Some(node) = composed.node(vid) else {
                continue;
            };
            match &node.query {
                Some(q) => {
                    composed_queries += 1;
                    max_unbind_depth = max_unbind_depth.max(query_nesting_depth(q));
                }
                None if node.context_tuple_of.is_none() => ott_literal_nodes += 1,
                None => {}
            }
        }
        ComposeStats {
            view_nodes: view.len(),
            stylesheet_rules: stylesheet.len(),
            ctg_nodes: ctg.nodes.len(),
            ctg_edges: ctg.edges.len(),
            tvq_nodes: tvq.nodes.len(),
            tvq_nodes_pruned: 0,
            conjuncts_eliminated: 0,
            duplication_factor: if ctg.nodes.is_empty() {
                1.0
            } else {
                tvq.nodes.len() as f64 / ctg.nodes.len() as f64
            },
            composed_nodes: composed.len(),
            composed_queries,
            ott_literal_nodes,
            max_unbind_depth,
        }
    }
}

impl std::fmt::Display for ComposeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "input:    {} view nodes, {} template rules",
            self.view_nodes, self.stylesheet_rules
        )?;
        writeln!(
            f,
            "CTG:      {} nodes, {} edges",
            self.ctg_nodes, self.ctg_edges
        )?;
        writeln!(
            f,
            "TVQ:      {} nodes (duplication factor {:.2})",
            self.tvq_nodes, self.duplication_factor
        )?;
        if self.tvq_nodes_pruned > 0 || self.conjuncts_eliminated > 0 {
            writeln!(
                f,
                "pruned:   {} dead TVQ nodes removed, {} redundant conjuncts dropped",
                self.tvq_nodes_pruned, self.conjuncts_eliminated
            )?;
        }
        write!(
            f,
            "composed: {} nodes ({} tag queries, {} OTT literals, max unbind depth {})",
            self.composed_nodes,
            self.composed_queries,
            self.ott_literal_nodes,
            self.max_unbind_depth
        )
    }
}

/// Maximum derived-table nesting depth of a query: 0 for base tables only;
/// each derived-table level (in FROM, or inside EXISTS subqueries) adds 1.
pub fn query_nesting_depth(q: &SelectQuery) -> usize {
    let mut depth = 0;
    for t in &q.from {
        if let TableRef::Derived { query, .. } = t {
            depth = depth.max(1 + query_nesting_depth(query));
        }
    }
    for e in q
        .where_clause
        .iter()
        .chain(q.having.iter())
        .chain(q.group_by.iter())
    {
        depth = depth.max(expr_nesting_depth(e));
    }
    depth
}

fn expr_nesting_depth(e: &ScalarExpr) -> usize {
    match e {
        ScalarExpr::Exists(q) => 1 + query_nesting_depth(q),
        ScalarExpr::Binary { lhs, rhs, .. } => expr_nesting_depth(lhs).max(expr_nesting_depth(rhs)),
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => expr_nesting_depth(i),
        ScalarExpr::Aggregate { arg: Some(a), .. } => expr_nesting_depth(a),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_rel::parse_query;

    #[test]
    fn nesting_depth_counts_derived_levels() {
        let q = parse_query("SELECT * FROM hotel").unwrap();
        assert_eq!(query_nesting_depth(&q), 0);
        let q =
            parse_query("SELECT * FROM (SELECT * FROM (SELECT * FROM hotel) AS A) AS B").unwrap();
        assert_eq!(query_nesting_depth(&q), 2);
        let q = parse_query(
            "SELECT * FROM hotel WHERE EXISTS (SELECT * FROM (SELECT * FROM confroom) AS T)",
        )
        .unwrap();
        assert_eq!(query_nesting_depth(&q), 2);
    }

    #[test]
    fn collect_reports_every_pipeline_stage() {
        use crate::paper_fixtures::{figure1_view, figure2_catalog};
        let view = figure1_view();
        let stylesheet = xvc_xslt::parse_stylesheet(xvc_xslt::parse::FIGURE4_XSLT).unwrap();
        let composition = crate::Composer::new(&view, &stylesheet, &figure2_catalog())
            .run()
            .unwrap();
        let (composed, stats) = (composition.view, composition.stats);

        assert_eq!(stats.view_nodes, view.len());
        assert_eq!(stats.stylesheet_rules, stylesheet.len());
        assert!(stats.ctg_nodes > 0 && stats.ctg_edges > 0);
        // Unrolling never shrinks the CTG, so the factor is at least 1.
        assert!(stats.tvq_nodes >= stats.ctg_nodes);
        assert!(stats.duplication_factor >= 1.0);
        assert_eq!(stats.composed_nodes, composed.len());
        // Figure 7(c): parameterized tag queries on result_metro,
        // result_confstat and confroom, plus the literal HTML skeleton.
        assert!(stats.composed_queries >= 3, "{stats}");
        assert!(stats.ott_literal_nodes >= 2, "{stats}");
        // UNBIND nests at least one derived-table level (Figure 12).
        assert!(stats.max_unbind_depth >= 1, "{stats}");
    }
}
