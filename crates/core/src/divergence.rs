//! Divergence reporter: localized diffs of `v'(I)` against `x(v(I))`.
//!
//! The equivalence theorem says the composed view and the naive
//! publish-then-transform pipeline agree on every instance. When they do
//! not (a composition bug, or a deliberately mutated view), a bare
//! "documents differ" is useless for debugging — the interesting question
//! is *which* subtree diverged and *which tag query under which bindings*
//! produced it.
//!
//! [`check_composition`] evaluates both sides, compares them under the
//! same unordered-multiset semantics as
//! [`xvc_xml::documents_equal_unordered`], and on mismatch descends to the
//! first divergent node: unmatched children are paired by tag and recursed
//! into, so the reported path is as deep as the documents still agree.
//! The composed side is published with a provenance trace
//! ([`xvc_view::Engine::traced`]), letting the report name the
//! schema-tree node, its tag query, and the [`ParamEnv`] in effect at the
//! divergent path.
//!
//! [`ParamEnv`]: xvc_rel::ParamEnv

use std::collections::HashMap;

use xvc_rel::Database;
use xvc_view::{Engine, PublishTrace, SchemaTree, ViewNodeId};
use xvc_xml::{canonical_string, documents_equal_unordered, Document, NodeId, NodeKind};
use xvc_xslt::Stylesheet;

use crate::error::Result;

/// What kind of disagreement was found at the divergence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A subtree required by `x(v(I))` has no counterpart in `v'(I)`.
    Missing,
    /// `v'(I)` produced a subtree `x(v(I))` does not contain.
    Unexpected,
    /// Same-tag subtrees exist on both sides but no pairing makes them
    /// equal (differing attributes or descendants).
    Mismatch,
    /// Text content differs under the reported path.
    TextMismatch,
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DivergenceKind::Missing => "missing subtree (in x(v(I)), absent from v'(I))",
            DivergenceKind::Unexpected => "unexpected subtree (in v'(I), absent from x(v(I)))",
            DivergenceKind::Mismatch => "subtree mismatch",
            DivergenceKind::TextMismatch => "text mismatch",
        })
    }
}

/// A structured first-divergence report.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Indexed XML path of the divergent node (or of the parent under
    /// which a subtree is missing), e.g. `/result[1]/hotel[2]`.
    pub path: String,
    /// What went wrong there.
    pub kind: DivergenceKind,
    /// The subtree the naive pipeline `x(v(I))` expects (serialized XML).
    pub expected: Option<String>,
    /// The subtree the composed view `v'(I)` produced.
    pub actual: Option<String>,
    /// The schema-tree node of the composed view that produced (or should
    /// have produced) the divergent subtree.
    pub view_node: Option<ViewNodeId>,
    /// That node's tag query, rendered as SQL.
    pub tag_query: Option<String>,
    /// The parameter bindings in effect: `(variable, rendered tuple)`.
    pub param_env: Vec<(String, String)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "composition divergence at {}", self.path)?;
        writeln!(f, "  kind: {}", self.kind)?;
        match &self.expected {
            Some(x) => writeln!(f, "  expected (naive x(v(I))): {x}")?,
            None => writeln!(f, "  expected (naive x(v(I))): (nothing)")?,
        }
        match &self.actual {
            Some(x) => writeln!(f, "  actual (composed v'(I)):  {x}")?,
            None => writeln!(f, "  actual (composed v'(I)):  (nothing)")?,
        }
        if let Some(v) = self.view_node {
            writeln!(f, "  produced by composed view node {v:?}")?;
        }
        if let Some(q) = &self.tag_query {
            writeln!(f, "  tag query: {q}")?;
        }
        if self.param_env.is_empty() {
            write!(f, "  bindings: (empty)")?;
        } else {
            write!(f, "  bindings:")?;
            for (var, tuple) in &self.param_env {
                write!(f, "\n    ${var} = {tuple}")?;
            }
        }
        Ok(())
    }
}

/// Evaluates the naive pipeline `x(v(I))` and the composed view `v'(I)`
/// side by side. Returns `None` when they agree (unordered semantics,
/// §2.2.2) and a localized [`Divergence`] when they do not.
pub fn check_composition(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    composed: &SchemaTree,
    db: &Database,
) -> Result<Option<Divergence>> {
    // Both sides run through the set-oriented (batched) publisher — the
    // default production path, so the equivalence check certifies exactly
    // what serving uses.
    let vi = Engine::new(view)
        .batched(true)
        .session()
        .publish(db)?
        .document;
    let expected = xvc_xslt::process(stylesheet, &vi)?;
    let published = Engine::new(composed)
        .batched(true)
        .traced(true)
        .session()
        .publish(db)?;
    let (actual, trace) = (
        published.document,
        published.trace.expect("tracing was enabled"),
    );
    if documents_equal_unordered(&expected, &actual) {
        return Ok(None);
    }
    let raw = diff_pair(
        &expected,
        expected.root(),
        &actual,
        actual.root(),
        String::new(),
    )
    .unwrap_or(RawDivergence {
        path: String::new(),
        kind: DivergenceKind::Mismatch,
        expected: Some(expected.to_xml()),
        actual: Some(actual.to_xml()),
        missing_tag: None,
    });
    Ok(Some(attribute(raw, composed, &trace)))
}

struct RawDivergence {
    /// Indexed path of the divergent actual node, or of the parent when
    /// the divergence is a missing subtree. Empty string = document root.
    path: String,
    kind: DivergenceKind,
    expected: Option<String>,
    actual: Option<String>,
    /// Tag of the missing expected subtree, when [`DivergenceKind::Missing`].
    missing_tag: Option<String>,
}

/// Compares two paired nodes (same tag by construction); returns the first
/// divergence found, descending into same-tag unmatched children.
/// `path` is the indexed path of `a` (empty for the root).
fn diff_pair(
    e_doc: &Document,
    e: NodeId,
    a_doc: &Document,
    a: NodeId,
    path: String,
) -> Option<RawDivergence> {
    // Attribute disagreement on the pair itself.
    if let (NodeKind::Element { .. }, NodeKind::Element { .. }) = (e_doc.kind(e), a_doc.kind(a)) {
        let mut ea: Vec<_> = e_doc.attrs(e).to_vec();
        let mut aa: Vec<_> = a_doc.attrs(a).to_vec();
        ea.sort();
        aa.sort();
        if ea != aa {
            return Some(RawDivergence {
                path,
                kind: DivergenceKind::Mismatch,
                expected: Some(e_doc.node_to_xml(e)),
                actual: Some(a_doc.node_to_xml(a)),
                missing_tag: None,
            });
        }
    }

    let e_keys = child_keys(e_doc, e);
    let a_keys = child_keys(a_doc, a);
    let unmatched_e = unmatched(&e_keys, &a_keys);
    let unmatched_a = unmatched(&a_keys, &e_keys);
    if unmatched_e.is_empty() && unmatched_a.is_empty() {
        return None; // subtrees agree as multisets
    }

    // Pair off same-tag unmatched elements and descend: the divergence is
    // inside them, and recursing localizes it further.
    for &(_, ex) in &unmatched_e {
        let Some(tag) = e_doc.name(ex) else { continue };
        for &(_, ax) in &unmatched_a {
            if a_doc.is_element_named(ax, tag) {
                let child_path = format!("{path}/{}", indexed_segment(a_doc, a, ax));
                if let Some(d) = diff_pair(e_doc, ex, a_doc, ax, child_path) {
                    return Some(d);
                }
            }
        }
    }

    // No same-tag pair explains it: report at this level.
    let first_e = unmatched_e.first().map(|&(_, id)| id);
    let first_a = unmatched_a.first().map(|&(_, id)| id);
    let text_only = first_e.map(|id| !e_doc.is_element(id)).unwrap_or(true)
        && first_a.map(|id| !a_doc.is_element(id)).unwrap_or(true);
    let (kind, report_path) = match (first_e, first_a) {
        _ if text_only => (DivergenceKind::TextMismatch, path.clone()),
        (Some(_), None) => (DivergenceKind::Missing, path.clone()),
        (None, Some(ax)) if a_doc.is_element(ax) => (
            DivergenceKind::Unexpected,
            format!("{path}/{}", indexed_segment(a_doc, a, ax)),
        ),
        (Some(_), Some(ax)) if a_doc.is_element(ax) => (
            DivergenceKind::Mismatch,
            format!("{path}/{}", indexed_segment(a_doc, a, ax)),
        ),
        _ => (DivergenceKind::Mismatch, path.clone()),
    };
    Some(RawDivergence {
        path: report_path,
        kind,
        expected: first_e.map(|id| e_doc.node_to_xml(id)),
        actual: first_a.map(|id| a_doc.node_to_xml(id)),
        missing_tag: first_e
            .filter(|_| kind == DivergenceKind::Missing)
            .and_then(|id| e_doc.name(id).map(str::to_owned)),
    })
}

/// Canonical comparison keys for a node's relevant children (elements and
/// non-whitespace text), mirroring `documents_equal_unordered`.
fn child_keys(doc: &Document, id: NodeId) -> Vec<(String, NodeId)> {
    let mut out = Vec::new();
    for &c in doc.children(id) {
        match doc.kind(c) {
            NodeKind::Element { .. } => out.push((canonical_string(doc, c), c)),
            NodeKind::Text(t) if !t.trim().is_empty() => {
                out.push((format!("\u{1}text:{}", t.trim()), c));
            }
            _ => {}
        }
    }
    out
}

/// Entries of `left` that cannot be matched against `right` (multiset
/// difference on the canonical keys).
fn unmatched(left: &[(String, NodeId)], right: &[(String, NodeId)]) -> Vec<(String, NodeId)> {
    let mut avail: HashMap<&str, usize> = HashMap::new();
    for (k, _) in right {
        *avail.entry(k.as_str()).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, id) in left {
        match avail.get_mut(k.as_str()) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push((k.clone(), *id)),
        }
    }
    out
}

/// Indexed path segment (`tag[i]`) of element `child` under `parent`,
/// counting same-tag element siblings in document order (1-based) — the
/// same convention the publish trace records.
fn indexed_segment(doc: &Document, parent: NodeId, child: NodeId) -> String {
    let tag = doc.name(child).unwrap_or("?");
    let mut n = 0;
    for &c in doc.children(parent) {
        if doc.is_element_named(c, tag) {
            n += 1;
        }
        if c == child {
            break;
        }
    }
    format!("{tag}[{n}]")
}

/// Joins a raw diff with the publish trace: which schema-tree node of the
/// composed view is responsible, under which bindings.
fn attribute(raw: RawDivergence, composed: &SchemaTree, trace: &PublishTrace) -> Divergence {
    let display_path = if raw.path.is_empty() {
        "/".to_owned()
    } else {
        raw.path.clone()
    };
    let entry = trace
        .lookup(&raw.path)
        .or_else(|| trace.deepest_ancestor(&raw.path));
    let mut view_node = None;
    let mut tag_query = None;
    let mut param_env = Vec::new();
    if let Some(entry) = entry {
        let mut responsible = entry.view;
        // For a missing subtree the trace names the emitted parent; the
        // responsible node is the parent's child that carries the tag.
        if raw.kind == DivergenceKind::Missing {
            if let Some(tag) = &raw.missing_tag {
                if let Some(&child) = composed
                    .children(entry.view)
                    .iter()
                    .find(|&&c| composed.node(c).map(|n| n.tag == *tag).unwrap_or(false))
                {
                    responsible = child;
                }
            }
        }
        view_node = Some(responsible);
        tag_query = composed
            .node(responsible)
            .and_then(|n| n.query.as_ref())
            .map(xvc_rel::SelectQuery::to_sql_inline);
        let mut vars: Vec<_> = entry.env.iter().collect();
        vars.sort_by(|a, b| a.0.cmp(b.0));
        for (var, tuple) in vars {
            let cols: Vec<String> = tuple
                .columns
                .iter()
                .zip(&tuple.values)
                .map(|(c, v)| format!("{c}={}", v.render()))
                .collect();
            param_env.push((var.clone(), format!("{{{}}}", cols.join(", "))));
        }
    }
    Divergence {
        path: display_path,
        kind: raw.kind,
        expected: raw.expected,
        actual: raw.actual,
        view_node,
        tag_query,
        param_env,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::{figure1_view, figure2_catalog, sample_database};
    use crate::Composer;

    fn compose(
        view: &SchemaTree,
        stylesheet: &Stylesheet,
        catalog: &xvc_rel::Catalog,
    ) -> Result<SchemaTree> {
        Composer::new(view, stylesheet, catalog)
            .run()
            .map(|c| c.view)
    }
    use xvc_rel::{parse_query, BinOp, ScalarExpr, SelectQuery, TableRef, Value};
    use xvc_view::ViewNode;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    /// metro → hotel, with the paper's `starrating > 4` filter — small
    /// enough that the mutation tests below can predict exact paths.
    fn tiny_view() -> SchemaTree {
        let mut v = SchemaTree::new();
        let q = |sql: &str| parse_query(sql).expect("static SQL is well-formed");
        let metro = v
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                q("SELECT metroid, metroname FROM metroarea"),
            ))
            .unwrap();
        v.add_child(
            metro,
            ViewNode::new(
                2,
                "hotel",
                "h",
                q("SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4"),
            ),
        )
        .unwrap();
        v
    }

    const TINY_XSLT: &str = r#"<xsl:stylesheet>
        <xsl:template match="/">
          <result><xsl:apply-templates select="metro"/></result>
        </xsl:template>
        <xsl:template match="metro">
          <result_metro><xsl:apply-templates select="hotel"/></result_metro>
        </xsl:template>
        <xsl:template match="hotel">
          <result_hotel></result_hotel>
        </xsl:template>
      </xsl:stylesheet>"#;

    /// Rewrites every WHERE conjunct of `q` (descending into derived
    /// tables and EXISTS subqueries) through `f`: `None` drops the
    /// conjunct, `Some(e)` replaces it. Returns how many leaves `f`
    /// touched (i.e. did not return unchanged).
    fn rewrite_conjuncts(
        q: &mut SelectQuery,
        f: &impl Fn(&ScalarExpr) -> Option<Option<ScalarExpr>>,
    ) -> usize {
        let mut touched = 0;
        for t in &mut q.from {
            if let TableRef::Derived { query, .. } = t {
                touched += rewrite_conjuncts(query, f);
            }
        }
        if let Some(w) = q.where_clause.take() {
            let mut kept = Vec::new();
            touched += rewrite_leaves(w, f, &mut kept);
            q.where_clause = kept.into_iter().reduce(|a, b| ScalarExpr::Binary {
                op: BinOp::And,
                lhs: Box::new(a),
                rhs: Box::new(b),
            });
        }
        touched
    }

    fn rewrite_leaves(
        e: ScalarExpr,
        f: &impl Fn(&ScalarExpr) -> Option<Option<ScalarExpr>>,
        kept: &mut Vec<ScalarExpr>,
    ) -> usize {
        match e {
            ScalarExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => rewrite_leaves(*lhs, f, kept) + rewrite_leaves(*rhs, f, kept),
            mut leaf => match f(&leaf) {
                Some(Some(replacement)) => {
                    kept.push(replacement);
                    1
                }
                Some(None) => 1,
                None => {
                    let mut touched = 0;
                    if let ScalarExpr::Exists(ref mut sub) = leaf {
                        touched = rewrite_conjuncts(sub, f);
                    }
                    kept.push(leaf);
                    touched
                }
            },
        }
    }

    /// Matches the conjunct `starrating > <n>` wherever UNBIND left it
    /// (possibly qualifier-prefixed).
    fn star_gt(e: &ScalarExpr, n: i64) -> bool {
        matches!(e, ScalarExpr::Binary { op: BinOp::Gt, lhs, rhs }
            if matches!(&**lhs, ScalarExpr::Column { name, .. } if name == "starrating")
            && matches!(&**rhs, ScalarExpr::Literal(Value::Int(v)) if *v == n))
    }

    /// Applies `f` to every composed tag query; returns touched-leaf count.
    fn mutate_composed(
        composed: &mut SchemaTree,
        f: &impl Fn(&ScalarExpr) -> Option<Option<ScalarExpr>>,
    ) -> usize {
        let mut touched = 0;
        for vid in composed.node_ids() {
            if let Some(q) = composed.node_mut(vid).and_then(|n| n.query.as_mut()) {
                touched += rewrite_conjuncts(q, f);
            }
        }
        touched
    }

    #[test]
    fn faithful_composition_has_no_divergence() {
        let view = figure1_view();
        let stylesheet = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let composed = compose(&view, &stylesheet, &figure2_catalog()).unwrap();
        let db = sample_database();
        let report = check_composition(&view, &stylesheet, &composed, &db).unwrap();
        assert!(report.is_none(), "{}", report.unwrap());
    }

    #[test]
    fn dropped_where_conjunct_pinpoints_unexpected_subtree() {
        let view = tiny_view();
        let stylesheet = parse_stylesheet(TINY_XSLT).unwrap();
        let mut composed = compose(&view, &stylesheet, &figure2_catalog()).unwrap();
        let db = sample_database();
        assert!(check_composition(&view, &stylesheet, &composed, &db)
            .unwrap()
            .is_none());

        // Inject the bug: drop `starrating > 4`, letting the 4-star drake
        // (chicago) leak into the composed output.
        let touched = mutate_composed(&mut composed, &|e| star_gt(e, 4).then_some(None));
        assert!(touched > 0, "mutation found no starrating conjunct");

        let d = check_composition(&view, &stylesheet, &composed, &db)
            .unwrap()
            .expect("mutated composition must diverge");
        // chicago (metro 1) has 2 qualifying hotels; the leaked drake is
        // the third result_hotel the composed side publishes there.
        assert_eq!(d.path, "/result[1]/result_metro[1]/result_hotel[3]");
        assert_eq!(d.kind, DivergenceKind::Unexpected);
        assert!(d.expected.is_none());
        assert!(d.actual.is_some());
        assert!(d.view_node.is_some());
        let sql = d.tag_query.as_deref().expect("tag query attributed");
        assert!(sql.contains("hotel"), "{sql}");
        assert!(
            !sql.contains("starrating"),
            "conjunct should be gone: {sql}"
        );
        assert!(
            d.param_env
                .iter()
                .any(|(_, tuple)| tuple.contains("chicago")),
            "bindings should name the chicago context: {:?}",
            d.param_env
        );
        let rendered = d.to_string();
        assert!(rendered.contains("composition divergence at"), "{rendered}");
    }

    #[test]
    fn strengthened_conjunct_reports_missing_subtree() {
        let view = tiny_view();
        let stylesheet = parse_stylesheet(TINY_XSLT).unwrap();
        let mut composed = compose(&view, &stylesheet, &figure2_catalog()).unwrap();
        let db = sample_database();

        // `starrating > 9` admits no hotel at all: every result_hotel the
        // naive pipeline emits goes missing from the composed side.
        let touched = mutate_composed(&mut composed, &|e| {
            star_gt(e, 4).then(|| {
                Some(ScalarExpr::Binary {
                    op: BinOp::Gt,
                    lhs: Box::new(ScalarExpr::Column {
                        qualifier: None,
                        name: "starrating".into(),
                    }),
                    rhs: Box::new(ScalarExpr::Literal(Value::Int(9))),
                })
            })
        });
        assert!(touched > 0, "mutation found no starrating conjunct");

        let d = check_composition(&view, &stylesheet, &composed, &db)
            .unwrap()
            .expect("mutated composition must diverge");
        assert_eq!(d.kind, DivergenceKind::Missing);
        assert_eq!(d.path, "/result[1]/result_metro[1]");
        assert!(d.expected.is_some());
        assert!(d.actual.is_none());
        // Attribution walks from the traced parent down to the child node
        // that should have produced the missing tag.
        let sql = d.tag_query.as_deref().expect("tag query attributed");
        assert!(sql.contains("starrating > 9"), "{sql}");
    }
}
