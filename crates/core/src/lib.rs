//! # `xvc-core` — the SIGMOD'03 view-composition algorithm
//!
//! Given a schema-tree view query `v` ([`xvc_view::SchemaTree`]) and an
//! XSLT stylesheet `x` ([`xvc_xslt::Stylesheet`]), [`Composer`] produces the
//! **stylesheet view** `v'`: a new schema-tree query such that for every
//! relational database instance `I`
//!
//! ```text
//! v'(I) = x(v(I))        (document order excluded, §2.2.2)
//! ```
//!
//! The implementation follows the paper's four steps (Figure 9):
//!
//! 1. **CTG** ([`ctg`]) — the context transition graph: nodes `(n, r)`
//!    pair schema-tree nodes with template rules that can match their
//!    instances ([`matchq()`]); edges carry *select-match subtrees*
//!    ([`tree_pattern::TreePattern`]) built by [`selectq()`] + [`combine()`].
//! 2. **TVQ** ([`tvq`]) — the traverse view query: the CTG unrolled into a
//!    tree (duplicating shared nodes — the §4.5 exponential case, guarded
//!    by a size limit), with each select-match subtree translated into a
//!    parameterized SQL tag query by [`unbind`] (Figures 10–13: derived
//!    tables up to the LCA, `GROUP BY` preservation for aggregates, and
//!    `EXISTS` existence/sibling conditions via `NEST`).
//! 3. **OTT** — output tag trees for each rule's output fragment.
//! 4. **Stylesheet view** ([`stylesheet_view`]) — OTT and TVQ merged,
//!    pseudo-roots removed, queries pushed down (with *forced unbinding*
//!    for rules whose fragment starts with apply-templates, Figures 15/16).
//!
//! §5 extensions: predicates ride along in the tree patterns and are pushed
//! into `WHERE`/`HAVING` clauses ([`predicate`]); flow control and conflict
//! resolution are lowered first via `xvc_xslt::rewrite`
//! ([`Composer::rewrites`]); recursive stylesheets are partially pushed
//! down per §5.3 ([`recursion`]). The §4.2.1 optimization hooks include a
//! predicate-dataflow pass ([`prune`]) that removes provably dead TVQ
//! subtrees and drops redundant conjuncts before the stylesheet view is
//! built (opt-in via [`ComposeOptions`]).

#![warn(missing_docs)]
// Curated clippy::pedantic subset shared with `xvc-rel` / `xvc-view` /
// `xvc-analyze` (kept clean under `-D warnings` in ci.sh).
#![warn(
    clippy::doc_markdown,
    clippy::explicit_iter_loop,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::match_same_arms,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod combine;
pub mod ctg;
pub mod deps;
pub mod divergence;
pub mod error;
pub mod matchq;
pub mod paper_fixtures;
pub mod predicate;
pub mod prune;
pub mod recursion;
pub mod selectq;
pub mod stats;
pub mod stylesheet_view;
pub mod tree_pattern;
pub mod tvq;
pub mod unbind;

mod compose;

pub use combine::combine;
pub use compose::{ComposeOptions, Composer, Composition};
pub use ctg::{build_ctg, Ctg, CtgEdge, CtgNode};
pub use deps::{DepEdge, DepRole, DependencyMap, UpdateSafety};
pub use divergence::{check_composition, Divergence, DivergenceKind};
pub use error::{Error, Result};
pub use matchq::matchq;
pub use prune::{analyze_tvq, prune_tvq, NodeVerdict, PruneStats, TvqAnalysis};
pub use recursion::{compose_recursive, RecursiveComposition};
pub use selectq::{selectq, selectq_all};
pub use stats::ComposeStats;
pub use tree_pattern::{TpId, TreePattern};
pub use tvq::{build_tvq, Tvq, TvqNode};
