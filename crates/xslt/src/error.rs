//! Error type for stylesheet parsing and execution.

use std::fmt;

use xvc_xml::Span;

/// Result alias used throughout `xvc-xslt`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or executing stylesheets.
///
/// Parse-time variants carry an optional byte-offset [`Span`] into the
/// stylesheet source (see [`Error::span`]) so callers can point at the
/// offending location.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The stylesheet XML was malformed.
    Xml(
        /// Underlying XML error.
        xvc_xml::Error,
    ),
    /// An XPath expression inside the stylesheet failed to parse or
    /// evaluate.
    XPath(
        /// Underlying XPath error.
        xvc_xpath::Error,
    ),
    /// The stylesheet root element is not `xsl:stylesheet`/`xsl:transform`.
    NotAStylesheet {
        /// The root element actually found.
        found: String,
        /// Span of the root element's start tag.
        span: Option<Span>,
    },
    /// A template rule is missing its `match` attribute.
    MissingMatch {
        /// Span of the `xsl:template` start tag.
        span: Option<Span>,
    },
    /// A required attribute is missing from an XSLT element.
    MissingAttribute {
        /// The XSLT element.
        element: &'static str,
        /// The missing attribute.
        attribute: &'static str,
        /// Span of the element's start tag.
        span: Option<Span>,
    },
    /// An unknown `xsl:` element was encountered.
    UnknownXslElement {
        /// The element name.
        name: String,
        /// Span of the element's start tag.
        span: Option<Span>,
    },
    /// A `priority` attribute did not parse as a number.
    BadPriority {
        /// The attribute text.
        text: String,
        /// Span of the `priority` attribute value.
        span: Option<Span>,
    },
    /// `<xsl:value-of select="@a"/>` appeared where no output element is
    /// open to attach the attribute to.
    ValueOfAttributeAtRoot,
    /// Template recursion exceeded the configured depth limit.
    RecursionLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// Attribute value templates (`{...}`) are not supported.
    AttributeValueTemplate {
        /// The attribute value containing `{`.
        value: String,
        /// Span of the attribute value.
        span: Option<Span>,
    },
    /// A §5.2 rewrite cannot handle this stylesheet shape.
    RewriteUnsupported {
        /// Human-readable explanation.
        reason: String,
    },
}

impl Error {
    /// Byte-offset span into the stylesheet source, for parse-time errors
    /// produced from a source text.
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::NotAStylesheet { span, .. }
            | Error::MissingMatch { span }
            | Error::MissingAttribute { span, .. }
            | Error::UnknownXslElement { span, .. }
            | Error::BadPriority { span, .. }
            | Error::AttributeValueTemplate { span, .. } => *span,
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "stylesheet XML error: {e}"),
            Error::XPath(e) => write!(f, "XPath error: {e}"),
            Error::NotAStylesheet { found, .. } => {
                write!(f, "expected xsl:stylesheet root, found <{found}>")
            }
            Error::MissingMatch { .. } => {
                write!(f, "xsl:template is missing its match attribute")
            }
            Error::MissingAttribute {
                element, attribute, ..
            } => {
                write!(f, "<{element}> is missing required attribute {attribute:?}")
            }
            Error::UnknownXslElement { name, .. } => {
                write!(f, "unsupported XSLT element <{name}>")
            }
            Error::BadPriority { text, .. } => write!(f, "bad priority {text:?}"),
            Error::ValueOfAttributeAtRoot => write!(
                f,
                "xsl:value-of select=\"@attr\" needs an enclosing output element"
            ),
            Error::RecursionLimit { limit } => {
                write!(f, "template recursion exceeded depth limit {limit}")
            }
            Error::AttributeValueTemplate { value, .. } => {
                write!(f, "attribute value templates are unsupported: {value:?}")
            }
            Error::RewriteUnsupported { reason } => {
                write!(f, "rewrite unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Xml(e) => Some(e),
            Error::XPath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xvc_xml::Error> for Error {
    fn from(e: xvc_xml::Error) -> Self {
        Error::Xml(e)
    }
}

impl From<xvc_xpath::Error> for Error {
    fn from(e: xvc_xpath::Error) -> Self {
        Error::XPath(e)
    }
}
