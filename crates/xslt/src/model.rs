//! Stylesheet model (Definition 2 and 3).

use xvc_xml::SpanInfo;
use xvc_xpath::{default_priority, Expr, PathExpr};

/// The default mode ("if there is no mode attribute, the XSLT processor
/// will set it to be a default value", §2.2).
pub const DEFAULT_MODE: &str = "#default";

/// An XSLT stylesheet `x`: a set of template rules (Definition 2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stylesheet {
    /// Template rules in document order.
    pub rules: Vec<TemplateRule>,
}

impl Stylesheet {
    /// Number of rules (the paper's |x|).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the stylesheet has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The maximum number of apply-templates nodes in any rule (the
    /// paper's `max_a`, used in the §4.5 complexity bound).
    pub fn max_apply_per_rule(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.apply_templates().len())
            .max()
            .unwrap_or(0)
    }

    /// All mode names used by rules or apply-templates nodes.
    pub fn modes(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.mode) {
                out.push(r.mode.clone());
            }
            for a in r.apply_templates() {
                if !out.contains(&a.mode) {
                    out.push(a.mode.clone());
                }
            }
        }
        out
    }

    /// Allocates a mode name not used anywhere in the stylesheet
    /// (for the §5.2 rewrites, which introduce "previously unused" modes).
    pub fn fresh_mode(&self, hint: &str) -> String {
        let used = self.modes();
        let mut i = 1;
        loop {
            let cand = format!("{hint}{i}");
            if !used.contains(&cand) {
                return cand;
            }
            i += 1;
        }
    }
}

/// A template rule `ri`: the 4-tuple of Definition 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateRule {
    /// `match(ri)` — the match pattern.
    pub match_pattern: PathExpr,
    /// `mode(ri)` — the mode ([`DEFAULT_MODE`] when absent).
    pub mode: String,
    /// Explicit `priority` attribute; when `None` the XSLT default
    /// priority of the pattern applies (see [`TemplateRule::priority`]).
    pub explicit_priority: Option<f64>,
    /// `xsl:param` declarations at the top of the rule (§5.3 recursion).
    pub params: Vec<ParamDecl>,
    /// `output(ri)` — the output tree fragment.
    pub output: Vec<OutputNode>,
    /// Source span of the `match` attribute value (parse-time only; does
    /// not participate in equality).
    pub match_span: SpanInfo,
}

impl TemplateRule {
    /// A rule with default mode and priority.
    pub fn new(match_pattern: PathExpr, output: Vec<OutputNode>) -> Self {
        TemplateRule {
            match_pattern,
            mode: DEFAULT_MODE.to_owned(),
            explicit_priority: None,
            params: Vec::new(),
            output,
            match_span: SpanInfo::default(),
        }
    }

    /// `priority(ri)` — explicit priority or the XSLT default priority of
    /// the match pattern.
    pub fn priority(&self) -> f64 {
        self.explicit_priority
            .unwrap_or_else(|| default_priority(&self.match_pattern))
    }

    /// `apply(ri)` — all `<xsl:apply-templates>` nodes in the output
    /// fragment, in document order, recursing into flow-control bodies.
    pub fn apply_templates(&self) -> Vec<&ApplyTemplates> {
        let mut out = Vec::new();
        collect_applies(&self.output, &mut out);
        out
    }

    /// The element name of the last location step of the match pattern
    /// (`nodename` in the Figure 21–24 rewrites); `*` for wildcards and
    /// the root pattern.
    pub fn node_name(&self) -> String {
        use xvc_xpath::NodeTest;
        match self.match_pattern.steps.last() {
            Some(step) => match &step.test {
                NodeTest::Name(n) => n.clone(),
                NodeTest::Wildcard => "*".to_owned(),
            },
            None => "*".to_owned(),
        }
    }
}

fn collect_applies<'a>(nodes: &'a [OutputNode], out: &mut Vec<&'a ApplyTemplates>) {
    for n in nodes {
        match n {
            OutputNode::ApplyTemplates(a) => out.push(a),
            OutputNode::Element { children, .. } => collect_applies(children, out),
            OutputNode::If { children, .. } => collect_applies(children, out),
            OutputNode::ForEach { children, .. } => collect_applies(children, out),
            OutputNode::Choose {
                whens, otherwise, ..
            } => {
                for (_, body) in whens {
                    collect_applies(body, out);
                }
                collect_applies(otherwise, out);
            }
            OutputNode::Text(_) | OutputNode::ValueOf { .. } | OutputNode::CopyOf { .. } => {}
        }
    }
}

/// An `<xsl:apply-templates>` node `aj` (Definition 3) plus the
/// `<xsl:with-param>` children used by §5.3.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyTemplates {
    /// `select(aj)` — the select expression.
    pub select: PathExpr,
    /// `mode(aj)` — the desired mode of rules this may activate.
    pub mode: String,
    /// `<xsl:with-param>` children.
    pub with_params: Vec<WithParam>,
    /// Source span of the `select` attribute value (or the element start
    /// tag when `select` was defaulted). Not part of equality.
    pub select_span: SpanInfo,
}

impl ApplyTemplates {
    /// An apply-templates with default mode and no params.
    pub fn new(select: PathExpr) -> Self {
        ApplyTemplates {
            select,
            mode: DEFAULT_MODE.to_owned(),
            with_params: Vec::new(),
            select_span: SpanInfo::default(),
        }
    }
}

/// An `<xsl:param>` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name (without `$`).
    pub name: String,
    /// Default value expression (from the `select` attribute).
    pub default: Option<Expr>,
}

/// An `<xsl:with-param>` argument.
#[derive(Debug, Clone, PartialEq)]
pub struct WithParam {
    /// Parameter name (without `$`).
    pub name: String,
    /// Value expression.
    pub select: Expr,
}

/// One node of a rule's output tree fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputNode {
    /// A literal result element, e.g. `<result_metro>`.
    Element {
        /// Tag name.
        name: String,
        /// Static attributes written on the literal element.
        attrs: Vec<(String, String)>,
        /// Element content.
        children: Vec<OutputNode>,
    },
    /// Literal text (`<xsl:text>` or bare character data).
    Text(
        /// The text.
        String,
    ),
    /// `<xsl:apply-templates/>`.
    ApplyTemplates(
        /// The apply-templates node.
        ApplyTemplates,
    ),
    /// `<xsl:value-of select="..."/>` — see the crate docs for the paper's
    /// output model.
    ValueOf {
        /// The select expression.
        select: Expr,
        /// Source span of the `select` attribute value. Not part of equality.
        span: SpanInfo,
    },
    /// `<xsl:copy-of select="..."/>` — deep copy of the selected nodes.
    CopyOf {
        /// The select expression.
        select: Expr,
        /// Source span of the `select` attribute value. Not part of equality.
        span: SpanInfo,
    },
    /// `<xsl:if test="...">` (§5.2.1).
    If {
        /// The test expression.
        test: Expr,
        /// Body instantiated when the test holds.
        children: Vec<OutputNode>,
        /// Source span of the start tag. Not part of equality.
        span: SpanInfo,
    },
    /// `<xsl:choose>` (§5.2.1).
    Choose {
        /// `(test, body)` per `<xsl:when>`.
        whens: Vec<(Expr, Vec<OutputNode>)>,
        /// `<xsl:otherwise>` body (possibly empty).
        otherwise: Vec<OutputNode>,
        /// Source span of the start tag. Not part of equality.
        span: SpanInfo,
    },
    /// `<xsl:for-each select="...">` (§5.2.1).
    ForEach {
        /// The select expression.
        select: PathExpr,
        /// Body instantiated once per selected node.
        children: Vec<OutputNode>,
        /// Source span of the start tag. Not part of equality.
        span: SpanInfo,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_xpath::parse_path;

    #[test]
    fn priority_defaults_from_pattern() {
        let r = TemplateRule::new(parse_path("metro").unwrap(), vec![]);
        assert_eq!(r.priority(), 0.0);
        let r = TemplateRule::new(parse_path("metro/hotel").unwrap(), vec![]);
        assert_eq!(r.priority(), 0.5);
        let mut r = TemplateRule::new(parse_path("metro").unwrap(), vec![]);
        r.explicit_priority = Some(7.0);
        assert_eq!(r.priority(), 7.0);
    }

    #[test]
    fn collects_applies_recursively() {
        let a1 = ApplyTemplates::new(parse_path("a").unwrap());
        let a2 = ApplyTemplates::new(parse_path("b").unwrap());
        let rule = TemplateRule::new(
            parse_path("x").unwrap(),
            vec![OutputNode::Element {
                name: "out".into(),
                attrs: vec![],
                children: vec![
                    OutputNode::ApplyTemplates(a1.clone()),
                    OutputNode::If {
                        test: xvc_xpath::parse_expr("@z").unwrap(),
                        children: vec![OutputNode::ApplyTemplates(a2.clone())],
                        span: SpanInfo::default(),
                    },
                ],
            }],
        );
        let applies = rule.apply_templates();
        assert_eq!(applies.len(), 2);
        assert_eq!(applies[0], &a1);
        assert_eq!(applies[1], &a2);
    }

    #[test]
    fn node_name_of_patterns() {
        let r = TemplateRule::new(parse_path("metro/hotel/confroom").unwrap(), vec![]);
        assert_eq!(r.node_name(), "confroom");
        let r = TemplateRule::new(parse_path("/").unwrap(), vec![]);
        assert_eq!(r.node_name(), "*");
        let r = TemplateRule::new(parse_path("*").unwrap(), vec![]);
        assert_eq!(r.node_name(), "*");
    }

    #[test]
    fn fresh_mode_avoids_used_names() {
        let mut s = Stylesheet::default();
        let mut r = TemplateRule::new(parse_path("a").unwrap(), vec![]);
        r.mode = "m1".into();
        s.rules.push(r);
        assert_eq!(s.fresh_mode("m"), "m2");
        assert_eq!(s.fresh_mode("q"), "q1");
    }

    #[test]
    fn max_apply_per_rule() {
        let mut s = Stylesheet::default();
        s.rules.push(TemplateRule::new(
            parse_path("a").unwrap(),
            vec![
                OutputNode::ApplyTemplates(ApplyTemplates::new(parse_path("b").unwrap())),
                OutputNode::ApplyTemplates(ApplyTemplates::new(parse_path("c").unwrap())),
            ],
        ));
        s.rules
            .push(TemplateRule::new(parse_path("b").unwrap(), vec![]));
        assert_eq!(s.max_apply_per_rule(), 2);
    }
}
