//! Rendering stylesheets back to XSLT text (for artifacts and debugging).
//!
//! The output round-trips through [`crate::parse_stylesheet`]; golden tests
//! for the §5.2/§5.3 rewrites compare this rendering.

use xvc_xml::escape::escape_attr;

use crate::model::{OutputNode, Stylesheet, TemplateRule, DEFAULT_MODE};

impl Stylesheet {
    /// Serializes the stylesheet as XSLT text (two-space indentation).
    pub fn to_xslt(&self) -> String {
        let mut out = String::from("<xsl:stylesheet>\n");
        for rule in &self.rules {
            write_rule(rule, &mut out);
        }
        out.push_str("</xsl:stylesheet>\n");
        out
    }
}

fn write_rule(rule: &TemplateRule, out: &mut String) {
    out.push_str(&format!(
        "  <xsl:template match=\"{}\"",
        escape_attr(&rule.match_pattern.to_string())
    ));
    if rule.mode != DEFAULT_MODE {
        out.push_str(&format!(" mode=\"{}\"", escape_attr(&rule.mode)));
    }
    if let Some(p) = rule.explicit_priority {
        out.push_str(&format!(" priority=\"{p}\""));
    }
    out.push_str(">\n");
    for p in &rule.params {
        match &p.default {
            Some(d) => out.push_str(&format!(
                "    <xsl:param name=\"{}\" select=\"{}\"/>\n",
                p.name,
                escape_attr(&d.to_string())
            )),
            None => out.push_str(&format!("    <xsl:param name=\"{}\"/>\n", p.name)),
        }
    }
    for node in &rule.output {
        write_node(node, 2, out);
    }
    out.push_str("  </xsl:template>\n");
}

fn write_node(node: &OutputNode, depth: usize, out: &mut String) {
    let ind = "  ".repeat(depth);
    match node {
        OutputNode::Element {
            name,
            attrs,
            children,
        } => {
            out.push_str(&format!("{ind}<{name}"));
            for (k, v) in attrs {
                out.push_str(&format!(" {k}=\"{}\"", escape_attr(v)));
            }
            if children.is_empty() {
                out.push_str("/>\n");
            } else {
                out.push_str(">\n");
                for c in children {
                    write_node(c, depth + 1, out);
                }
                out.push_str(&format!("{ind}</{name}>\n"));
            }
        }
        OutputNode::Text(t) => {
            out.push_str(&format!(
                "{ind}<xsl:text>{}</xsl:text>\n",
                xvc_xml::escape::escape_text(t)
            ));
        }
        OutputNode::ApplyTemplates(a) => {
            out.push_str(&format!(
                "{ind}<xsl:apply-templates select=\"{}\"",
                escape_attr(&a.select.to_string())
            ));
            if a.mode != DEFAULT_MODE {
                out.push_str(&format!(" mode=\"{}\"", escape_attr(&a.mode)));
            }
            if a.with_params.is_empty() {
                out.push_str("/>\n");
            } else {
                out.push_str(">\n");
                for wp in &a.with_params {
                    out.push_str(&format!(
                        "{ind}  <xsl:with-param name=\"{}\" select=\"{}\"/>\n",
                        wp.name,
                        escape_attr(&wp.select.to_string())
                    ));
                }
                out.push_str(&format!("{ind}</xsl:apply-templates>\n"));
            }
        }
        OutputNode::ValueOf { select, .. } => {
            out.push_str(&format!(
                "{ind}<xsl:value-of select=\"{}\"/>\n",
                escape_attr(&select.to_string())
            ));
        }
        OutputNode::CopyOf { select, .. } => {
            out.push_str(&format!(
                "{ind}<xsl:copy-of select=\"{}\"/>\n",
                escape_attr(&select.to_string())
            ));
        }
        OutputNode::If { test, children, .. } => {
            out.push_str(&format!(
                "{ind}<xsl:if test=\"{}\">\n",
                escape_attr(&test.to_string())
            ));
            for c in children {
                write_node(c, depth + 1, out);
            }
            out.push_str(&format!("{ind}</xsl:if>\n"));
        }
        OutputNode::Choose {
            whens, otherwise, ..
        } => {
            out.push_str(&format!("{ind}<xsl:choose>\n"));
            for (test, body) in whens {
                out.push_str(&format!(
                    "{ind}  <xsl:when test=\"{}\">\n",
                    escape_attr(&test.to_string())
                ));
                for c in body {
                    write_node(c, depth + 2, out);
                }
                out.push_str(&format!("{ind}  </xsl:when>\n"));
            }
            if !otherwise.is_empty() {
                out.push_str(&format!("{ind}  <xsl:otherwise>\n"));
                for c in otherwise {
                    write_node(c, depth + 2, out);
                }
                out.push_str(&format!("{ind}  </xsl:otherwise>\n"));
            }
            out.push_str(&format!("{ind}</xsl:choose>\n"));
        }
        OutputNode::ForEach {
            select, children, ..
        } => {
            out.push_str(&format!(
                "{ind}<xsl:for-each select=\"{}\">\n",
                escape_attr(&select.to_string())
            ));
            for c in children {
                write_node(c, depth + 1, out);
            }
            out.push_str(&format!("{ind}</xsl:for-each>\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::{parse_stylesheet, FIGURE4_XSLT};

    #[test]
    fn figure4_roundtrips() {
        let s = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let text = s.to_xslt();
        let s2 = parse_stylesheet(&text).unwrap();
        assert_eq!(s, s2, "{text}");
    }

    #[test]
    fn params_flow_control_roundtrip() {
        let src = r#"<xsl:stylesheet>
          <xsl:template match="/metro" mode="m7" priority="2.5">
            <xsl:param name="idx" select="10"/>
            <r a="x&quot;y">
              <xsl:choose>
                <xsl:when test="$idx &lt;= 1"><xsl:value-of select="."/></xsl:when>
                <xsl:otherwise>
                  <xsl:apply-templates select="a/b[@c&gt;2]">
                    <xsl:with-param name="idx" select="$idx - 1"/>
                  </xsl:apply-templates>
                </xsl:otherwise>
              </xsl:choose>
              <xsl:if test="@z"><xsl:copy-of select="."/></xsl:if>
              <xsl:for-each select="q"><w/></xsl:for-each>
              <xsl:text>hello</xsl:text>
            </r>
          </xsl:template>
        </xsl:stylesheet>"#;
        let s = parse_stylesheet(src).unwrap();
        let s2 = parse_stylesheet(&s.to_xslt()).unwrap();
        assert_eq!(s, s2, "{}", s.to_xslt());
    }
}
