//! # `xvc-xslt` — XSLT for the SIGMOD'03 composition paper
//!
//! A from-scratch XSLT substrate covering exactly what the paper needs:
//!
//! * [`model`] — Definition 2/3: stylesheets as sets of template rules
//!   `(match, mode, priority, output)`, output-tree fragments with
//!   `<xsl:apply-templates>` nodes, plus the §5 constructs (`xsl:if`,
//!   `xsl:choose`, `xsl:for-each`, `xsl:param` / `xsl:with-param`);
//! * [`parse`] — parses stylesheets from XSLT/XML text;
//! * [`engine`] — the reference interpreter: a faithful implementation of
//!   the `PROCESS` / `MATCH` / `SELECT` processing model of Figure 5,
//!   extended with parameters and flow control for the §5.3 recursion
//!   examples. This is the baseline the composed stylesheet view is
//!   verified and benchmarked against;
//! * [`basic`] — the `XSLT_basic` restrictions of §2.2.2, checked with
//!   per-rule diagnostics;
//! * [`rewrite`] — the §5.2 `XSLT_transformable` source-to-source
//!   transforms (Figures 21–24) that lower flow control, general
//!   `xsl:value-of`, and static conflict resolution into `XSLT_basic`
//!   (+ predicates) so the composition algorithm can take over.
//!
//! ## Output model
//!
//! Per §2.2.2 restriction (10) and §4.3.1, this engine follows the paper's
//! formatting model, not W3C XSLT: database values appear as XML
//! attributes; `<xsl:value-of select="."/>` emits a *shallow copy* of the
//! context element (tag + attributes); `<xsl:value-of select="@a"/>`
//! attaches attribute `a` to the enclosing output element; built-in
//! template rules are overridden (unmatched nodes produce nothing).

#![warn(missing_docs)]

pub mod basic;
pub mod engine;
pub mod error;
pub mod model;
pub mod parse;
pub mod rewrite;
pub mod serialize;

pub use basic::{check_basic, BasicViolation};
pub use engine::{process, process_with_limit, EngineStats};
pub use error::{Error, Result};
pub use model::{
    ApplyTemplates, OutputNode, ParamDecl, Stylesheet, TemplateRule, WithParam, DEFAULT_MODE,
};
pub use parse::parse_stylesheet;
