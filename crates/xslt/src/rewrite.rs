//! `XSLT_transformable` (§5.2): source-to-source rewrites into
//! `XSLT_basic` (+ predicates).
//!
//! * [`rewrite_flow_control`] — Figures 21/22 and the analogous
//!   `xsl:for-each` transform: each flow-control element is replaced by an
//!   `<xsl:apply-templates>` with a predicate-guarded select and a fresh
//!   mode; its body becomes a new template rule in that mode. General
//!   `<xsl:value-of>` selects are lowered per Figure 23.
//! * [`rewrite_conflicts`] — Figure 24: a priority-ordered chain of
//!   potentially conflicting rules is rewritten so each lower-priority rule
//!   first tests (via a reversed-pattern expression) whether some
//!   higher-priority rule would match, dispatching to it by mode.
//! * [`lower_to_basic`] — applies both until a fixpoint.
//!
//! Rules with `xsl:param`s are handled by threading the parameters through
//! the generated apply-templates (`with-param name="p" select="$p"`), which
//! preserves semantics under this crate's engine.

use xvc_xml::SpanInfo;
use xvc_xpath::{Axis, Expr, NodeTest, PathExpr, Step};

use crate::error::{Error, Result};
use crate::model::{ApplyTemplates, OutputNode, ParamDecl, Stylesheet, TemplateRule, WithParam};

/// Applies the flow-control and value-of rewrites repeatedly, then the
/// conflict rewrite, until the stylesheet is stable.
pub fn lower_to_basic(s: &Stylesheet) -> Result<Stylesheet> {
    let mut cur = rewrite_flow_control(s)?;
    cur = rewrite_conflicts(&cur)?;
    // Conflict rewriting introduces xsl:choose bodies; lower them again.
    loop {
        let next = rewrite_flow_control(&cur)?;
        if next == cur {
            return Ok(cur);
        }
        cur = next;
    }
}

/// Lowers `xsl:if`, `xsl:choose`, `xsl:for-each` and general
/// `xsl:value-of`/`xsl:copy-of` selects into apply-templates + new rules
/// (Figures 21–23). Iterates until no flow control remains (bodies may nest).
pub fn rewrite_flow_control(s: &Stylesheet) -> Result<Stylesheet> {
    let mut out = s.clone();
    loop {
        let mut new_rules: Vec<TemplateRule> = Vec::new();
        let mut changed = false;
        let mut result_rules = Vec::with_capacity(out.rules.len());
        for rule in &out.rules {
            let mut rw = Rewriter {
                stylesheet: &out,
                rule,
                new_rules: &mut new_rules,
                changed: &mut changed,
                counter: 0,
            };
            let output = rw.rewrite_nodes(&rule.output)?;
            let mut new_rule = rule.clone();
            new_rule.output = output;
            result_rules.push(new_rule);
        }
        result_rules.extend(new_rules);
        out = Stylesheet {
            rules: result_rules,
        };
        if !changed {
            return Ok(out);
        }
    }
}

struct Rewriter<'a> {
    stylesheet: &'a Stylesheet,
    rule: &'a TemplateRule,
    new_rules: &'a mut Vec<TemplateRule>,
    changed: &'a mut bool,
    counter: usize,
}

impl Rewriter<'_> {
    /// Allocates a mode unused in the original stylesheet *and* by rules
    /// generated so far in this pass.
    fn fresh_mode(&mut self) -> String {
        loop {
            self.counter += 1;
            let cand = format!(
                "__fc_{}_{}",
                self.stylesheet
                    .rules
                    .iter()
                    .position(|r| std::ptr::eq(r, self.rule))
                    .unwrap_or(0),
                self.counter
            );
            let used_in_new = self.new_rules.iter().any(|r| r.mode == cand);
            let used_in_old = self.stylesheet.modes().contains(&cand);
            if !used_in_new && !used_in_old {
                return cand;
            }
        }
    }

    /// Match pattern for a rule that must re-match the current context node
    /// (Figure 21(b)'s `nodename`).
    fn context_pattern(&self) -> PathExpr {
        if self.rule.match_pattern.steps.is_empty() {
            // Rule matches "/": the context is the root itself.
            PathExpr::root()
        } else {
            PathExpr {
                absolute: false,
                steps: vec![Step {
                    axis: Axis::Child,
                    test: match self.rule.node_name().as_str() {
                        "*" => NodeTest::Wildcard,
                        n => NodeTest::Name(n.to_owned()),
                    },
                    predicates: Vec::new(),
                }],
            }
        }
    }

    /// `<xsl:with-param name="p" select="$p"/>` for every declared param,
    /// so rule parameters survive the extra indirection.
    fn passthrough_params(&self) -> Vec<WithParam> {
        self.rule
            .params
            .iter()
            .map(|p| WithParam {
                name: p.name.clone(),
                select: Expr::Var(p.name.clone()),
            })
            .collect()
    }

    fn inherited_params(&self) -> Vec<ParamDecl> {
        self.rule.params.clone()
    }

    fn emit_rule(&mut self, match_pattern: PathExpr, mode: String, body: Vec<OutputNode>) {
        self.new_rules.push(TemplateRule {
            match_pattern,
            mode,
            explicit_priority: None,
            params: self.inherited_params(),
            output: body,
            match_span: SpanInfo::default(),
        });
    }

    fn rewrite_nodes(&mut self, nodes: &[OutputNode]) -> Result<Vec<OutputNode>> {
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            out.extend(self.rewrite_node(n)?);
        }
        Ok(out)
    }

    fn rewrite_node(&mut self, node: &OutputNode) -> Result<Vec<OutputNode>> {
        Ok(match node {
            OutputNode::Element {
                name,
                attrs,
                children,
            } => vec![OutputNode::Element {
                name: name.clone(),
                attrs: attrs.clone(),
                children: self.rewrite_nodes(children)?,
            }],
            OutputNode::Text(t) => vec![OutputNode::Text(t.clone())],
            OutputNode::ApplyTemplates(a) => {
                vec![OutputNode::ApplyTemplates(a.clone())]
            }
            // Figure 21: <xsl:if test="e"> body </xsl:if>
            //   → <xsl:apply-templates select=".[e]" mode="mnew"/>
            //     + <xsl:template match="nodename" mode="mnew"> body
            OutputNode::If { test, children, .. } => {
                *self.changed = true;
                let mode = self.fresh_mode();
                self.emit_rule(self.context_pattern(), mode.clone(), children.clone());
                vec![OutputNode::ApplyTemplates(ApplyTemplates {
                    select: self_with_predicate(Some(test.clone())),
                    mode,
                    with_params: self.passthrough_params(),
                    select_span: SpanInfo::default(),
                })]
            }
            // Figure 22: <xsl:choose> — one guarded apply-templates per
            // branch; guard k tests not(e1) .. not(e_{k-1}) and ek.
            OutputNode::Choose {
                whens, otherwise, ..
            } => {
                *self.changed = true;
                let mut result = Vec::new();
                let mut negations: Vec<Expr> = Vec::new();
                for (test, body) in whens {
                    let mode = self.fresh_mode();
                    self.emit_rule(self.context_pattern(), mode.clone(), body.clone());
                    let guard = conjoin(&negations, Some(test.clone()));
                    result.push(OutputNode::ApplyTemplates(ApplyTemplates {
                        select: self_with_predicate(guard),
                        mode,
                        with_params: self.passthrough_params(),
                        select_span: SpanInfo::default(),
                    }));
                    negations.push(Expr::Not(Box::new(test.clone())));
                }
                if !otherwise.is_empty() {
                    let mode = self.fresh_mode();
                    self.emit_rule(self.context_pattern(), mode.clone(), otherwise.clone());
                    let guard = conjoin(&negations, None);
                    result.push(OutputNode::ApplyTemplates(ApplyTemplates {
                        select: self_with_predicate(guard),
                        mode,
                        with_params: self.passthrough_params(),
                        select_span: SpanInfo::default(),
                    }));
                }
                result
            }
            // The for-each transform ("very similar to that for xsl:if"):
            //   <xsl:for-each select="p"> body
            //   → <xsl:apply-templates select="p" mode="mnew"/>
            //     + <xsl:template match="name-of-last-step(p)" mode="mnew">
            OutputNode::ForEach {
                select, children, ..
            } => {
                *self.changed = true;
                let mode = self.fresh_mode();
                self.emit_rule(last_step_pattern(select), mode.clone(), children.clone());
                vec![OutputNode::ApplyTemplates(ApplyTemplates {
                    select: select.clone(),
                    mode,
                    with_params: self.passthrough_params(),
                    select_span: SpanInfo::default(),
                })]
            }
            // Figure 23: general value-of.
            OutputNode::ValueOf { select, .. } | OutputNode::CopyOf { select, .. } => {
                let deep = matches!(node, OutputNode::CopyOf { .. });
                if crate::basic::is_basic_value_select(select) {
                    return Ok(vec![node.clone()]);
                }
                let Expr::Path(path) = select else {
                    // Scalar expressions ($idx, arithmetic) stay; the
                    // composer treats them via §5.3, the checker flags them.
                    return Ok(vec![node.clone()]);
                };
                *self.changed = true;
                let mut path = path.clone();
                // A trailing attribute step moves into the new rule's body.
                let tail_value: Expr = match path.steps.last() {
                    Some(Step {
                        axis: Axis::Attribute,
                        test: NodeTest::Name(a),
                        ..
                    }) => {
                        let attr = a.clone();
                        path.steps.pop();
                        attr_expr(&attr)
                    }
                    _ => self_expr(),
                };
                if path.steps.is_empty() {
                    // Was just `@attr` with predicates stripped impossible
                    // here; emit directly.
                    return Ok(vec![if deep {
                        OutputNode::CopyOf {
                            select: tail_value,
                            span: SpanInfo::default(),
                        }
                    } else {
                        OutputNode::ValueOf {
                            select: tail_value,
                            span: SpanInfo::default(),
                        }
                    }]);
                }
                let mode = self.fresh_mode();
                let body = vec![if deep {
                    OutputNode::CopyOf {
                        select: tail_value,
                        span: SpanInfo::default(),
                    }
                } else {
                    OutputNode::ValueOf {
                        select: tail_value,
                        span: SpanInfo::default(),
                    }
                }];
                self.emit_rule(last_step_pattern(&path), mode.clone(), body);
                vec![OutputNode::ApplyTemplates(ApplyTemplates {
                    select: path,
                    mode,
                    with_params: self.passthrough_params(),
                    select_span: SpanInfo::default(),
                })]
            }
        })
    }
}

/// `.` or `.[guard]`.
fn self_with_predicate(guard: Option<Expr>) -> PathExpr {
    PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::SelfAxis,
            test: NodeTest::Wildcard,
            predicates: guard.into_iter().collect(),
        }],
    }
}

fn self_expr() -> Expr {
    Expr::Path(PathExpr {
        absolute: false,
        steps: vec![Step::self_step()],
    })
}

fn attr_expr(name: &str) -> Expr {
    Expr::Path(PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Attribute,
            test: NodeTest::Name(name.to_owned()),
            predicates: Vec::new(),
        }],
    })
}

/// Conjunction `n1 and n2 and ... and e` (Figure 22's
/// `.[not(e1) and e2]` guards), keeping each when's predicates.
fn conjoin(negations: &[Expr], last: Option<Expr>) -> Option<Expr> {
    let mut parts: Vec<Expr> = negations.to_vec();
    if let Some(e) = last {
        parts.push(e);
    }
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e))))
}

/// Match pattern for the nodes a select path can reach: the name test of
/// its last step (with that step's predicates); a wildcard when the path
/// ends in `.`/`..`.
fn last_step_pattern(select: &PathExpr) -> PathExpr {
    let (test, predicates) = match select.steps.last() {
        Some(s)
            if matches!(
                s.axis,
                Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
            ) =>
        {
            (s.test.clone(), s.predicates.clone())
        }
        _ => (NodeTest::Wildcard, Vec::new()),
    };
    PathExpr {
        absolute: false,
        steps: vec![Step {
            axis: Axis::Child,
            test,
            predicates,
        }],
    }
}

// ---------------------------------------------------------------------------
// Conflict resolution (Figure 24)
// ---------------------------------------------------------------------------

/// Rewrites potentially conflicting template rules (same mode, same final
/// node name) into a priority-dispatch chain per §5.2.3 / Figure 24:
/// all but the lowest-precedence rule move to fresh modes, and the
/// lowest-precedence rule's body becomes an `xsl:choose` testing (via the
/// reversed-pattern expression) whether each higher-priority rule would
/// match, dispatching with `<xsl:apply-templates select="." mode="mi"/>`.
///
/// Faithful to the paper, this assumes the lowest-precedence pattern
/// subsumes the others (the usual specific-overrides-generic idiom);
/// absolute patterns in a conflict group are not expressible as reversed
/// expressions and are rejected.
pub fn rewrite_conflicts(s: &Stylesheet) -> Result<Stylesheet> {
    // Group rule indices by (mode, node name).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut by_key: std::collections::HashMap<(String, String), Vec<usize>> =
            std::collections::HashMap::new();
        for (i, r) in s.rules.iter().enumerate() {
            if r.match_pattern.steps.is_empty() {
                continue; // the root rule conflicts with nothing
            }
            by_key
                .entry((r.mode.clone(), r.node_name()))
                .or_default()
                .push(i);
        }
        let mut keys: Vec<_> = by_key.keys().cloned().collect();
        keys.sort();
        for k in keys {
            let g = &by_key[&k];
            if g.len() > 1 {
                groups.push(g.clone());
            }
        }
    }
    if groups.is_empty() {
        return Ok(s.clone());
    }

    let mut out = s.clone();
    for group in groups {
        // Precedence: priority desc, then later document order first.
        let mut ordered = group.clone();
        ordered.sort_by(|&a, &b| {
            s.rules[b]
                .priority()
                .partial_cmp(&s.rules[a].priority())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
        let (&lowest, higher) = ordered.split_last().expect("group has >1 member");

        // Give each higher-precedence rule a fresh mode.
        let mut dispatch: Vec<(Expr, String)> = Vec::new();
        for &idx in higher {
            let mode = out.fresh_mode("__cr_");
            let test = reverse_pattern_expression(&s.rules[idx].match_pattern)?;
            dispatch.push((test, mode.clone()));
            out.rules[idx].mode = mode;
        }

        // The lowest-precedence rule dispatches or falls through.
        let fallback = out.rules[lowest].output.clone();
        let whens = dispatch
            .into_iter()
            .map(|(test, mode)| {
                (
                    test,
                    vec![OutputNode::ApplyTemplates(ApplyTemplates {
                        select: self_with_predicate(None),
                        mode,
                        with_params: Vec::new(),
                        select_span: SpanInfo::default(),
                    })],
                )
            })
            .collect();
        out.rules[lowest].output = vec![OutputNode::Choose {
            whens,
            otherwise: fallback,
            span: SpanInfo::default(),
        }];
    }
    Ok(out)
}

/// The paper's "reverse" of a pattern `name1[p1]/name2[p2]/.../namen[pn]`:
/// the expression `.[pn]/parent::name_{n-1}[p_{n-1}]/.../parent::name1[p1]`,
/// true at a node exactly when the (relative) pattern matches it.
pub fn reverse_pattern_expression(pattern: &PathExpr) -> Result<Expr> {
    if pattern.absolute {
        return Err(Error::RewriteUnsupported {
            reason: format!("absolute pattern `{pattern}` cannot be reversed into an expression"),
        });
    }
    for s in &pattern.steps {
        if !matches!(s.axis, Axis::Child) {
            return Err(Error::RewriteUnsupported {
                reason: format!(
                    "pattern `{pattern}` uses axis {} which cannot be reversed",
                    s.axis.name()
                ),
            });
        }
    }
    let mut steps = Vec::with_capacity(pattern.steps.len());
    let last = pattern.steps.last().expect("non-empty pattern");
    steps.push(Step {
        axis: Axis::SelfAxis,
        test: NodeTest::Wildcard,
        predicates: last.predicates.clone(),
    });
    for s in pattern.steps.iter().rev().skip(1) {
        steps.push(Step {
            axis: Axis::Parent,
            test: s.test.clone(),
            predicates: s.predicates.clone(),
        });
    }
    Ok(Expr::Path(PathExpr {
        absolute: false,
        steps,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::check_basic;
    use crate::engine::process;
    use crate::parse::parse_stylesheet;
    use xvc_xml::documents_equal_unordered;

    fn doc() -> xvc_xml::Document {
        xvc_xml::parse(
            r#"<metro metroname="chicago">
                 <hotel hotelid="10" starrating="5" pool="yes">
                   <confroom capacity="300"/>
                   <confroom capacity="100"/>
                 </hotel>
                 <hotel hotelid="11" starrating="3">
                   <confroom capacity="500"/>
                 </hotel>
               </metro>"#,
        )
        .unwrap()
    }

    /// The rewritten stylesheet must produce the same document as the
    /// original, and must contain no flow control.
    fn assert_equivalent(xslt: &str) {
        let original = parse_stylesheet(xslt).unwrap();
        let rewritten = lower_to_basic(&original).unwrap();
        for v in check_basic(&rewritten) {
            // Only predicate violations (restriction 4) and variable use
            // (restriction 8, params threading) may remain — those are
            // handled by XSLT_expression / §5.3.
            assert!(
                v.restriction == 4 || v.restriction == 8,
                "unexpected violation after rewrite: {v}"
            );
        }
        let d = doc();
        let a = process(&original, &d).unwrap();
        let b = process(&rewritten, &d).unwrap();
        assert!(
            documents_equal_unordered(&a, &b),
            "original:\n{}\nrewritten:\n{}",
            a.to_xml(),
            b.to_xml()
        );
    }

    #[test]
    fn if_rewrite_equivalent() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:if test="@starrating &gt; 4"><lux/></xsl:if>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn choose_rewrite_equivalent() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:choose>
                       <xsl:when test="@starrating = 5"><five/></xsl:when>
                       <xsl:when test="@starrating = 4"><four/></xsl:when>
                       <xsl:otherwise><rest/></xsl:otherwise>
                     </xsl:choose>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn for_each_rewrite_equivalent() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h><xsl:for-each select="confroom"><r><xsl:value-of select="@capacity"/></r></xsl:for-each></h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn nested_flow_control_rewrites() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <xsl:if test="@starrating &gt; 2">
                     <h>
                       <xsl:choose>
                         <xsl:when test="@pool"><pool/></xsl:when>
                         <xsl:otherwise><nopool/></xsl:otherwise>
                       </xsl:choose>
                     </h>
                   </xsl:if>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn general_value_of_rewrite_equivalent() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:value-of select="hotel/confroom"/></m>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn value_of_trailing_attribute_rewrite() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:value-of select="hotel/@hotelid"/></m>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let rewritten = rewrite_flow_control(&s).unwrap();
        // A new rule matching `hotel` with a `@hotelid` value-of appears.
        let new_rule = rewritten
            .rules
            .iter()
            .find(|r| r.mode.starts_with("__fc_"))
            .expect("new rule generated");
        assert_eq!(new_rule.node_name(), "hotel");
        assert!(matches!(
            &new_rule.output[0],
            OutputNode::ValueOf { select: Expr::Path(p), .. }
                if p.steps[0].axis == Axis::Attribute
        ));
    }

    #[test]
    fn if_inside_root_rule() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <out><xsl:if test="metro"><has_metro/></xsl:if></out>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn conflict_rewrite_matches_engine_resolution() {
        // Figure 24's shape: a specific high-priority rule over a generic
        // low-priority one, same node name.
        let xslt = r#"<xsl:stylesheet>
             <xsl:template match="/"><xsl:apply-templates select="metro/hotel/confroom"/></xsl:template>
             <xsl:template match="hotel[@starrating&gt;4]/confroom" priority="2">
               <big/>
             </xsl:template>
             <xsl:template match="confroom">
               <plain/>
             </xsl:template>
           </xsl:stylesheet>"#;
        let original = parse_stylesheet(xslt).unwrap();
        let rewritten = rewrite_conflicts(&original).unwrap();
        // The high-priority rule moved to a fresh mode.
        assert_ne!(rewritten.rules[1].mode, original.rules[1].mode);
        // Equivalence with the engine's built-in conflict resolution.
        let d = doc();
        let a = process(&original, &d).unwrap();
        let b = process(&lower_to_basic(&original).unwrap(), &d).unwrap();
        assert!(
            documents_equal_unordered(&a, &b),
            "a: {} b: {}",
            a.to_xml(),
            b.to_xml()
        );
        assert_eq!(a.to_xml().matches("<big/>").count(), 2);
        assert_eq!(a.to_xml().matches("<plain/>").count(), 1);
    }

    #[test]
    fn reverse_pattern_expression_shape() {
        let p = xvc_xpath::parse_pattern("metro[@m=1]/hotel/confroom[@c>2]").unwrap();
        let e = reverse_pattern_expression(&p).unwrap();
        assert_eq!(
            e.to_string(),
            ".[@c > 2]/parent::hotel/parent::metro[@m = 1]"
        );
        assert!(reverse_pattern_expression(&xvc_xpath::parse_pattern("/metro").unwrap()).is_err());
    }

    #[test]
    fn params_thread_through_rewrites() {
        let xslt = r#"<xsl:stylesheet>
             <xsl:template match="/">
               <xsl:apply-templates select="metro">
                 <xsl:with-param name="n" select="5"/>
               </xsl:apply-templates>
             </xsl:template>
             <xsl:template match="metro">
               <xsl:param name="n"/>
               <xsl:if test="$n &gt; 1"><yes/></xsl:if>
             </xsl:template>
           </xsl:stylesheet>"#;
        let original = parse_stylesheet(xslt).unwrap();
        let rewritten = rewrite_flow_control(&original).unwrap();
        let d = doc();
        let a = process(&original, &d).unwrap();
        let b = process(&rewritten, &d).unwrap();
        assert!(documents_equal_unordered(&a, &b));
        assert_eq!(a.to_xml(), "<yes/>");
    }
}
