//! Parsing stylesheets from XSLT/XML text.

use xvc_xml::{Document, NodeId, NodeKind, SpanInfo};
use xvc_xpath::{parse_expr, parse_path, parse_pattern};

use crate::error::{Error, Result};
use crate::model::{
    ApplyTemplates, OutputNode, ParamDecl, Stylesheet, TemplateRule, WithParam, DEFAULT_MODE,
};

/// Parses a stylesheet from XSLT text.
///
/// The root element must be `xsl:stylesheet` or `xsl:transform`; its
/// `xsl:template` children become the rules. Top-level elements other than
/// templates are rejected (the paper's stylesheets consist of template
/// rules only, with built-in rules assumed overridden).
pub fn parse_stylesheet(text: &str) -> Result<Stylesheet> {
    let doc = xvc_xml::parse(text)?;
    let root = doc.document_element().ok_or(Error::NotAStylesheet {
        found: "(multiple top-level elements)".to_owned(),
        span: None,
    })?;
    let root_name = doc.name(root).unwrap_or_default();
    if root_name != "xsl:stylesheet" && root_name != "xsl:transform" {
        return Err(Error::NotAStylesheet {
            found: root_name.to_owned(),
            span: doc.span(root),
        });
    }
    let mut rules = Vec::new();
    for child in doc.child_elements(root) {
        match doc.name(child) {
            Some("xsl:template") => rules.push(parse_template(&doc, child)?),
            Some(other) => {
                return Err(Error::UnknownXslElement {
                    name: other.to_owned(),
                    span: doc.span(child),
                })
            }
            None => unreachable!("child_elements yields elements"),
        }
    }
    Ok(Stylesheet { rules })
}

fn parse_template(doc: &Document, elem: NodeId) -> Result<TemplateRule> {
    let match_text = doc.attr(elem, "match").ok_or(Error::MissingMatch {
        span: doc.span(elem),
    })?;
    let match_pattern = parse_pattern(match_text)?;
    let match_span = SpanInfo::from(doc.attr_span(elem, "match"));
    let mode = doc.attr(elem, "mode").unwrap_or(DEFAULT_MODE).to_owned();
    let explicit_priority = match doc.attr(elem, "priority") {
        None => None,
        Some(p) => Some(p.trim().parse::<f64>().map_err(|_| Error::BadPriority {
            text: p.to_owned(),
            span: doc.attr_span(elem, "priority"),
        })?),
    };

    // Leading xsl:param declarations.
    let mut params = Vec::new();
    let mut body_nodes = Vec::new();
    let mut in_params = true;
    for &child in doc.children(elem) {
        if in_params && doc.is_element_named(child, "xsl:param") {
            let name = doc
                .attr(child, "name")
                .ok_or(Error::MissingAttribute {
                    element: "xsl:param",
                    attribute: "name",
                    span: doc.span(child),
                })?
                .to_owned();
            let default = match doc.attr(child, "select") {
                Some(s) => Some(parse_expr(s)?),
                None => None,
            };
            params.push(ParamDecl { name, default });
        } else {
            in_params = false;
            body_nodes.push(child);
        }
    }

    let mut output = Vec::new();
    for child in body_nodes {
        if let Some(node) = parse_output_node(doc, child)? {
            output.push(node);
        }
    }
    Ok(TemplateRule {
        match_pattern,
        mode,
        explicit_priority,
        params,
        output,
        match_span,
    })
}

fn parse_output_node(doc: &Document, id: NodeId) -> Result<Option<OutputNode>> {
    match doc.kind(id) {
        NodeKind::Text(t) => {
            if t.trim().is_empty() {
                Ok(None)
            } else {
                Ok(Some(OutputNode::Text(t.clone())))
            }
        }
        NodeKind::Root => unreachable!("output nodes live under a template"),
        NodeKind::Element { name, attrs } => match name.as_str() {
            "xsl:apply-templates" => {
                let select_text = doc.attr(id, "select").unwrap_or("*");
                let select = parse_path(select_text)?;
                let select_span =
                    SpanInfo::from(doc.attr_span(id, "select").or_else(|| doc.span(id)));
                let mode = doc.attr(id, "mode").unwrap_or(DEFAULT_MODE).to_owned();
                let mut with_params = Vec::new();
                for child in doc.child_elements(id) {
                    if doc.is_element_named(child, "xsl:with-param") {
                        let name = doc
                            .attr(child, "name")
                            .ok_or(Error::MissingAttribute {
                                element: "xsl:with-param",
                                attribute: "name",
                                span: doc.span(child),
                            })?
                            .to_owned();
                        let select_text =
                            doc.attr(child, "select").ok_or(Error::MissingAttribute {
                                element: "xsl:with-param",
                                attribute: "select",
                                span: doc.span(child),
                            })?;
                        with_params.push(WithParam {
                            name,
                            select: parse_expr(select_text)?,
                        });
                    } else {
                        return Err(Error::UnknownXslElement {
                            name: doc.name(child).unwrap_or_default().to_owned(),
                            span: doc.span(child),
                        });
                    }
                }
                Ok(Some(OutputNode::ApplyTemplates(ApplyTemplates {
                    select,
                    mode,
                    with_params,
                    select_span,
                })))
            }
            "xsl:value-of" => {
                let select = doc.attr(id, "select").ok_or(Error::MissingAttribute {
                    element: "xsl:value-of",
                    attribute: "select",
                    span: doc.span(id),
                })?;
                Ok(Some(OutputNode::ValueOf {
                    select: parse_expr(select)?,
                    span: SpanInfo::from(doc.attr_span(id, "select")),
                }))
            }
            "xsl:copy-of" => {
                let select = doc.attr(id, "select").ok_or(Error::MissingAttribute {
                    element: "xsl:copy-of",
                    attribute: "select",
                    span: doc.span(id),
                })?;
                Ok(Some(OutputNode::CopyOf {
                    select: parse_expr(select)?,
                    span: SpanInfo::from(doc.attr_span(id, "select")),
                }))
            }
            "xsl:if" => {
                let test = doc.attr(id, "test").ok_or(Error::MissingAttribute {
                    element: "xsl:if",
                    attribute: "test",
                    span: doc.span(id),
                })?;
                Ok(Some(OutputNode::If {
                    test: parse_expr(test)?,
                    children: parse_children(doc, id)?,
                    span: SpanInfo::from(doc.span(id)),
                }))
            }
            "xsl:choose" => {
                let mut whens = Vec::new();
                let mut otherwise = Vec::new();
                for child in doc.child_elements(id) {
                    match doc.name(child) {
                        Some("xsl:when") => {
                            let test = doc.attr(child, "test").ok_or(Error::MissingAttribute {
                                element: "xsl:when",
                                attribute: "test",
                                span: doc.span(child),
                            })?;
                            whens.push((parse_expr(test)?, parse_children(doc, child)?));
                        }
                        Some("xsl:otherwise") => {
                            otherwise = parse_children(doc, child)?;
                        }
                        Some(other) => {
                            return Err(Error::UnknownXslElement {
                                name: other.to_owned(),
                                span: doc.span(child),
                            })
                        }
                        None => unreachable!(),
                    }
                }
                Ok(Some(OutputNode::Choose {
                    whens,
                    otherwise,
                    span: SpanInfo::from(doc.span(id)),
                }))
            }
            "xsl:for-each" => {
                let select = doc.attr(id, "select").ok_or(Error::MissingAttribute {
                    element: "xsl:for-each",
                    attribute: "select",
                    span: doc.span(id),
                })?;
                Ok(Some(OutputNode::ForEach {
                    select: parse_path(select)?,
                    children: parse_children(doc, id)?,
                    span: SpanInfo::from(doc.span(id)),
                }))
            }
            "xsl:text" => Ok(Some(OutputNode::Text(doc.text_content(id)))),
            other if other.starts_with("xsl:") => Err(Error::UnknownXslElement {
                name: other.to_owned(),
                span: doc.span(id),
            }),
            // Literal result element.
            _ => {
                for (n, v) in attrs {
                    if v.contains('{') {
                        return Err(Error::AttributeValueTemplate {
                            value: v.clone(),
                            span: doc.attr_span(id, n),
                        });
                    }
                }
                Ok(Some(OutputNode::Element {
                    name: name.clone(),
                    attrs: attrs.clone(),
                    children: parse_children(doc, id)?,
                }))
            }
        },
    }
}

fn parse_children(doc: &Document, id: NodeId) -> Result<Vec<OutputNode>> {
    let mut out = Vec::new();
    for &child in doc.children(id) {
        if let Some(node) = parse_output_node(doc, child)? {
            out.push(node);
        }
    }
    Ok(out)
}

/// The paper's Figure 4 stylesheet, verbatim (used by tests, examples and
/// the figure-regeneration harness).
pub const FIGURE4_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <HTML>
      <HEAD></HEAD>
      <BODY>
        <xsl:apply-templates select="metro"/>
      </BODY>
    </HTML>
  </xsl:template>
  <xsl:template match="metro">
    <result_metro>
      <A></A>
      <xsl:apply-templates select="hotel/confstat"/>
    </result_metro>
  </xsl:template>
  <xsl:template match="confstat">
    <result_confstat>
      <B></B>
      <xsl:apply-templates select="../hotel_available/../confroom"/>
    </result_confstat>
  </xsl:template>
  <xsl:template match="metro/hotel/confroom">
    <xsl:value-of select="."/>
  </xsl:template>
</xsl:stylesheet>"#;

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_xpath::Axis;

    #[test]
    fn parses_figure4() {
        let s = parse_stylesheet(FIGURE4_XSLT).unwrap();
        assert_eq!(s.len(), 4);
        // R1 matches "/".
        assert!(s.rules[0].match_pattern.absolute);
        assert!(s.rules[0].match_pattern.steps.is_empty());
        // R2's single apply-templates selects hotel/confstat.
        let applies = s.rules[1].apply_templates();
        assert_eq!(applies.len(), 1);
        assert_eq!(applies[0].select.to_string(), "hotel/confstat");
        // R3's select uses the parent axis.
        let applies = s.rules[2].apply_templates();
        assert_eq!(applies[0].select.steps[0].axis, Axis::Parent);
        // R4 is a value-of ".".
        assert!(matches!(s.rules[3].output[0], OutputNode::ValueOf { .. }));
        assert_eq!(s.max_apply_per_rule(), 1);
    }

    #[test]
    fn parses_modes_and_priority() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="a" mode="m7" priority="2.5"><x/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(s.rules[0].mode, "m7");
        assert_eq!(s.rules[0].priority(), 2.5);
    }

    #[test]
    fn parses_params_and_with_params() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/metro">
                   <xsl:param name="idx" select="10"/>
                   <result>
                     <xsl:apply-templates select="hotel">
                       <xsl:with-param name="idx" select="$idx - 1"/>
                     </xsl:apply-templates>
                   </result>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let r = &s.rules[0];
        assert_eq!(r.params.len(), 1);
        assert_eq!(r.params[0].name, "idx");
        assert!(r.params[0].default.is_some());
        let a = r.apply_templates()[0];
        assert_eq!(a.with_params.len(), 1);
        assert_eq!(a.with_params[0].name, "idx");
    }

    #[test]
    fn parses_flow_control() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="a">
                   <xsl:if test="@x &gt; 1"><y/></xsl:if>
                   <xsl:choose>
                     <xsl:when test="@x = 1"><one/></xsl:when>
                     <xsl:when test="@x = 2"><two/></xsl:when>
                     <xsl:otherwise><other/></xsl:otherwise>
                   </xsl:choose>
                   <xsl:for-each select="b"><z/></xsl:for-each>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = &s.rules[0].output;
        assert!(matches!(out[0], OutputNode::If { .. }));
        let OutputNode::Choose {
            whens, otherwise, ..
        } = &out[1]
        else {
            panic!("expected choose");
        };
        assert_eq!(whens.len(), 2);
        assert_eq!(otherwise.len(), 1);
        assert!(matches!(out[2], OutputNode::ForEach { .. }));
    }

    #[test]
    fn literal_elements_keep_attrs() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="a"><A href="x">hi</A></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let OutputNode::Element {
            name,
            attrs,
            children,
        } = &s.rules[0].output[0]
        else {
            panic!();
        };
        assert_eq!(name, "A");
        assert_eq!(attrs[0], ("href".to_owned(), "x".to_owned()));
        assert!(matches!(&children[0], OutputNode::Text(t) if t == "hi"));
    }

    #[test]
    fn rejects_missing_match_and_unknown_elements() {
        assert!(matches!(
            parse_stylesheet("<xsl:stylesheet><xsl:template/></xsl:stylesheet>"),
            Err(Error::MissingMatch { .. })
        ));
        assert!(matches!(
            parse_stylesheet(
                "<xsl:stylesheet><xsl:template match=\"a\"><xsl:frob/></xsl:template></xsl:stylesheet>"
            ),
            Err(Error::UnknownXslElement { .. })
        ));
        assert!(matches!(
            parse_stylesheet("<not_a_stylesheet/>"),
            Err(Error::NotAStylesheet { .. })
        ));
    }

    #[test]
    fn rejects_attribute_value_templates() {
        assert!(matches!(
            parse_stylesheet(
                "<xsl:stylesheet><xsl:template match=\"a\"><x y=\"{@z}\"/></xsl:template></xsl:stylesheet>"
            ),
            Err(Error::AttributeValueTemplate { .. })
        ));
    }

    #[test]
    fn rejects_bad_priority() {
        assert!(matches!(
            parse_stylesheet(
                "<xsl:stylesheet><xsl:template match=\"a\" priority=\"high\"/></xsl:stylesheet>"
            ),
            Err(Error::BadPriority { .. })
        ));
    }

    #[test]
    fn records_match_and_select_spans() {
        let src = r#"<xsl:stylesheet>
  <xsl:template match="metro">
    <xsl:apply-templates select="hotel/confstat"/>
  </xsl:template>
</xsl:stylesheet>"#;
        let s = parse_stylesheet(src).unwrap();
        let m = s.rules[0].match_span.get().unwrap();
        assert_eq!(&src[m.start..m.end], "metro");
        let a = s.rules[0].apply_templates()[0].select_span.get().unwrap();
        assert_eq!(&src[a.start..a.end], "hotel/confstat");
    }

    #[test]
    fn parse_errors_carry_spans() {
        let src = "<xsl:stylesheet><xsl:template/></xsl:stylesheet>";
        let err = parse_stylesheet(src).unwrap_err();
        let span = err.span().unwrap();
        assert_eq!(&src[span.start..span.end], "<xsl:template/>");
    }

    #[test]
    fn default_select_for_apply_templates() {
        let s = parse_stylesheet(
            "<xsl:stylesheet><xsl:template match=\"a\"><xsl:apply-templates/></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        let a = s.rules[0].apply_templates()[0];
        assert_eq!(a.select.to_string(), "*");
    }
}
