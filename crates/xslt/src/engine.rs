//! The reference XSLT interpreter: Figure 5's `PROCESS` function.
//!
//! `PROCESS(x, dcon, mode)` walks the input document by context
//! transitions: the highest-priority rule whose mode matches and whose
//! pattern `MATCH`es the context node is instantiated; each
//! `<xsl:apply-templates>` in its output fragment `SELECT`s new context
//! nodes and recurses. Built-in rules are overridden (§2.2.1): an unmatched
//! node contributes nothing.
//!
//! Extensions beyond `XSLT_basic` (used by §5): predicates in paths,
//! `xsl:if` / `xsl:choose` / `xsl:for-each`, `xsl:param` /
//! `xsl:with-param`, and general `xsl:value-of` selects under the paper's
//! output model (see crate docs).

use std::collections::HashMap;

use xvc_xml::{Document, NodeId, TreeBuilder};
use xvc_xpath::{eval_expr, eval_path_value, pattern_matches, Expr, Value, VarBindings};

use crate::error::{Error, Result};
use crate::model::{OutputNode, Stylesheet, TemplateRule, DEFAULT_MODE};

/// Default template-recursion depth limit.
pub const DEFAULT_DEPTH_LIMIT: usize = 256;

/// Counters from one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of `PROCESS` invocations (context nodes visited).
    pub nodes_processed: usize,
    /// Number of template-rule instantiations.
    pub rules_fired: usize,
    /// Deepest template recursion reached.
    pub max_depth: usize,
}

/// Runs the stylesheet on a document: `PROCESS(x, root, #default)`.
pub fn process(stylesheet: &Stylesheet, doc: &Document) -> Result<Document> {
    process_with_limit(stylesheet, doc, DEFAULT_DEPTH_LIMIT).map(|(d, _)| d)
}

/// Like [`process`], with an explicit recursion limit and statistics.
pub fn process_with_limit(
    stylesheet: &Stylesheet,
    doc: &Document,
    depth_limit: usize,
) -> Result<(Document, EngineStats)> {
    let mut engine = Engine {
        stylesheet,
        doc,
        builder: TreeBuilder::new(),
        stats: EngineStats::default(),
        depth_limit,
    };
    engine.process_node(doc.root(), DEFAULT_MODE, &HashMap::new(), 0)?;
    Ok((engine.builder.finish(), engine.stats))
}

struct Engine<'a> {
    stylesheet: &'a Stylesheet,
    doc: &'a Document,
    builder: TreeBuilder,
    stats: EngineStats,
    depth_limit: usize,
}

impl Engine<'_> {
    /// Figure 5, `PROCESS(x, dcon, mode)`: pick the matching rule of
    /// highest priority and instantiate its output.
    fn process_node(
        &mut self,
        dcon: NodeId,
        mode: &str,
        passed: &VarBindings,
        depth: usize,
    ) -> Result<()> {
        if depth > self.depth_limit {
            return Err(Error::RecursionLimit {
                limit: self.depth_limit,
            });
        }
        self.stats.nodes_processed += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        // Collect matching rules; among equal priorities the one latest in
        // the stylesheet wins (the XSLT recoverable-conflict behaviour).
        let mut best: Option<(&TemplateRule, f64, usize)> = None;
        for (idx, rule) in self.stylesheet.rules.iter().enumerate() {
            if rule.mode != mode {
                continue;
            }
            if !pattern_matches(self.doc, dcon, &rule.match_pattern, passed)? {
                continue;
            }
            let p = rule.priority();
            let better = match best {
                None => true,
                Some((_, bp, bidx)) => p > bp || (p == bp && idx > bidx),
            };
            if better {
                best = Some((rule, p, idx));
            }
        }
        let Some((rule, ..)) = best else {
            return Ok(()); // built-ins overridden: unmatched ⇒ nothing
        };
        self.stats.rules_fired += 1;

        // Bind xsl:param declarations: passed value, else default, else "".
        let mut vars: VarBindings = HashMap::new();
        for p in &rule.params {
            let v = if let Some(v) = passed.get(&p.name) {
                v.clone()
            } else if let Some(default) = &p.default {
                eval_expr(self.doc, dcon, default, &HashMap::new())?
            } else {
                Value::Str(String::new())
            };
            vars.insert(p.name.clone(), v);
        }

        self.instantiate(&rule.output, dcon, &vars, depth)
    }

    fn instantiate(
        &mut self,
        nodes: &[OutputNode],
        dcon: NodeId,
        vars: &VarBindings,
        depth: usize,
    ) -> Result<()> {
        for node in nodes {
            match node {
                OutputNode::Element {
                    name,
                    attrs,
                    children,
                } => {
                    self.builder.open(name.clone());
                    for (k, v) in attrs {
                        self.builder.attr(k.clone(), v.clone());
                    }
                    self.instantiate(children, dcon, vars, depth)?;
                    self.builder.close();
                }
                OutputNode::Text(t) => self.builder.text(t.clone()),
                OutputNode::ApplyTemplates(a) => {
                    // SELECT(dcon, aj) then recurse per new context node.
                    let selected = xvc_xpath::eval_path(self.doc, dcon, &a.select, vars)?;
                    let mut child_params: VarBindings = HashMap::new();
                    for wp in &a.with_params {
                        child_params.insert(
                            wp.name.clone(),
                            eval_expr(self.doc, dcon, &wp.select, vars)?,
                        );
                    }
                    for new_con in selected {
                        self.process_node(new_con, &a.mode, &child_params, depth + 1)?;
                    }
                }
                OutputNode::ValueOf { select, .. } => {
                    self.emit_value(select, dcon, vars, /* deep = */ false)?
                }
                OutputNode::CopyOf { select, .. } => {
                    self.emit_value(select, dcon, vars, /* deep = */ true)?
                }
                OutputNode::If { test, children, .. } => {
                    if eval_expr(self.doc, dcon, test, vars)?.to_bool() {
                        self.instantiate(children, dcon, vars, depth)?;
                    }
                }
                OutputNode::Choose {
                    whens, otherwise, ..
                } => {
                    let mut done = false;
                    for (test, body) in whens {
                        if eval_expr(self.doc, dcon, test, vars)?.to_bool() {
                            self.instantiate(body, dcon, vars, depth)?;
                            done = true;
                            break;
                        }
                    }
                    if !done {
                        self.instantiate(otherwise, dcon, vars, depth)?;
                    }
                }
                OutputNode::ForEach {
                    select, children, ..
                } => {
                    let selected = xvc_xpath::eval_path(self.doc, dcon, select, vars)?;
                    for item in selected {
                        self.instantiate(children, item, vars, depth)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The paper's output model for `<xsl:value-of>` / `<xsl:copy-of>`:
    /// selected *elements* are emitted as copies (shallow for value-of,
    /// deep for copy-of); selected *attributes* are attached to the
    /// enclosing output element; scalar results become text.
    fn emit_value(
        &mut self,
        select: &Expr,
        dcon: NodeId,
        vars: &VarBindings,
        deep: bool,
    ) -> Result<()> {
        let value = match select {
            Expr::Path(p) => eval_path_value(self.doc, dcon, p, vars)?,
            other => eval_expr(self.doc, dcon, other, vars)?,
        };
        match value {
            Value::Nodes(ns) => {
                for n in ns {
                    if self.doc.is_root(n) {
                        continue;
                    }
                    if deep {
                        self.builder.import(self.doc, n);
                    } else {
                        // Shallow copy: tag + attributes (restriction (10):
                        // database values are attributes, so this is the
                        // node's entire own content).
                        let tag = self.doc.name(n).expect("element").to_owned();
                        self.builder.open(tag);
                        for (k, v) in self.doc.attrs(n) {
                            self.builder.attr(k.clone(), v.clone());
                        }
                        self.builder.close();
                    }
                }
            }
            Value::Strs(_) => {
                // Attribute selection: attach to the enclosing element. The
                // attribute name comes from the final step of the path.
                let Expr::Path(p) = select else {
                    unreachable!("Strs only arise from attribute paths")
                };
                if self.builder.depth() == 0 {
                    return Err(Error::ValueOfAttributeAtRoot);
                }
                let last = p.steps.last().expect("attribute path has steps");
                match &last.test {
                    xvc_xpath::NodeTest::Name(attr_name) => {
                        if let Value::Strs(ss) = eval_path_value(self.doc, dcon, p, vars)? {
                            if let Some(v) = ss.first() {
                                self.builder.attr(attr_name.clone(), v.clone());
                            }
                        }
                    }
                    xvc_xpath::NodeTest::Wildcard => {
                        // `@*`: attach every attribute of the selected
                        // nodes' context — approximate with the context
                        // node's own attributes.
                        for (k, v) in self.doc.attrs(dcon) {
                            self.builder.attr(k.clone(), v.clone());
                        }
                    }
                }
            }
            scalar => {
                let s = scalar.to_str(self.doc);
                if !s.is_empty() {
                    self.builder.text(s);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_stylesheet, FIGURE4_XSLT};

    fn doc() -> Document {
        xvc_xml::parse(
            r#"<metro metroid="1" metroname="chicago">
                 <hotel hotelid="10" starrating="5">
                   <confstat sum="150"/>
                   <confroom c_id="100" capacity="300"/>
                   <confroom c_id="101" capacity="150"/>
                   <hotel_available count="12" startdate="2003-06-09"/>
                 </hotel>
                 <hotel hotelid="11" starrating="4">
                   <confstat sum="250"/>
                   <confroom c_id="102" capacity="500"/>
                 </hotel>
               </metro>"#,
        )
        .unwrap()
    }

    #[test]
    fn runs_figure4_stylesheet() {
        let s = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let out = process(&s, &doc()).unwrap();
        let xml = out.to_xml();
        // HTML skeleton from R1.
        assert!(xml.starts_with("<HTML><HEAD/><BODY>"), "{xml}");
        // R2 fires once per metro.
        assert_eq!(xml.matches("<result_metro>").count(), 1);
        // R3 fires once per confstat (2 hotels).
        assert_eq!(xml.matches("<result_confstat>").count(), 2);
        // R4 copies confrooms: only hotel 10 has a hotel_available sibling,
        // so only its two confrooms appear.
        assert_eq!(xml.matches("<confroom").count(), 2);
        assert!(xml.contains("<confroom c_id=\"100\" capacity=\"300\"/>"));
        assert!(!xml.contains("c_id=\"102\""));
    }

    #[test]
    fn unmatched_nodes_produce_nothing() {
        let s = parse_stylesheet(
            "<xsl:stylesheet><xsl:template match=\"/\"><out><xsl:apply-templates select=\"nope\"/></out></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        let out = process(&s, &doc()).unwrap();
        assert_eq!(out.to_xml(), "<out/>");
    }

    #[test]
    fn priority_conflict_resolution() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel"><generic/></xsl:template>
                 <xsl:template match="hotel" priority="2"><specific/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let out = process(&s, &doc()).unwrap();
        assert_eq!(out.to_xml(), "<specific/><specific/>");
    }

    #[test]
    fn equal_priority_last_rule_wins() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro"><first/></xsl:template>
                 <xsl:template match="metro"><second/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<second/>");
    }

    #[test]
    fn modes_partition_rules() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <xsl:apply-templates select="metro" mode="a"/>
                   <xsl:apply-templates select="metro" mode="b"/>
                 </xsl:template>
                 <xsl:template match="metro" mode="a"><in_a/></xsl:template>
                 <xsl:template match="metro" mode="b"><in_b/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<in_a/><in_b/>");
    }

    #[test]
    fn value_of_attribute_attaches_to_enclosing_element() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro">
                   <result><xsl:value-of select="@metroname"/></result>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(
            process(&s, &doc()).unwrap().to_xml(),
            "<result metroname=\"chicago\"/>"
        );
    }

    #[test]
    fn value_of_attribute_at_root_errors() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro"><xsl:value-of select="@metroname"/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()), Err(Error::ValueOfAttributeAtRoot));
    }

    #[test]
    fn copy_of_is_deep() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel"><xsl:copy-of select="."/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let xml = process(&s, &doc()).unwrap().to_xml();
        assert!(xml.contains("<hotel hotelid=\"10\" starrating=\"5\"><confstat sum=\"150\"/>"));
    }

    #[test]
    fn flow_control_if_choose_foreach() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:if test="@starrating &gt; 4"><lux/></xsl:if>
                     <xsl:choose>
                       <xsl:when test="@starrating = 5"><five/></xsl:when>
                       <xsl:otherwise><fewer/></xsl:otherwise>
                     </xsl:choose>
                     <xsl:for-each select="confroom"><room/></xsl:for-each>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let xml = process(&s, &doc()).unwrap().to_xml();
        assert_eq!(
            xml,
            "<h><lux/><five/><room/><room/></h><h><fewer/><room/></h>"
        );
    }

    #[test]
    fn params_default_and_passing() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <xsl:apply-templates select="metro">
                     <xsl:with-param name="n" select="3"/>
                   </xsl:apply-templates>
                 </xsl:template>
                 <xsl:template match="metro">
                   <xsl:param name="n" select="99"/>
                   <xsl:param name="unset" select="7"/>
                   <out><xsl:value-of select="$n + $unset"/></out>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<out>10</out>");
    }

    #[test]
    fn recursion_limit_enforced() {
        // An intentionally infinite self-recursion through the self axis.
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro"><xsl:apply-templates select="."/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(matches!(
            process_with_limit(&s, &doc(), 50),
            Err(Error::RecursionLimit { limit: 50 })
        ));
    }

    #[test]
    fn stats_are_counted() {
        let s = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let (_, stats) = process_with_limit(&s, &doc(), 64).unwrap();
        // root + 1 metro + 2 confstat + 2 confroom = 6 context nodes.
        assert_eq!(stats.nodes_processed, 6);
        assert_eq!(stats.rules_fired, 6);
        assert_eq!(stats.max_depth, 3);
    }

    #[test]
    fn absolute_selects_jump_to_the_root() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h><xsl:apply-templates select="/metro" mode="up"/></h>
                 </xsl:template>
                 <xsl:template match="metro" mode="up"><top/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        // Two hotels each jump back to the single metro.
        assert_eq!(
            process(&s, &doc()).unwrap().to_xml(),
            "<h><top/></h><h><top/></h>"
        );
    }

    #[test]
    fn default_apply_select_is_all_child_elements() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates/></xsl:template>
                 <xsl:template match="metro"><m><xsl:apply-templates/></m></xsl:template>
                 <xsl:template match="hotel"><h/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<m><h/><h/></m>");
    }

    #[test]
    fn undeclared_with_params_are_ignored() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <xsl:apply-templates select="metro">
                     <xsl:with-param name="unused" select="42"/>
                   </xsl:apply-templates>
                 </xsl:template>
                 <xsl:template match="metro"><m/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<m/>");
    }

    #[test]
    fn params_do_not_leak_across_apply_boundaries() {
        // R2 receives $n; R3 (called without with-param) must see its own
        // default, not R2's binding.
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <xsl:apply-templates select="metro">
                     <xsl:with-param name="n" select="5"/>
                   </xsl:apply-templates>
                 </xsl:template>
                 <xsl:template match="metro">
                   <xsl:param name="n"/>
                   <outer><xsl:value-of select="$n"/></outer>
                   <xsl:apply-templates select="hotel"/>
                 </xsl:template>
                 <xsl:template match="hotel">
                   <xsl:param name="n" select="0"/>
                   <inner><xsl:value-of select="$n"/></inner>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let xml = process(&s, &doc()).unwrap().to_xml();
        assert_eq!(xml, "<outer>5</outer><inner>0</inner><inner>0</inner>");
    }

    #[test]
    fn literal_text_is_emitted() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><greeting>hello <b>world</b></greeting></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(
            process(&s, &doc()).unwrap().to_xml(),
            "<greeting>hello <b>world</b></greeting>"
        );
    }

    #[test]
    fn wildcard_match_catches_everything_selected() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel/confstat"/></xsl:template>
                 <xsl:template match="*"><got/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(process(&s, &doc()).unwrap().to_xml(), "<got/><got/>");
    }

    #[test]
    fn bounded_recursion_with_params_terminates() {
        // Countdown recursion: the §5.3 pattern in miniature.
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <xsl:apply-templates select="metro">
                     <xsl:with-param name="idx" select="3"/>
                   </xsl:apply-templates>
                 </xsl:template>
                 <xsl:template match="metro">
                   <xsl:param name="idx"/>
                   <xsl:choose>
                     <xsl:when test="$idx &lt;= 1"><done/></xsl:when>
                     <xsl:otherwise>
                       <level>
                         <xsl:apply-templates select=".">
                           <xsl:with-param name="idx" select="$idx - 1"/>
                         </xsl:apply-templates>
                       </level>
                     </xsl:otherwise>
                   </xsl:choose>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert_eq!(
            process(&s, &doc()).unwrap().to_xml(),
            "<level><level><done/></level></level>"
        );
    }
}
