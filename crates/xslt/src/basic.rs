//! The `XSLT_basic` restrictions (§2.2.2).
//!
//! `XSLT_basic` restricts XSLT to the fragment the core composition
//! algorithm handles directly. [`check_basic`] reports every violation with
//! the rule index and the restriction number, so callers can decide whether
//! to reject, or first lower the stylesheet via the §5.2 rewrites
//! ([`crate::rewrite`]) and compose predicates via §5.1.

use xvc_xml::Span;
use xvc_xpath::{Axis, Expr, PathExpr};

use crate::model::{OutputNode, Stylesheet};

/// One violation of the `XSLT_basic` restrictions.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicViolation {
    /// Index of the offending rule in the stylesheet.
    pub rule: usize,
    /// Which §2.2.2 restriction is violated (4–10; 1–3 are semantic and
    /// checked elsewhere: recursion shows up as a CTG cycle at
    /// composition time).
    pub restriction: u8,
    /// Human-readable explanation.
    pub reason: String,
    /// Byte-offset span of the offending construct in the stylesheet
    /// source, when the stylesheet was parsed from text.
    pub span: Option<Span>,
}

impl std::fmt::Display for BasicViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rule {}: violates XSLT_basic restriction ({}): {}",
            self.rule, self.restriction, self.reason
        )
    }
}

/// Checks the statically checkable `XSLT_basic` restrictions:
/// (4) no predicates, (5) no flow-control elements, (6) no potentially
/// conflicting rules, (8) no variables/parameters, (9) no descendant axis,
/// (10) `value-of`/`copy-of` select only `.` or `@attribute`.
pub fn check_basic(s: &Stylesheet) -> Vec<BasicViolation> {
    let mut out = Vec::new();
    for (i, rule) in s.rules.iter().enumerate() {
        check_path(
            i,
            &rule.match_pattern,
            "match pattern",
            rule.match_span.get(),
            &mut out,
        );
        if !rule.params.is_empty() {
            out.push(BasicViolation {
                rule: i,
                restriction: 8,
                reason: "xsl:param declarations are not allowed".into(),
                span: rule.match_span.get(),
            });
        }
        check_output(i, &rule.output, &mut out);
    }
    // (6) conflict detection: two rules in the same mode whose patterns end
    // in the same node name (or a wildcard) can match the same node.
    for (i, a) in s.rules.iter().enumerate() {
        for (j, b) in s.rules.iter().enumerate().skip(i + 1) {
            if a.mode != b.mode {
                continue;
            }
            let (na, nb) = (a.node_name(), b.node_name());
            // The root pattern "/" never conflicts with element patterns.
            if a.match_pattern.steps.is_empty() || b.match_pattern.steps.is_empty() {
                continue;
            }
            if na == nb || na == "*" || nb == "*" {
                out.push(BasicViolation {
                    rule: j,
                    restriction: 6,
                    reason: format!(
                        "rules {i} and {j} (mode {:?}) may both match <{}> nodes",
                        a.mode,
                        if na == "*" { &nb } else { &na }
                    ),
                    span: b.match_span.get(),
                });
            }
        }
    }
    out
}

fn check_path(
    rule: usize,
    p: &PathExpr,
    what: &str,
    span: Option<Span>,
    out: &mut Vec<BasicViolation>,
) {
    for step in &p.steps {
        if !step.predicates.is_empty() {
            out.push(BasicViolation {
                rule,
                restriction: 4,
                reason: format!("{what} `{p}` contains predicates"),
                span,
            });
        }
        for pred in &step.predicates {
            check_expr(rule, pred, span, out);
        }
        if matches!(step.axis, Axis::Descendant | Axis::DescendantOrSelf) {
            out.push(BasicViolation {
                rule,
                restriction: 9,
                reason: format!("{what} `{p}` uses the descendant axis"),
                span,
            });
        }
    }
}

fn check_expr(rule: usize, e: &Expr, span: Option<Span>, out: &mut Vec<BasicViolation>) {
    if e.uses_variables() {
        out.push(BasicViolation {
            rule,
            restriction: 8,
            reason: "expression references a variable".into(),
            span,
        });
    }
}

fn check_output(rule: usize, nodes: &[OutputNode], out: &mut Vec<BasicViolation>) {
    for n in nodes {
        match n {
            OutputNode::Element { children, .. } => check_output(rule, children, out),
            OutputNode::Text(_) => {}
            OutputNode::ApplyTemplates(a) => {
                check_path(
                    rule,
                    &a.select,
                    "select expression",
                    a.select_span.get(),
                    out,
                );
                if !a.with_params.is_empty() {
                    out.push(BasicViolation {
                        rule,
                        restriction: 8,
                        reason: "xsl:with-param is not allowed".into(),
                        span: a.select_span.get(),
                    });
                }
            }
            OutputNode::ValueOf { select, span } | OutputNode::CopyOf { select, span } => {
                if !is_basic_value_select(select) {
                    out.push(BasicViolation {
                        rule,
                        restriction: 10,
                        reason: format!(
                            "value-of/copy-of select must be \".\" or \"@attr\", found `{select}`"
                        ),
                        span: span.get(),
                    });
                }
            }
            OutputNode::If { span, .. }
            | OutputNode::Choose { span, .. }
            | OutputNode::ForEach { span, .. } => {
                out.push(BasicViolation {
                    rule,
                    restriction: 5,
                    reason: "flow-control element (xsl:if/choose/for-each)".into(),
                    span: span.get(),
                });
            }
        }
    }
}

/// Restriction (10): the select of `value-of`/`copy-of` can only be `.` or
/// `@attribute`.
pub fn is_basic_value_select(e: &Expr) -> bool {
    match e {
        Expr::Path(p) if !p.absolute && p.steps.len() == 1 => {
            let s = &p.steps[0];
            s.predicates.is_empty()
                && matches!(
                    (s.axis, &s.test),
                    (Axis::SelfAxis, xvc_xpath::NodeTest::Wildcard)
                        | (Axis::Attribute, xvc_xpath::NodeTest::Name(_))
                )
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_stylesheet, FIGURE4_XSLT};

    #[test]
    fn figure4_is_basic() {
        let s = parse_stylesheet(FIGURE4_XSLT).unwrap();
        assert!(check_basic(&s).is_empty());
    }

    #[test]
    fn detects_predicates() {
        let s =
            parse_stylesheet("<xsl:stylesheet><xsl:template match=\"a[@x=1]\"/></xsl:stylesheet>")
                .unwrap();
        let v = check_basic(&s);
        assert!(v.iter().any(|v| v.restriction == 4), "{v:?}");
    }

    #[test]
    fn detects_flow_control() {
        let s = parse_stylesheet(
            "<xsl:stylesheet><xsl:template match=\"a\"><xsl:if test=\"@x\"><y/></xsl:if></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        assert!(check_basic(&s).iter().any(|v| v.restriction == 5));
    }

    #[test]
    fn detects_conflicting_rules() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="hotel"/>
                 <xsl:template match="metro/hotel"/>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(check_basic(&s).iter().any(|v| v.restriction == 6));
        // Different modes do not conflict.
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="hotel" mode="a"/>
                 <xsl:template match="metro/hotel" mode="b"/>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        assert!(check_basic(&s).is_empty());
    }

    #[test]
    fn detects_params_and_variables() {
        let s = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="a">
                   <xsl:param name="idx"/>
                   <xsl:apply-templates select="b">
                     <xsl:with-param name="idx" select="1"/>
                   </xsl:apply-templates>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let v = check_basic(&s);
        assert!(v.iter().filter(|v| v.restriction == 8).count() >= 2);
    }

    #[test]
    fn detects_descendant_axis() {
        let s = parse_stylesheet("<xsl:stylesheet><xsl:template match=\"a//b\"/></xsl:stylesheet>")
            .unwrap();
        assert!(check_basic(&s).iter().any(|v| v.restriction == 9));
    }

    #[test]
    fn detects_general_value_of() {
        let s = parse_stylesheet(
            "<xsl:stylesheet><xsl:template match=\"a\"><xsl:value-of select=\"b/c\"/></xsl:template></xsl:stylesheet>",
        )
        .unwrap();
        assert!(check_basic(&s).iter().any(|v| v.restriction == 10));
    }

    #[test]
    fn basic_value_selects() {
        assert!(is_basic_value_select(&xvc_xpath::parse_expr(".").unwrap()));
        assert!(is_basic_value_select(
            &xvc_xpath::parse_expr("@sum").unwrap()
        ));
        assert!(!is_basic_value_select(
            &xvc_xpath::parse_expr("b/c").unwrap()
        ));
        assert!(!is_basic_value_select(
            &xvc_xpath::parse_expr(".[@x=1]").unwrap()
        ));
    }
}
