//! Property tests: serialize→parse round-trips and canonical-form laws.

use proptest::prelude::*;
use xvc_xml::{canonical_string, documents_equal_unordered, parse, Document, NodeId};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

/// A recursive value-level XML tree we can generate with proptest and then
/// lower into a `Document`.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

/// Attribute/text values: printable including the characters that require
/// escaping, but no raw control characters.
fn value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,12}").unwrap()
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        // Text must not be whitespace-only (the parser drops those).
        value_strategy()
            .prop_filter("non-ws text", |s| !s.trim().is_empty())
            .prop_map(Tree::Text),
        (name_strategy(), attrs_strategy()).prop_map(|(name, attrs)| Tree::Element {
            name,
            attrs,
            children: vec![],
        }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            attrs_strategy(),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element {
                name,
                attrs,
                children,
            })
    })
}

fn attrs_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((name_strategy(), value_strategy()), 0..3).prop_map(|attrs| {
        // Deduplicate attribute names; the model requires uniqueness.
        let mut seen = std::collections::HashSet::new();
        attrs
            .into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect()
    })
}

fn lower(tree: &Tree, doc: &mut Document, parent: NodeId) {
    match tree {
        Tree::Text(t) => {
            let n = doc.create_text(t.clone());
            doc.append_child(parent, n);
        }
        Tree::Element {
            name,
            attrs,
            children,
        } => {
            let e = doc.create_element(name.clone());
            for (k, v) in attrs {
                doc.set_attr(e, k.clone(), v.clone()).unwrap();
            }
            doc.append_child(parent, e);
            // Merge adjacent text children would complicate equality; skip
            // consecutive text nodes by interspersing only via generation —
            // instead we simply allow them; round-trip still holds because
            // serialization concatenates and the canonical comparison is on
            // the reparsed form on both sides.
            for c in children {
                lower(c, doc, e);
            }
        }
    }
}

/// Wrap the generated tree in a fixed single root element so the result is a
/// well-formed document.
fn to_document(tree: &Tree) -> Document {
    let mut doc = Document::new();
    let root = doc.root();
    let wrapper = doc.create_element("root");
    doc.append_child(root, wrapper);
    lower(tree, &mut doc, wrapper);
    doc
}

proptest! {
    #![proptest_config(cases(256))]

    /// serialize → parse → serialize is a fixed point.
    #[test]
    fn compact_serialization_roundtrips(t in tree_strategy()) {
        let doc = to_document(&t);
        let xml1 = doc.to_xml();
        let reparsed = parse(&xml1).unwrap();
        let xml2 = reparsed.to_xml();
        prop_assert_eq!(xml1, xml2);
    }

    /// parse(serialize(d)) is canonically equal to parse(serialize(parse(serialize(d)))).
    #[test]
    fn canonical_equality_reflexive_under_reparse(t in tree_strategy()) {
        let doc = to_document(&t);
        let reparsed = parse(&doc.to_xml()).unwrap();
        let again = parse(&reparsed.to_xml()).unwrap();
        prop_assert!(documents_equal_unordered(&reparsed, &again));
    }

    /// Pretty output reparses to the same canonical form as compact output.
    #[test]
    fn pretty_and_compact_agree(t in tree_strategy()) {
        let doc = to_document(&t);
        let a = parse(&doc.to_xml()).unwrap();
        let b = parse(&doc.to_pretty_xml()).unwrap();
        prop_assert!(documents_equal_unordered(&a, &b));
    }

    /// Canonical strings are invariant under reversing children order.
    #[test]
    fn canonical_ignores_sibling_order(t in tree_strategy()) {
        let doc = to_document(&t);
        let reversed = {
            let mut d = Document::new();
            let root = d.root();
            let wrapper = d.create_element("root");
            d.append_child(root, wrapper);
            fn lower_rev(tree: &Tree, doc: &mut Document, parent: NodeId) {
                match tree {
                    Tree::Text(t) => {
                        let n = doc.create_text(t.clone());
                        doc.append_child(parent, n);
                    }
                    Tree::Element { name, attrs, children } => {
                        let e = doc.create_element(name.clone());
                        for (k, v) in attrs.iter().rev() {
                            doc.set_attr(e, k.clone(), v.clone()).unwrap();
                        }
                        doc.append_child(parent, e);
                        for c in children.iter().rev() {
                            lower_rev(c, doc, e);
                        }
                    }
                }
            }
            lower_rev(&t, &mut d, wrapper);
            d
        };
        prop_assert_eq!(
            canonical_string(&doc, doc.root()),
            canonical_string(&reversed, reversed.root())
        );
    }
}
