//! Byte-offset source spans.
//!
//! Spans let parse errors and static-analysis diagnostics point back at
//! the exact region of the source text that produced an AST node. They
//! are deliberately lightweight: a half-open byte range plus a helper to
//! convert an offset into a 1-based line/column pair for display.

use std::fmt;

/// A half-open byte range `start..end` into a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last byte covered by the span.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Converts a byte offset into a 1-based `(line, column)` pair. Columns
/// count characters, not bytes. Offsets past the end of `src` (or inside
/// a multi-byte character) are clamped to the nearest valid boundary.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let mut offset = offset.min(src.len());
    while offset > 0 && !src.is_char_boundary(offset) {
        offset -= 1;
    }
    let before = &src[..offset];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
    let col = src[line_start..offset].chars().count() + 1;
    (line, col)
}

/// Optional span metadata attached to AST nodes.
///
/// `SpanInfo` always compares (and hashes) equal so that span-carrying
/// ASTs keep the *structural* equality their callers rely on: a parsed
/// tree still equals an equivalent hand-built one, and rewritten trees
/// (whose spans are gone) still equal their reparsed serializations.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanInfo(pub Option<Span>);

impl SpanInfo {
    /// Wraps a concrete span.
    pub fn new(span: Span) -> SpanInfo {
        SpanInfo(Some(span))
    }

    /// Returns the underlying span, if one was recorded.
    pub fn get(&self) -> Option<Span> {
        self.0
    }
}

impl PartialEq for SpanInfo {
    fn eq(&self, _: &SpanInfo) -> bool {
        true
    }
}

impl Eq for SpanInfo {}

impl std::hash::Hash for SpanInfo {
    fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
}

impl From<Option<Span>> for SpanInfo {
    fn from(span: Option<Span>) -> SpanInfo {
        SpanInfo(span)
    }
}

impl From<Span> for SpanInfo {
    fn from(span: Span) -> SpanInfo {
        SpanInfo(Some(span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based_and_clamped() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 5), (2, 3));
        assert_eq!(line_col(src, 7), (3, 1));
        assert_eq!(line_col(src, 999), (3, 2));
    }

    #[test]
    fn line_col_counts_chars_not_bytes() {
        let src = "é<b>"; // 'é' is two bytes
        assert_eq!(line_col(src, 2), (1, 2));
        // Offset inside the multi-byte char clamps to its start.
        assert_eq!(line_col(src, 1), (1, 1));
    }

    #[test]
    fn span_info_always_compares_equal() {
        assert_eq!(SpanInfo::new(Span::new(1, 5)), SpanInfo::default());
        assert_eq!(
            SpanInfo::new(Span::new(1, 5)),
            SpanInfo::new(Span::new(7, 9))
        );
    }
}
