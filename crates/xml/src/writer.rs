//! Streaming XML emission: an event/sink abstraction ([`XmlSink`]) plus
//! the two writers that implement it — [`XmlWriter`] (compact, fully
//! streaming: every event goes straight to the underlying [`io::Write`])
//! and [`PrettyXmlWriter`] (two-space indentation).
//!
//! Both writers produce byte-identical output to the historical
//! [`Document`](crate::Document) serializers — `to_xml` / `to_pretty_xml`
//! are now thin wrappers that replay a document's events into these sinks,
//! so there is exactly one escaping and one layout code path no matter
//! whether XML is serialized from an arena or streamed straight out of a
//! publisher.
//!
//! Pretty layout needs lookahead (an element with a single text child is
//! kept inline; *any* text child switches the whole element to compact
//! content), so [`PrettyXmlWriter`] buffers events per **top-level**
//! element and renders the element when it closes. [`XmlWriter`] buffers
//! nothing.

use std::io::{self, Write};

use crate::escape::{write_attr_escaped, write_text_escaped};

/// Event sink for XML serialization.
///
/// The event grammar is the obvious one: `start_element`, followed by any
/// number of `attr` calls for that element, followed by its content
/// (nested elements / `text`), closed by `end_element` with the same name.
/// Calling `attr` after the element's first content event is a contract
/// violation (the compact writer would emit it into character data).
pub trait XmlSink {
    /// Opens `<name …`.
    fn start_element(&mut self, name: &str) -> io::Result<()>;
    /// Adds ` name="value"` (escaped) to the currently open start tag.
    fn attr(&mut self, name: &str, value: &str) -> io::Result<()>;
    /// Emits escaped character data.
    fn text(&mut self, text: &str) -> io::Result<()>;
    /// Closes the current element (`/>` when it had no content).
    fn end_element(&mut self, name: &str) -> io::Result<()>;
}

/// Compact streaming writer: events are serialized to the underlying
/// [`io::Write`] immediately, with no whitespace added and no buffering
/// beyond one "is a start tag still open" flag. Output is byte-identical
/// to [`Document::to_xml`](crate::Document::to_xml).
#[derive(Debug)]
pub struct XmlWriter<W: Write> {
    out: W,
    /// A `<name …` start tag has been written but not yet closed with `>`
    /// (content arrived) or `/>` (the element ended empty).
    tag_open: bool,
}

impl<W: Write> XmlWriter<W> {
    /// A compact writer over `out`.
    pub fn new(out: W) -> Self {
        XmlWriter {
            out,
            tag_open: false,
        }
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn close_open_tag(&mut self) -> io::Result<()> {
        if self.tag_open {
            self.out.write_all(b">")?;
            self.tag_open = false;
        }
        Ok(())
    }
}

impl<W: Write> XmlSink for XmlWriter<W> {
    fn start_element(&mut self, name: &str) -> io::Result<()> {
        self.close_open_tag()?;
        self.out.write_all(b"<")?;
        self.out.write_all(name.as_bytes())?;
        self.tag_open = true;
        Ok(())
    }

    fn attr(&mut self, name: &str, value: &str) -> io::Result<()> {
        debug_assert!(self.tag_open, "attr outside an open start tag");
        self.out.write_all(b" ")?;
        self.out.write_all(name.as_bytes())?;
        self.out.write_all(b"=\"")?;
        write_attr_escaped(&mut self.out, value)?;
        self.out.write_all(b"\"")
    }

    fn text(&mut self, text: &str) -> io::Result<()> {
        self.close_open_tag()?;
        write_text_escaped(&mut self.out, text)
    }

    fn end_element(&mut self, name: &str) -> io::Result<()> {
        if self.tag_open {
            self.tag_open = false;
            self.out.write_all(b"/>")
        } else {
            self.out.write_all(b"</")?;
            self.out.write_all(name.as_bytes())?;
            self.out.write_all(b">")
        }
    }
}

/// One buffered element of a [`PrettyXmlWriter`] top-level subtree.
#[derive(Debug)]
struct BufElem {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<BufChild>,
}

#[derive(Debug)]
enum BufChild {
    Elem(usize),
    Text(String),
}

/// Pretty (two-space indented) writer. Layout rules match
/// [`Document::to_pretty_xml`](crate::Document::to_pretty_xml) exactly:
/// empty elements are `<name/>`, an element whose only child is text stays
/// on one line, mixed content is serialized compactly (whitespace inside
/// it is significant), and everything else indents its children.
///
/// Those rules require knowing an element's full content before choosing
/// its layout, so this writer buffers events per top-level element and
/// renders when that element closes; memory is bounded by the largest
/// top-level subtree, not the document.
#[derive(Debug)]
pub struct PrettyXmlWriter<W: Write> {
    out: W,
    /// Arena of buffered elements for the currently open top-level subtree.
    elems: Vec<BufElem>,
    /// Indices of currently open elements (outermost first).
    stack: Vec<usize>,
}

impl<W: Write> PrettyXmlWriter<W> {
    /// A pretty writer over `out`.
    pub fn new(out: W) -> Self {
        PrettyXmlWriter {
            out,
            elems: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> XmlSink for PrettyXmlWriter<W> {
    fn start_element(&mut self, name: &str) -> io::Result<()> {
        let idx = self.elems.len();
        self.elems.push(BufElem {
            name: name.to_owned(),
            attrs: Vec::new(),
            children: Vec::new(),
        });
        if let Some(&parent) = self.stack.last() {
            self.elems[parent].children.push(BufChild::Elem(idx));
        }
        self.stack.push(idx);
        Ok(())
    }

    fn attr(&mut self, name: &str, value: &str) -> io::Result<()> {
        let &open = self.stack.last().expect("attr outside an open element");
        self.elems[open]
            .attrs
            .push((name.to_owned(), value.to_owned()));
        Ok(())
    }

    fn text(&mut self, text: &str) -> io::Result<()> {
        match self.stack.last() {
            Some(&open) => {
                self.elems[open]
                    .children
                    .push(BufChild::Text(text.to_owned()));
                Ok(())
            }
            // Top-level text renders immediately: no element's layout
            // depends on it.
            None => {
                write_text_escaped(&mut self.out, text)?;
                self.out.write_all(b"\n")
            }
        }
    }

    fn end_element(&mut self, _name: &str) -> io::Result<()> {
        let idx = self.stack.pop().expect("end_element without start");
        if self.stack.is_empty() {
            render_pretty(&self.elems, idx, 0, &mut self.out)?;
            self.elems.clear();
        }
        Ok(())
    }
}

fn write_indent<W: Write>(out: &mut W, depth: usize) -> io::Result<()> {
    for _ in 0..depth {
        out.write_all(b"  ")?;
    }
    Ok(())
}

fn write_open_tag<W: Write>(elems: &[BufElem], idx: usize, out: &mut W) -> io::Result<()> {
    let e = &elems[idx];
    out.write_all(b"<")?;
    out.write_all(e.name.as_bytes())?;
    for (k, v) in &e.attrs {
        out.write_all(b" ")?;
        out.write_all(k.as_bytes())?;
        out.write_all(b"=\"")?;
        write_attr_escaped(out, v)?;
        out.write_all(b"\"")?;
    }
    Ok(())
}

fn render_pretty<W: Write>(
    elems: &[BufElem],
    idx: usize,
    depth: usize,
    out: &mut W,
) -> io::Result<()> {
    write_indent(out, depth)?;
    write_open_tag(elems, idx, out)?;
    let e = &elems[idx];
    if e.children.is_empty() {
        return out.write_all(b"/>\n");
    }
    let single_text = matches!(e.children.as_slice(), [BufChild::Text(_)]);
    let any_text = e.children.iter().any(|c| matches!(c, BufChild::Text(_)));
    if single_text || any_text {
        // Single text child inline; mixed content compact — either way the
        // content is serialized without added whitespace.
        out.write_all(b">")?;
        for c in &e.children {
            render_compact(elems, c, out)?;
        }
    } else {
        out.write_all(b">\n")?;
        for c in &e.children {
            match c {
                BufChild::Elem(i) => render_pretty(elems, *i, depth + 1, out)?,
                BufChild::Text(_) => unreachable!("any_text checked above"),
            }
        }
        write_indent(out, depth)?;
    }
    out.write_all(b"</")?;
    out.write_all(e.name.as_bytes())?;
    out.write_all(b">\n")
}

fn render_compact<W: Write>(elems: &[BufElem], child: &BufChild, out: &mut W) -> io::Result<()> {
    match child {
        BufChild::Text(t) => write_text_escaped(out, t),
        BufChild::Elem(i) => {
            write_open_tag(elems, *i, out)?;
            let e = &elems[*i];
            if e.children.is_empty() {
                return out.write_all(b"/>");
            }
            out.write_all(b">")?;
            for c in &e.children {
                render_compact(elems, c, out)?;
            }
            out.write_all(b"</")?;
            out.write_all(e.name.as_bytes())?;
            out.write_all(b">")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(sink: &mut impl XmlSink) -> io::Result<()> {
        sink.start_element("a")?;
        sink.attr("x", "1\"<")?;
        sink.start_element("b")?;
        sink.text("hi & bye")?;
        sink.end_element("b")?;
        sink.start_element("c")?;
        sink.end_element("c")?;
        sink.end_element("a")
    }

    #[test]
    fn compact_writer_streams_events() {
        let mut w = XmlWriter::new(Vec::new());
        events(&mut w).unwrap();
        assert_eq!(
            String::from_utf8(w.into_inner()).unwrap(),
            "<a x=\"1&quot;&lt;\"><b>hi &amp; bye</b><c/></a>"
        );
    }

    #[test]
    fn pretty_writer_matches_layout_rules() {
        let mut w = PrettyXmlWriter::new(Vec::new());
        events(&mut w).unwrap();
        assert_eq!(
            String::from_utf8(w.into_inner()).unwrap(),
            "<a x=\"1&quot;&lt;\">\n  <b>hi &amp; bye</b>\n  <c/>\n</a>\n"
        );
    }

    /// An `io::Write` that fails after `n` successful byte writes.
    struct FailAfter {
        left: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.left == 0 {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "sink full"));
            }
            let n = buf.len().min(self.left);
            self.left -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn compact_writer_surfaces_io_errors() {
        let mut w = XmlWriter::new(FailAfter { left: 3 });
        let err = events(&mut w).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }
}
