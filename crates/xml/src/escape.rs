//! Escaping and name-validity helpers shared by the parser and serializers.
//!
//! The streaming [`write_text_escaped`] / [`write_attr_escaped`] functions
//! are the **only** escaping implementation; the `String`-returning
//! [`escape_text`] / [`escape_attr`] are wrappers over them, so every
//! serializer — arena, streaming, XSLT — shares one code path.

use std::io;

/// The entity replacement for `b` in element content, if it needs one.
fn text_escape(b: u8) -> Option<&'static str> {
    match b {
        b'&' => Some("&amp;"),
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        _ => None,
    }
}

/// The entity replacement for `b` inside a double-quoted attribute value,
/// if it needs one (quotes and tab/newline on top of the text set, so
/// values round-trip through attribute-value normalization).
fn attr_escape(b: u8) -> Option<&'static str> {
    match b {
        b'"' => Some("&quot;"),
        b'\n' => Some("&#10;"),
        b'\t' => Some("&#9;"),
        _ => text_escape(b),
    }
}

/// Writes `s` to `out`, escaped with `escape`. Unescaped runs are written
/// whole; multi-byte UTF-8 sequences never contain the (ASCII) escaped
/// bytes, so scanning bytes is safe.
fn write_escaped<W: io::Write + ?Sized>(
    out: &mut W,
    s: &str,
    escape: fn(u8) -> Option<&'static str>,
) -> io::Result<()> {
    let bytes = s.as_bytes();
    let mut run = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if let Some(rep) = escape(b) {
            if run < i {
                out.write_all(&bytes[run..i])?;
            }
            out.write_all(rep.as_bytes())?;
            run = i + 1;
        }
    }
    out.write_all(&bytes[run..])
}

/// Streams `s` escaped for use as element content into `out`.
pub fn write_text_escaped<W: io::Write + ?Sized>(out: &mut W, s: &str) -> io::Result<()> {
    write_escaped(out, s, text_escape)
}

/// Streams `s` escaped for use inside a double-quoted attribute value
/// into `out`.
pub fn write_attr_escaped<W: io::Write + ?Sized>(out: &mut W, s: &str) -> io::Result<()> {
    write_escaped(out, s, attr_escape)
}

/// Escapes character data for use as element content.
pub fn escape_text(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    write_text_escaped(&mut out, s).expect("Vec<u8> writes cannot fail");
    String::from_utf8(out).expect("escaping preserves UTF-8")
}

/// Escapes character data for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = Vec::with_capacity(s.len());
    write_attr_escaped(&mut out, s).expect("Vec<u8> writes cannot fail");
    String::from_utf8(out).expect("escaping preserves UTF-8")
}

/// True for characters that may start an XML name.
///
/// This accepts the pragmatic subset used by the paper's examples
/// (letters, underscore, and `:` for prefixed names like `xsl:template`).
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// True for characters that may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates an XML name (element or attribute).
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_minimally() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("\"quotes'fine\""), "\"quotes'fine\"");
    }

    #[test]
    fn escapes_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn name_validity() {
        assert!(is_valid_name("metro"));
        assert!(is_valid_name("xsl:template"));
        assert!(is_valid_name("_a-b.c2"));
        assert!(!is_valid_name("2abc"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("a b"));
    }
}
