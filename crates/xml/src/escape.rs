//! Escaping and name-validity helpers shared by the parser and serializers.

/// Escapes character data for use as element content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes character data for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// True for characters that may start an XML name.
///
/// This accepts the pragmatic subset used by the paper's examples
/// (letters, underscore, and `:` for prefixed names like `xsl:template`).
pub fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

/// True for characters that may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Validates an XML name (element or attribute).
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_text_minimally() {
        assert_eq!(escape_text("a<b & c>d"), "a&lt;b &amp; c&gt;d");
        assert_eq!(escape_text("\"quotes'fine\""), "\"quotes'fine\"");
    }

    #[test]
    fn escapes_attr_quotes_and_whitespace() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("a\nb\tc"), "a&#10;b&#9;c");
    }

    #[test]
    fn name_validity() {
        assert!(is_valid_name("metro"));
        assert!(is_valid_name("xsl:template"));
        assert!(is_valid_name("_a-b.c2"));
        assert!(!is_valid_name("2abc"));
        assert!(!is_valid_name(""));
        assert!(!is_valid_name("a b"));
    }
}
