//! Arena-based XML document model.
//!
//! Nodes live in a flat `Vec` owned by the [`Document`] and are addressed by
//! the copyable [`NodeId`] newtype. This gives cheap parent/child navigation
//! (needed constantly by XPath's `parent` axis) without interior mutability
//! or reference counting.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::span::Span;

/// Identifier of a node inside a [`Document`] arena.
///
/// Ids are only meaningful for the document that created them; using an id
/// from one document with another is a logic error (it will address an
/// unrelated node or panic on out-of-bounds access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node inside the arena (useful for debug output).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root. Every document has exactly one, and it
    /// is always [`Document::root`]. It has no name and no attributes.
    Root,
    /// An element node with a tag name and ordered attributes.
    Element {
        /// Tag name, e.g. `metro`.
        name: String,
        /// Attributes in document order. Names are unique within a node.
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text(
        /// The (unescaped) character data.
        String,
    ),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeData {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    kind: NodeKind,
}

/// Source spans recorded by the parser, kept out of the node arena so
/// that `Document` equality stays purely structural: two documents with
/// the same tree compare equal regardless of where (or whether) they
/// were parsed from text.
#[derive(Debug, Clone, Default)]
struct SpanTable {
    /// Start-tag span of each element, keyed by arena index.
    nodes: HashMap<u32, Span>,
    /// Attribute *value* spans, keyed by (arena index, attribute name).
    attrs: HashMap<(u32, String), Span>,
}

impl PartialEq for SpanTable {
    fn eq(&self, _: &SpanTable) -> bool {
        true
    }
}

impl Eq for SpanTable {}

/// An XML document: a tree of elements and text under a synthetic root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<NodeData>,
    spans: SpanTable,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the synthetic root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![NodeData {
                parent: None,
                children: Vec::new(),
                kind: NodeKind::Root,
            }],
            spans: SpanTable::default(),
        }
    }

    /// Records the source span of a node (for elements: the start tag).
    pub fn set_span(&mut self, id: NodeId, span: Span) {
        self.spans.nodes.insert(id.0, span);
    }

    /// Source span of a node, if the document was parsed from text.
    pub fn span(&self, id: NodeId) -> Option<Span> {
        self.spans.nodes.get(&id.0).copied()
    }

    /// Records the source span of an attribute's *value* (the region
    /// between the quotes, before entity expansion).
    pub fn set_attr_span(&mut self, id: NodeId, name: impl Into<String>, span: Span) {
        self.spans.attrs.insert((id.0, name.into()), span);
    }

    /// Source span of an attribute value, if recorded by the parser.
    pub fn attr_span(&self, id: NodeId, name: &str) -> Option<Span> {
        self.spans.attrs.get(&(id.0, name.to_owned())).copied()
    }

    /// The synthetic document root. Its children are the top-level nodes.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes in the arena, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document contains only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    fn push(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            parent: None,
            children: Vec::new(),
            kind,
        });
        id
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: impl Into<String>) -> NodeId {
        self.push(NodeKind::Element {
            name: name.into(),
            attrs: Vec::new(),
        })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.push(NodeKind::Text(text.into()))
    }

    /// Appends `child` as the last child of `parent`.
    ///
    /// `child` must be detached (freshly created or previously detached);
    /// this is not checked and violating it corrupts sibling lists.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(self.nodes[child.index()].parent.is_none());
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// Sets (or replaces) an attribute on an element node.
    pub fn set_attr(
        &mut self,
        element: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<()> {
        let name = name.into();
        match &mut self.nodes[element.index()].kind {
            NodeKind::Element { attrs, .. } => {
                let value = value.into();
                if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                } else {
                    attrs.push((name, value));
                }
                Ok(())
            }
            _ => Err(Error::NotAnElement),
        }
    }

    /// Node kind accessor.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Element tag name, or `None` for root/text nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// True if the node is an element with the given tag name.
    pub fn is_element_named(&self, id: NodeId, tag: &str) -> bool {
        self.name(id) == Some(tag)
    }

    /// True if the node is an element (of any name).
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Element { .. })
    }

    /// True if the node is the synthetic document root.
    pub fn is_root(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Root)
    }

    /// Attributes of an element in document order; empty for other kinds.
    pub fn attrs(&self, id: NodeId) -> &[(String, String)] {
        match &self.nodes[id.index()].kind {
            NodeKind::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attrs(id)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parent node, or `None` for the root and detached nodes.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of a node in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Child *elements* of a node in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |&c| self.is_element(c))
    }

    /// The single document element, if the document has exactly one
    /// top-level element (the common well-formed case).
    pub fn document_element(&self) -> Option<NodeId> {
        let mut elems = self.child_elements(self.root());
        let first = elems.next()?;
        if elems.next().is_some() {
            None
        } else {
            Some(first)
        }
    }

    /// Concatenated text content of a node's descendants (XPath
    /// `string()`-style for element nodes; the text itself for text nodes).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(t) => out.push_str(t),
            _ => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Pre-order iterator over `id` and all its descendants.
    pub fn descendants_or_self(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Pre-order iterator over strict descendants of `id`.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: self.children(id).iter().rev().copied().collect(),
        }
    }

    /// Ancestors of `id`, nearest first, ending at the document root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            cur: self.parent(id),
        }
    }

    /// Path of element names from the document root down to `id`
    /// (exclusive of the synthetic root). Useful in diagnostics.
    pub fn path_names(&self, id: NodeId) -> Vec<String> {
        let mut names: Vec<String> = self
            .ancestors(id)
            .filter_map(|a| self.name(a).map(str::to_owned))
            .collect();
        names.reverse();
        if let Some(n) = self.name(id) {
            names.push(n.to_owned());
        }
        names
    }

    /// Number of element nodes in the document (excludes root and text).
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Element { .. }))
            .count()
    }

    /// Approximate heap bytes retained by the node arena: per-node
    /// bookkeeping plus the capacities of every name, attribute and
    /// child-list allocation. Used by the emission benchmarks to compare
    /// the materializing path's memory footprint against the streaming
    /// sink's; it is an estimate (allocator overhead is not modeled), not
    /// an accounting tool.
    pub fn heap_estimate(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<NodeData>();
        for n in &self.nodes {
            bytes += n.children.capacity() * std::mem::size_of::<NodeId>();
            match &n.kind {
                NodeKind::Element { name, attrs } => {
                    bytes += name.capacity();
                    bytes += attrs.capacity() * std::mem::size_of::<(String, String)>();
                    for (k, v) in attrs {
                        bytes += k.capacity() + v.capacity();
                    }
                }
                NodeKind::Text(t) => bytes += t.capacity(),
                NodeKind::Root => {}
            }
        }
        bytes
    }

    /// Deep-copies the subtree rooted at `src` in `src_doc` into `self`,
    /// returning the id of the copy (detached; append it where needed).
    pub fn import_subtree(&mut self, src_doc: &Document, src: NodeId) -> NodeId {
        let copy = match src_doc.kind(src) {
            NodeKind::Root => {
                // Importing a root imports a nameless wrapper; callers
                // normally import the document element instead. Represent it
                // as the children grafted under a fresh element is wrong, so
                // copy children under our own root is the caller's job; here
                // we just copy each child under a synthetic element named "".
                unreachable!("import_subtree must not be called on a Root node")
            }
            NodeKind::Element { name, attrs } => {
                let e = self.create_element(name.clone());
                for (k, v) in attrs {
                    self.set_attr(e, k.clone(), v.clone())
                        .expect("freshly created element");
                }
                e
            }
            NodeKind::Text(t) => self.create_text(t.clone()),
        };
        for &c in src_doc.children(src) {
            let cc = self.import_subtree(src_doc, c);
            self.append_child(copy, cc);
        }
        copy
    }
}

/// Pre-order traversal iterator. See [`Document::descendants_or_self`].
pub struct Descendants<'d> {
    doc: &'d Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so they pop in document order.
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Ancestor iterator. See [`Document::ancestors`].
pub struct Ancestors<'d> {
    doc: &'d Document,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.doc.parent(id);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let metro = d.create_element("metro");
        d.set_attr(metro, "metroname", "chicago").unwrap();
        let hotel = d.create_element("hotel");
        let txt = d.create_text("Palmer House");
        d.append_child(hotel, txt);
        d.append_child(metro, hotel);
        let root = d.root();
        d.append_child(root, metro);
        (d, metro, hotel, txt)
    }

    #[test]
    fn root_is_first_node() {
        let d = Document::new();
        assert!(d.is_root(d.root()));
        assert!(d.is_empty());
    }

    #[test]
    fn navigation_parent_child() {
        let (d, metro, hotel, txt) = sample();
        assert_eq!(d.parent(hotel), Some(metro));
        assert_eq!(d.parent(metro), Some(d.root()));
        assert_eq!(d.children(metro), &[hotel]);
        assert_eq!(d.children(hotel), &[txt]);
    }

    #[test]
    fn attrs_lookup_and_replace() {
        let (mut d, metro, ..) = sample();
        assert_eq!(d.attr(metro, "metroname"), Some("chicago"));
        assert_eq!(d.attr(metro, "missing"), None);
        d.set_attr(metro, "metroname", "nyc").unwrap();
        assert_eq!(d.attr(metro, "metroname"), Some("nyc"));
        assert_eq!(d.attrs(metro).len(), 1);
    }

    #[test]
    fn set_attr_on_text_fails() {
        let (mut d, .., txt) = sample();
        assert_eq!(d.set_attr(txt, "a", "b"), Err(Error::NotAnElement));
    }

    #[test]
    fn text_content_concatenates() {
        let (d, metro, ..) = sample();
        assert_eq!(d.text_content(metro), "Palmer House");
    }

    #[test]
    fn descendants_preorder() {
        let (d, metro, hotel, txt) = sample();
        let order: Vec<NodeId> = d.descendants_or_self(metro).collect();
        assert_eq!(order, vec![metro, hotel, txt]);
        let strict: Vec<NodeId> = d.descendants(metro).collect();
        assert_eq!(strict, vec![hotel, txt]);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (d, metro, hotel, ..) = sample();
        let anc: Vec<NodeId> = d.ancestors(hotel).collect();
        assert_eq!(anc, vec![metro, d.root()]);
    }

    #[test]
    fn path_names_excludes_root() {
        let (d, _, hotel, ..) = sample();
        assert_eq!(d.path_names(hotel), vec!["metro", "hotel"]);
    }

    #[test]
    fn document_element_unique() {
        let (mut d, ..) = sample();
        assert!(d.document_element().is_some());
        let extra = d.create_element("extra");
        let root = d.root();
        d.append_child(root, extra);
        assert!(d.document_element().is_none());
    }

    #[test]
    fn import_subtree_deep_copies() {
        let (src, metro, ..) = sample();
        let mut dst = Document::new();
        let copy = dst.import_subtree(&src, metro);
        let root = dst.root();
        dst.append_child(root, copy);
        assert_eq!(dst.attr(copy, "metroname"), Some("chicago"));
        assert_eq!(dst.text_content(copy), "Palmer House");
        assert_eq!(dst.element_count(), 2);
    }
}
