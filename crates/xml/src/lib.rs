//! # `xvc-xml` — XML infrastructure for the `xvc` workspace
//!
//! This crate provides the XML substrate used throughout the reproduction of
//! *"Composing XSL Transformations with XML Publishing Views"* (SIGMOD 2003):
//!
//! * an **arena-based document model** ([`Document`], [`NodeId`]) — trees are
//!   stored in a flat vector and addressed by copyable ids, avoiding
//!   reference-counted graphs entirely;
//! * a **parser** ([`parse()`]) for the XML fragment needed by the paper
//!   (elements, attributes, text, comments, processing instructions, the five
//!   predefined entities and numeric character references);
//! * **serializers** ([`Document::to_xml`], [`Document::to_pretty_xml`]),
//!   implemented over a streaming **event/sink layer** ([`XmlSink`],
//!   [`XmlWriter`], [`PrettyXmlWriter`]) that also lets producers write
//!   serialized XML straight to any `io::Write` without building a DOM;
//! * a **canonical form** ([`canon`]) with *unordered* sibling comparison —
//!   the paper explicitly excludes document order (§2.2.2 restriction (2)),
//!   so the headline equality `v'(I) = x(v(I))` is checked modulo sibling
//!   permutation and attribute order;
//! * a streaming [`builder::TreeBuilder`] used by the XML publisher and the
//!   XSLT engine to assemble result documents.
//!
//! The document always has a synthetic *document root* node (kind
//! [`NodeKind::Root`]); the paper's schema-tree queries likewise assume "a
//! unique document root is implied" (§2.1).

#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod canon;
pub mod error;
pub mod escape;
pub mod parse;
pub mod serialize;
pub mod span;
pub mod writer;

pub use arena::{Document, NodeId, NodeKind};
pub use builder::TreeBuilder;
pub use canon::{canonical_string, documents_equal_unordered, nodes_equal_unordered};
pub use error::{Error, Result};
pub use parse::parse;
pub use span::{line_col, Span, SpanInfo};
pub use writer::{PrettyXmlWriter, XmlSink, XmlWriter};
