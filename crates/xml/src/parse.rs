//! Recursive-descent XML parser.
//!
//! Accepts the fragment of XML needed for this workspace: elements,
//! attributes (single- or double-quoted), text, comments, processing
//! instructions, an optional XML declaration, the five predefined entities
//! and decimal/hex character references. Doctypes, CDATA sections and
//! namespaces-as-scoping are out of scope (prefixed names like
//! `xsl:template` are kept verbatim as names, which is exactly what the
//! stylesheet parser in `xvc-xslt` wants).
//!
//! Whitespace-only text between elements is dropped (the paper's data model
//! has no mixed content; database values surface as attributes, §2.2.2).

use crate::arena::{Document, NodeId};
use crate::error::{Error, Result};
use crate::escape::{is_name_char, is_name_start};
use crate::span::Span;

/// Parses an XML document from text.
///
/// ```
/// let doc = xvc_xml::parse("<metro metroname=\"chicago\"><hotel/></metro>").unwrap();
/// let metro = doc.document_element().unwrap();
/// assert_eq!(doc.name(metro), Some("metro"));
/// assert_eq!(doc.attr(metro, "metroname"), Some("chicago"));
/// ```
pub fn parse(input: &str) -> Result<Document> {
    let mut p = Parser {
        input,
        chars: input.char_indices().peekable(),
        doc: Document::new(),
    };
    p.parse_document()?;
    Ok(p.doc)
}

struct Parser<'a> {
    input: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    doc: Document,
}

impl<'a> Parser<'a> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn offset(&mut self) -> usize {
        self.chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.input.len())
    }

    fn bump(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn expect(&mut self, c: char, expected: &'static str) -> Result<()> {
        let offset = self.offset();
        match self.bump() {
            Some(found) if found == c => Ok(()),
            Some(found) => Err(Error::UnexpectedChar {
                found,
                offset,
                expected,
            }),
            None => Err(Error::UnexpectedEof { context: expected }),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn starts_with(&mut self, s: &str) -> bool {
        self.input[self.offset()..].starts_with(s)
    }

    fn skip_str(&mut self, s: &str) {
        for _ in s.chars() {
            self.bump();
        }
    }

    fn parse_document(&mut self) -> Result<()> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            self.skip_pi()?;
        }
        let root = self.doc.root();
        let mut saw_element = false;
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                break;
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.peek() == Some('<') {
                if saw_element {
                    return Err(Error::TrailingContent {
                        offset: self.offset(),
                    });
                }
                let elem = self.parse_element()?;
                self.doc.append_child(root, elem);
                saw_element = true;
            } else {
                return Err(Error::TrailingContent {
                    offset: self.offset(),
                });
            }
        }
        if !saw_element {
            return Err(Error::NoRootElement);
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String> {
        let offset = self.offset();
        match self.peek() {
            Some(c) if is_name_start(c) => {}
            Some(found) => {
                return Err(Error::UnexpectedChar {
                    found,
                    offset,
                    expected: "an XML name",
                })
            }
            None => return Err(Error::UnexpectedEof { context: "a name" }),
        }
        let mut name = String::new();
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            name.push(self.bump().unwrap());
        }
        Ok(name)
    }

    fn parse_element(&mut self) -> Result<NodeId> {
        let tag_start = self.offset();
        self.expect('<', "'<'")?;
        let name = self.parse_name()?;
        let elem = self.doc.create_element(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    let tag_end = self.offset();
                    self.doc.set_span(elem, Span::new(tag_start, tag_end));
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect('>', "'>' after '/'")?;
                    let tag_end = self.offset();
                    self.doc.set_span(elem, Span::new(tag_start, tag_end));
                    return Ok(elem);
                }
                Some(c) if is_name_start(c) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect('=', "'=' after attribute name")?;
                    self.skip_ws();
                    let (value, value_span) = self.parse_attr_value()?;
                    if self.doc.attr(elem, &attr_name).is_some() {
                        return Err(Error::DuplicateAttribute { name: attr_name });
                    }
                    self.doc.set_attr_span(elem, attr_name.as_str(), value_span);
                    self.doc
                        .set_attr(elem, attr_name, value)
                        .expect("elem is an element");
                }
                Some(found) => {
                    let offset = self.offset();
                    return Err(Error::UnexpectedChar {
                        found,
                        offset,
                        expected: "attribute, '>' or '/>'",
                    });
                }
                None => {
                    return Err(Error::UnexpectedEof {
                        context: "element start tag",
                    })
                }
            }
        }
        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("</") {
                self.skip_str("</");
                let close = self.parse_name()?;
                self.skip_ws();
                self.expect('>', "'>' closing tag")?;
                if close != name {
                    return Err(Error::MismatchedTag { open: name, close });
                }
                return Ok(elem);
            } else if self.peek() == Some('<') {
                let child = self.parse_element()?;
                self.doc.append_child(elem, child);
            } else if self.peek().is_none() {
                return Err(Error::UnexpectedEof {
                    context: "element content",
                });
            } else {
                let text = self.parse_text()?;
                if !text.trim().is_empty() {
                    let t = self.doc.create_text(text);
                    self.doc.append_child(elem, t);
                }
            }
        }
    }

    /// Parses a quoted attribute value, returning the unescaped text and
    /// the source span of the raw value (between the quotes).
    fn parse_attr_value(&mut self) -> Result<(String, Span)> {
        let offset = self.offset();
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            Some(found) => {
                return Err(Error::UnexpectedChar {
                    found,
                    offset,
                    expected: "quoted attribute value",
                })
            }
            None => {
                return Err(Error::UnexpectedEof {
                    context: "attribute value",
                })
            }
        };
        let value_start = self.offset();
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    let value_end = self.offset();
                    self.bump();
                    return Ok((value, Span::new(value_start, value_end)));
                }
                Some('&') => value.push(self.parse_entity()?),
                Some(_) => value.push(self.bump().unwrap()),
                None => {
                    return Err(Error::UnexpectedEof {
                        context: "attribute value",
                    })
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<String> {
        let mut text = String::new();
        loop {
            match self.peek() {
                Some('<') | None => return Ok(text),
                Some('&') => text.push(self.parse_entity()?),
                Some(_) => text.push(self.bump().unwrap()),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char> {
        self.expect('&', "'&'")?;
        let mut entity = String::new();
        loop {
            match self.bump() {
                Some(';') => break,
                Some(c) if entity.len() < 12 => entity.push(c),
                Some(_) | None => return Err(Error::UnknownEntity { entity }),
            }
        }
        match entity.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => {
                if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(Error::UnknownEntity { entity })
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or(Error::UnknownEntity { entity })
                } else {
                    Err(Error::UnknownEntity { entity })
                }
            }
        }
    }

    fn skip_comment(&mut self) -> Result<()> {
        self.skip_str("<!--");
        loop {
            if self.starts_with("-->") {
                self.skip_str("-->");
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(Error::UnexpectedEof { context: "comment" });
            }
        }
    }

    fn skip_pi(&mut self) -> Result<()> {
        self.skip_str("<?");
        loop {
            if self.starts_with("?>") {
                self.skip_str("?>");
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(Error::UnexpectedEof {
                    context: "processing instruction",
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal() {
        let d = parse("<a/>").unwrap();
        assert_eq!(d.name(d.document_element().unwrap()), Some("a"));
    }

    #[test]
    fn parses_nested_with_text() {
        let d = parse("<a><b>hi</b><c x='1'>there</c></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<_> = d.child_elements(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.text_content(kids[0]), "hi");
        assert_eq!(d.attr(kids[1], "x"), Some("1"));
    }

    #[test]
    fn drops_whitespace_only_text() {
        let d = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let a = d.document_element().unwrap();
        assert_eq!(d.children(a).len(), 2);
    }

    #[test]
    fn keeps_meaningful_text() {
        let d = parse("<a>  x  </a>").unwrap();
        let a = d.document_element().unwrap();
        assert_eq!(d.text_content(a), "  x  ");
    }

    #[test]
    fn resolves_entities() {
        let d = parse("<a v=\"&lt;&amp;&quot;&#65;&#x42;\">&gt;&apos;</a>").unwrap();
        let a = d.document_element().unwrap();
        assert_eq!(d.attr(a, "v"), Some("<&\"AB"));
        assert_eq!(d.text_content(a), ">'");
    }

    #[test]
    fn skips_declaration_comments_and_pis() {
        let d =
            parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><?pi data?><b/></a>").unwrap();
        let a = d.document_element().unwrap();
        assert_eq!(d.children(a).len(), 1);
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert_eq!(
            parse("<a></b>"),
            Err(Error::MismatchedTag {
                open: "a".into(),
                close: "b".into()
            })
        );
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert_eq!(
            parse("<a x='1' x='2'/>"),
            Err(Error::DuplicateAttribute { name: "x".into() })
        );
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(matches!(
            parse("<a/><b/>"),
            Err(Error::TrailingContent { .. })
        ));
        assert!(matches!(
            parse("<a/>junk"),
            Err(Error::TrailingContent { .. })
        ));
    }

    #[test]
    fn rejects_empty_and_eof() {
        assert_eq!(parse(""), Err(Error::NoRootElement));
        assert!(matches!(parse("<a>"), Err(Error::UnexpectedEof { .. })));
        assert!(matches!(parse("<a b="), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(matches!(
            parse("<a>&nope;</a>"),
            Err(Error::UnknownEntity { .. })
        ));
    }

    #[test]
    fn records_element_and_attr_value_spans() {
        let src = "<a>\n  <b x=\"1&lt;2\" y='z'/>\n</a>";
        let d = parse(src).unwrap();
        let a = d.document_element().unwrap();
        let b = d.child_elements(a).next().unwrap();
        // Element span covers the whole start tag.
        let span = d.span(b).unwrap();
        assert_eq!(&src[span.start..span.end], "<b x=\"1&lt;2\" y='z'/>");
        assert_eq!(d.span(a), Some(Span::new(0, 3)));
        // Attribute spans cover the raw value between the quotes.
        let x = d.attr_span(b, "x").unwrap();
        assert_eq!(&src[x.start..x.end], "1&lt;2");
        let y = d.attr_span(b, "y").unwrap();
        assert_eq!(&src[y.start..y.end], "z");
        assert_eq!(d.attr_span(b, "missing"), None);
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let parsed = parse("<a x=\"1\"/>").unwrap();
        let mut built = Document::new();
        let a = built.create_element("a");
        built.set_attr(a, "x", "1").unwrap();
        let root = built.root();
        built.append_child(root, a);
        assert_eq!(parsed, built);
    }

    #[test]
    fn parses_prefixed_names() {
        let d = parse("<xsl:template match=\"metro\"/>").unwrap();
        let e = d.document_element().unwrap();
        assert_eq!(d.name(e), Some("xsl:template"));
        assert_eq!(d.attr(e, "match"), Some("metro"));
    }
}
