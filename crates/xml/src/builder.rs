//! Streaming tree builder.
//!
//! The XML publisher (`xvc-view`) and the XSLT engine (`xvc-xslt`) assemble
//! result documents top-down while iterating over SQL result tuples or
//! template output. [`TreeBuilder`] keeps an explicit element stack so those
//! components never juggle raw [`NodeId`]s.

use crate::arena::{Document, NodeId};

/// A stack-based builder producing a [`Document`].
///
/// ```
/// use xvc_xml::TreeBuilder;
/// let mut b = TreeBuilder::new();
/// b.open("metro");
/// b.attr("metroname", "chicago");
/// b.open("hotel");
/// b.text("Palmer House");
/// b.close();
/// b.close();
/// let doc = b.finish();
/// assert_eq!(doc.to_xml(), "<metro metroname=\"chicago\"><hotel>Palmer House</hotel></metro>");
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Creates a builder positioned at the document root.
    pub fn new() -> Self {
        let doc = Document::new();
        let root = doc.root();
        TreeBuilder {
            doc,
            stack: vec![root],
        }
    }

    /// Current insertion point (the innermost open element, or the root).
    pub fn current(&self) -> NodeId {
        *self.stack.last().expect("stack never empty")
    }

    /// Opens a new element as a child of the current node and descends into
    /// it. Returns its id.
    pub fn open(&mut self, tag: impl Into<String>) -> NodeId {
        let e = self.doc.create_element(tag);
        self.doc.append_child(self.current(), e);
        self.stack.push(e);
        e
    }

    /// Adds an attribute to the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open (i.e. at the document root).
    pub fn attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let cur = self.current();
        assert!(
            !self.doc.is_root(cur),
            "attr() requires an open element, not the document root"
        );
        self.doc
            .set_attr(cur, name, value)
            .expect("open node is an element");
    }

    /// Appends a text node under the current node.
    pub fn text(&mut self, text: impl Into<String>) {
        let t = self.doc.create_text(text);
        self.doc.append_child(self.current(), t);
    }

    /// Appends an empty element (open + immediate close). Returns its id.
    pub fn leaf(&mut self, tag: impl Into<String>) -> NodeId {
        let e = self.open(tag);
        self.close();
        e
    }

    /// Deep-copies a subtree from another document under the current node.
    pub fn import(&mut self, src_doc: &Document, src: NodeId) -> NodeId {
        let copy = self.doc.import_subtree(src_doc, src);
        self.doc.append_child(self.current(), copy);
        copy
    }

    /// Closes the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close(&mut self) {
        assert!(self.stack.len() > 1, "close() without matching open()");
        self.stack.pop();
    }

    /// Depth of open elements (0 at the document root).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// Finishes building and returns the document.
    ///
    /// # Panics
    /// Panics if elements are still open, which indicates a builder bug in
    /// the caller.
    pub fn finish(self) -> Document {
        assert_eq!(
            self.stack.len(),
            1,
            "finish() with {} unclosed element(s)",
            self.stack.len() - 1
        );
        self.doc
    }

    /// Access to the document under construction (e.g. for node inspection).
    pub fn doc(&self) -> &Document {
        &self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = TreeBuilder::new();
        b.open("a");
        b.attr("x", "1");
        b.leaf("b");
        b.open("c");
        b.text("t");
        b.close();
        b.close();
        assert_eq!(b.finish().to_xml(), "<a x=\"1\"><b/><c>t</c></a>");
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut b = TreeBuilder::new();
        assert_eq!(b.depth(), 0);
        b.open("a");
        b.open("b");
        assert_eq!(b.depth(), 2);
        b.close();
        assert_eq!(b.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_elements_panics() {
        let mut b = TreeBuilder::new();
        b.open("a");
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "close() without matching open()")]
    fn close_at_root_panics() {
        let mut b = TreeBuilder::new();
        b.close();
    }

    #[test]
    fn import_copies_subtree() {
        let src = crate::parse("<x><y z=\"1\">t</y></x>").unwrap();
        let sx = src.document_element().unwrap();
        let mut b = TreeBuilder::new();
        b.open("root");
        b.import(&src, sx);
        b.close();
        assert_eq!(b.finish().to_xml(), "<root><x><y z=\"1\">t</y></x></root>");
    }

    #[test]
    fn multiple_top_level_elements() {
        let mut b = TreeBuilder::new();
        b.leaf("a");
        b.leaf("a");
        let d = b.finish();
        assert_eq!(d.to_xml(), "<a/><a/>");
        assert!(d.document_element().is_none());
    }
}
