//! XML serializers: compact (single line) and pretty (indented).

use crate::arena::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

impl Document {
    /// Serializes the whole document compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        for &c in self.children(self.root()) {
            write_compact(self, c, &mut out);
        }
        out
    }

    /// Serializes the subtree rooted at `id` compactly.
    pub fn node_to_xml(&self, id: NodeId) -> String {
        let mut out = String::new();
        if self.is_root(id) {
            for &c in self.children(id) {
                write_compact(self, c, &mut out);
            }
        } else {
            write_compact(self, id, &mut out);
        }
        out
    }

    /// Serializes the whole document with two-space indentation.
    ///
    /// Elements with a single text child are kept on one line; mixed content
    /// is serialized compactly to avoid introducing significant whitespace.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        for &c in self.children(self.root()) {
            write_pretty(self, c, 0, &mut out);
        }
        out
    }
}

fn write_open_tag(doc: &Document, id: NodeId, out: &mut String) {
    let name = doc.name(id).expect("element");
    out.push('<');
    out.push_str(name);
    for (k, v) in doc.attrs(id) {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
}

fn write_compact(doc: &Document, id: NodeId, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Root => {
            for &c in doc.children(id) {
                write_compact(doc, c, out);
            }
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Element { name, .. } => {
            write_open_tag(doc, id, out);
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in children {
                    write_compact(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn write_pretty(doc: &Document, id: NodeId, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match doc.kind(id) {
        NodeKind::Root => {
            for &c in doc.children(id) {
                write_pretty(doc, c, depth, out);
            }
        }
        NodeKind::Text(t) => {
            out.push_str(&indent);
            out.push_str(&escape_text(t));
            out.push('\n');
        }
        NodeKind::Element { name, .. } => {
            out.push_str(&indent);
            write_open_tag(doc, id, out);
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>\n");
            } else if children.len() == 1 && matches!(doc.kind(children[0]), NodeKind::Text(_)) {
                out.push('>');
                write_compact(doc, children[0], out);
                out.push_str("</");
                out.push_str(name);
                out.push_str(">\n");
            } else if children
                .iter()
                .any(|&c| matches!(doc.kind(c), NodeKind::Text(_)))
            {
                // Mixed content: compact to preserve whitespace semantics.
                out.push('>');
                for &c in children {
                    write_compact(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push_str(">\n");
            } else {
                out.push_str(">\n");
                for &c in children {
                    write_pretty(doc, c, depth + 1, out);
                }
                out.push_str(&indent);
                out.push_str("</");
                out.push_str(name);
                out.push_str(">\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse;

    #[test]
    fn compact_roundtrip() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let d = parse(src).unwrap();
        assert_eq!(d.to_xml(), src);
    }

    #[test]
    fn escapes_on_output() {
        let mut d = crate::Document::new();
        let e = d.create_element("a");
        d.set_attr(e, "v", "x\"<y").unwrap();
        let t = d.create_text("a<&b");
        d.append_child(e, t);
        let root = d.root();
        d.append_child(root, e);
        assert_eq!(d.to_xml(), "<a v=\"x&quot;&lt;y\">a&lt;&amp;b</a>");
    }

    #[test]
    fn pretty_indents_elements() {
        let d = parse("<a><b>hi</b><c><d/></c></a>").unwrap();
        let pretty = d.to_pretty_xml();
        assert_eq!(pretty, "<a>\n  <b>hi</b>\n  <c>\n    <d/>\n  </c>\n</a>\n");
    }

    #[test]
    fn pretty_output_reparses_equal() {
        let src = "<a x=\"1\"><b>hi</b><c><d y=\"2\"/></c></a>";
        let d = parse(src).unwrap();
        let d2 = parse(&d.to_pretty_xml()).unwrap();
        assert!(crate::documents_equal_unordered(&d, &d2));
    }

    #[test]
    fn node_to_xml_serializes_subtree() {
        let d = parse("<a><b>hi</b></a>").unwrap();
        let a = d.document_element().unwrap();
        let b = d.child_elements(a).next().unwrap();
        assert_eq!(d.node_to_xml(b), "<b>hi</b>");
    }
}
