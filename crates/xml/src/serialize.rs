//! XML serializers: compact (single line) and pretty (indented).
//!
//! Both are thin drivers over the event/sink layer in [`crate::writer`]:
//! a document (or subtree) is replayed as `start_element` / `attr` /
//! `text` / `end_element` events into an [`XmlSink`], and the sink decides
//! bytes and layout. This is the same sink the streaming publisher writes
//! through, so arena serialization and direct streaming cannot drift
//! apart — there is exactly one escaping and one layout implementation.

use std::io;

use crate::arena::{Document, NodeId, NodeKind};
use crate::writer::{PrettyXmlWriter, XmlSink, XmlWriter};

impl Document {
    /// Replays the whole document (every child of the root) as events
    /// into `sink`.
    pub fn emit<S: XmlSink + ?Sized>(&self, sink: &mut S) -> io::Result<()> {
        self.emit_node(self.root(), sink)
    }

    /// Replays the subtree rooted at `id` as events into `sink`. A root
    /// id replays its children (the root itself is synthetic).
    pub fn emit_node<S: XmlSink + ?Sized>(&self, id: NodeId, sink: &mut S) -> io::Result<()> {
        match self.kind(id) {
            NodeKind::Root => {
                for &c in self.children(id) {
                    self.emit_node(c, sink)?;
                }
                Ok(())
            }
            NodeKind::Text(t) => sink.text(t),
            NodeKind::Element { name, .. } => {
                sink.start_element(name)?;
                for (k, v) in self.attrs(id) {
                    sink.attr(k, v)?;
                }
                for &c in self.children(id) {
                    self.emit_node(c, sink)?;
                }
                sink.end_element(name)
            }
        }
    }

    /// Serializes the whole document compactly into `out` without
    /// building an intermediate `String`.
    pub fn write_xml<W: io::Write>(&self, out: W) -> io::Result<()> {
        self.emit(&mut XmlWriter::new(out))
    }

    /// Serializes the whole document compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        self.node_to_xml(self.root())
    }

    /// Serializes the subtree rooted at `id` compactly.
    pub fn node_to_xml(&self, id: NodeId) -> String {
        let mut w = XmlWriter::new(Vec::new());
        self.emit_node(id, &mut w)
            .expect("Vec<u8> writes cannot fail");
        String::from_utf8(w.into_inner()).expect("serialization preserves UTF-8")
    }

    /// Serializes the whole document with two-space indentation.
    ///
    /// Elements with a single text child are kept on one line; mixed content
    /// is serialized compactly to avoid introducing significant whitespace.
    pub fn to_pretty_xml(&self) -> String {
        let mut w = PrettyXmlWriter::new(Vec::new());
        self.emit(&mut w).expect("Vec<u8> writes cannot fail");
        String::from_utf8(w.into_inner()).expect("serialization preserves UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse;

    #[test]
    fn compact_roundtrip() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let d = parse(src).unwrap();
        assert_eq!(d.to_xml(), src);
    }

    #[test]
    fn escapes_on_output() {
        let mut d = crate::Document::new();
        let e = d.create_element("a");
        d.set_attr(e, "v", "x\"<y").unwrap();
        let t = d.create_text("a<&b");
        d.append_child(e, t);
        let root = d.root();
        d.append_child(root, e);
        assert_eq!(d.to_xml(), "<a v=\"x&quot;&lt;y\">a&lt;&amp;b</a>");
    }

    #[test]
    fn pretty_indents_elements() {
        let d = parse("<a><b>hi</b><c><d/></c></a>").unwrap();
        let pretty = d.to_pretty_xml();
        assert_eq!(pretty, "<a>\n  <b>hi</b>\n  <c>\n    <d/>\n  </c>\n</a>\n");
    }

    #[test]
    fn pretty_output_reparses_equal() {
        let src = "<a x=\"1\"><b>hi</b><c><d y=\"2\"/></c></a>";
        let d = parse(src).unwrap();
        let d2 = parse(&d.to_pretty_xml()).unwrap();
        assert!(crate::documents_equal_unordered(&d, &d2));
    }

    #[test]
    fn pretty_keeps_mixed_content_compact() {
        let src = "<a>pre<b>hi</b>post</a>";
        let d = parse(src).unwrap();
        assert_eq!(d.to_pretty_xml(), "<a>pre<b>hi</b>post</a>\n");
    }

    #[test]
    fn node_to_xml_serializes_subtree() {
        let d = parse("<a><b>hi</b></a>").unwrap();
        let a = d.document_element().unwrap();
        let b = d.child_elements(a).next().unwrap();
        assert_eq!(d.node_to_xml(b), "<b>hi</b>");
    }

    #[test]
    fn write_xml_streams_compact_bytes() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let d = parse(src).unwrap();
        let mut out = Vec::new();
        d.write_xml(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), src);
    }
}
