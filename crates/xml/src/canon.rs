//! Canonical, order-insensitive comparison of XML trees.
//!
//! The paper's composition explicitly does not preserve document order
//! (§2.2.2 restriction (2); §4.4 note (2) observes that pushed-down queries
//! group rather than interleave results). The correctness statement
//! `v'(I) = x(v(I))` is therefore checked with *sibling order ignored*:
//! two trees are equal iff their roots agree and their child sequences are
//! equal **as multisets** under the same relation. Attribute order is also
//! ignored, and whitespace-only text nodes are dropped.

use crate::arena::{Document, NodeId, NodeKind};
use crate::escape::{escape_attr, escape_text};

/// Computes a canonical string for the subtree rooted at `id`.
///
/// Two subtrees are unordered-equal iff their canonical strings are equal:
/// attributes are sorted by name, children are canonicalized recursively and
/// then sorted lexicographically, and whitespace-only text is dropped.
pub fn canonical_string(doc: &Document, id: NodeId) -> String {
    match doc.kind(id) {
        NodeKind::Root => {
            let mut kids = canonical_children(doc, id);
            kids.sort();
            kids.concat()
        }
        NodeKind::Text(t) => format!("#text({})", escape_text(t)),
        NodeKind::Element { name, attrs } => {
            let mut sorted_attrs: Vec<(&str, &str)> = attrs
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            sorted_attrs.sort();
            let mut out = String::new();
            out.push('<');
            out.push_str(name);
            for (k, v) in sorted_attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            out.push('>');
            let mut kids = canonical_children(doc, id);
            kids.sort();
            for k in kids {
                out.push_str(&k);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            out
        }
    }
}

fn canonical_children(doc: &Document, id: NodeId) -> Vec<String> {
    doc.children(id)
        .iter()
        .filter(|&&c| match doc.kind(c) {
            NodeKind::Text(t) => !t.trim().is_empty(),
            _ => true,
        })
        .map(|&c| canonical_string(doc, c))
        .collect()
}

/// Unordered equality of two whole documents (see module docs).
pub fn documents_equal_unordered(a: &Document, b: &Document) -> bool {
    canonical_string(a, a.root()) == canonical_string(b, b.root())
}

/// Unordered equality of two subtrees, possibly from different documents.
pub fn nodes_equal_unordered(a_doc: &Document, a: NodeId, b_doc: &Document, b: NodeId) -> bool {
    canonical_string(a_doc, a) == canonical_string(b_doc, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn eq(a: &str, b: &str) -> bool {
        documents_equal_unordered(&parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn identical_documents_equal() {
        assert!(eq("<a><b/><c/></a>", "<a><b/><c/></a>"));
    }

    #[test]
    fn sibling_order_ignored() {
        assert!(eq("<a><b/><c/></a>", "<a><c/><b/></a>"));
        assert!(eq(
            "<a><b x=\"1\"/><b x=\"2\"/></a>",
            "<a><b x=\"2\"/><b x=\"1\"/></a>"
        ));
    }

    #[test]
    fn multiset_not_set_semantics() {
        // Two copies of <b/> on one side, one on the other: NOT equal.
        assert!(!eq("<a><b/><b/></a>", "<a><b/></a>"));
    }

    #[test]
    fn attribute_order_ignored() {
        assert!(eq("<a x=\"1\" y=\"2\"/>", "<a y=\"2\" x=\"1\"/>"));
    }

    #[test]
    fn attribute_values_matter() {
        assert!(!eq("<a x=\"1\"/>", "<a x=\"2\"/>"));
        assert!(!eq("<a x=\"1\"/>", "<a/>"));
    }

    #[test]
    fn nesting_matters() {
        assert!(!eq("<a><b><c/></b></a>", "<a><b/><c/></a>"));
    }

    #[test]
    fn whitespace_only_text_ignored() {
        assert!(eq("<a>\n  <b/>\n</a>", "<a><b/></a>"));
        assert!(!eq("<a>x</a>", "<a/>"));
    }

    #[test]
    fn text_content_compared() {
        assert!(eq("<a>x</a>", "<a>x</a>"));
        assert!(!eq("<a>x</a>", "<a>y</a>"));
    }

    #[test]
    fn deep_permutation() {
        assert!(eq(
            "<r><m n=\"1\"><h s=\"5\"/><h s=\"3\"/></m><m n=\"2\"/></r>",
            "<r><m n=\"2\"/><m n=\"1\"><h s=\"3\"/><h s=\"5\"/></m></r>"
        ));
    }

    #[test]
    fn subtree_equality_across_documents() {
        let a = parse("<r><x><b/><c/></x></r>").unwrap();
        let b = parse("<q><x><c/><b/></x></q>").unwrap();
        let ax = a
            .child_elements(a.document_element().unwrap())
            .next()
            .unwrap();
        let bx = b
            .child_elements(b.document_element().unwrap())
            .next()
            .unwrap();
        assert!(nodes_equal_unordered(&a, ax, &b, bx));
    }
}
