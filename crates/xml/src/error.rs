//! Error type for XML parsing and document manipulation.

use std::fmt;

/// Result alias used throughout `xvc-xml`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or manipulating XML documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the document was complete.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A character that is not legal at this position was encountered.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Byte offset into the input.
        offset: usize,
        /// What the parser expected instead.
        expected: &'static str,
    },
    /// A closing tag did not match the innermost open element.
    MismatchedTag {
        /// Name of the element that is open.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// An XML name (element or attribute) is syntactically invalid.
    InvalidName {
        /// The offending name.
        name: String,
    },
    /// An entity reference could not be resolved.
    UnknownEntity {
        /// The entity text between `&` and `;`.
        entity: String,
    },
    /// The same attribute appears twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// Text or markup found after the document element closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
    /// The document contains no element at all.
    NoRootElement,
    /// A [`super::NodeId`] was used with an operation its node kind does not
    /// support (e.g. asking for the attributes of a text node).
    NotAnElement,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            Error::UnexpectedChar {
                found,
                offset,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at byte {offset}; expected {expected}"
            ),
            Error::MismatchedTag { open, close } => {
                write!(f, "closing tag </{close}> does not match open <{open}>")
            }
            Error::InvalidName { name } => write!(f, "invalid XML name {name:?}"),
            Error::UnknownEntity { entity } => write!(f, "unknown entity &{entity};"),
            Error::DuplicateAttribute { name } => {
                write!(f, "attribute {name:?} appears more than once")
            }
            Error::TrailingContent { offset } => {
                write!(f, "content after document element at byte {offset}")
            }
            Error::NoRootElement => write!(f, "document has no root element"),
            Error::NotAnElement => write!(f, "node is not an element"),
        }
    }
}

impl std::error::Error for Error {}
