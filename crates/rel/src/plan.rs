//! Prepared query plans: compile once, execute per parameter binding.
//!
//! The publisher evaluates each schema-tree tag query once *per parent
//! tuple* (Definition 1), so the interpreter re-classifies predicates,
//! re-derives the join order and re-resolves `$var.column` parameters on
//! every call — an N+1 planning pattern. [`prepare`] hoists all of that
//! to compile time:
//!
//! * **predicate classification** — WHERE conjuncts are split and assigned
//!   to scans (pushdown), hash-join keys, joined-prefix filters or
//!   residuals using the *same* `pub(crate)` helpers the interpreter and
//!   the EXPLAIN printer use (`split_and`, `resolvable_within`,
//!   `equi_pair_layouts`), so plan, EXPLAIN output and interpreted
//!   execution can never disagree;
//! * **join order and strategy** — fixed at compile time from
//!   catalog-derived layouts (which always equal the runtime layouts);
//! * **parameter slots** — every `$var.column` becomes a numbered slot,
//!   resolved lazily against the [`ParamEnv`] at most once per execution
//!   (the interpreter does a hash lookup per reference per row);
//! * **fused scan + pushdown** — base-table rows are filtered while
//!   scanning, so rows rejected by a pushdown predicate are never cloned
//!   (the interpreter copies the whole table first, then filters).
//!
//! [`PreparedPlan::execute`] produces the same [`Relation`] — and
//! [`PreparedPlan::execute_stats`] the same [`EvalStats`] counters — as
//! `eval_query` / `eval_query_stats` on the same input; a property test
//! in `tests/prop_plan.rs` enforces the equivalence. Queries the
//! interpreter rejects at evaluation time (duplicate aliases, ambiguous
//! unqualified columns, aggregates in WHERE) are rejected by [`prepare`]
//! instead, which is the point: a cached plan fails at publish *setup*,
//! not on the thousandth tuple.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};

use crate::ast::{AggFunc, BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::domain::{Card, CardBound};
use crate::error::{Error, Result};
use crate::eval::{
    ambiguity_from_sets, cols_set, contains_exists, equi_pair_layouts, eval_binop, item_names,
    key_of, output_columns, resolvable_within, resolve_param, split_and, AggAcc, EvalOptions,
    EvalStats, Key, Layout, ParamEnv, Relation, Scope,
};
use crate::facts::{query_cardinality, FactSet};
use crate::schema::{Catalog, TableSchema};
use crate::table::Database;
use crate::value::Value;

// ---------------------------------------------------------------------------
// Plan representation
// ---------------------------------------------------------------------------

/// A compiled scalar expression: parameters interned to slots, EXISTS
/// subqueries compiled to nested blocks. Column references keep their
/// written form and resolve through the runtime [`Scope`] chain, which
/// preserves the interpreter's correlation and ambiguity semantics.
#[derive(Debug, Clone)]
enum PExpr {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Slot(usize),
    Literal(Value),
    Binary {
        op: BinOp,
        lhs: Box<PExpr>,
        rhs: Box<PExpr>,
    },
    Not(Box<PExpr>),
    IsNull(Box<PExpr>),
    Exists(Box<PlanBlock>),
    Aggregate {
        func: AggFunc,
        arg: Option<Box<PExpr>>,
    },
}

#[derive(Debug, Clone)]
enum PlanSource {
    /// Base-table scan.
    Scan(String),
    /// Derived table: a nested compiled block.
    Derived(Box<PlanBlock>),
}

/// How a base table's rows reach the fused pushdown filter.
#[derive(Debug, Clone)]
enum Access {
    /// Read every stored row.
    FullScan,
    /// Probe the declared secondary index on `column` with the value of
    /// `key` (a literal or parameter slot), fetching candidate rows only.
    /// The originating equality stays in the pushdown list as the exact
    /// recheck, so NULL/NaN/zero-sign semantics match the scan path.
    IndexEq { column: usize, key: Box<PExpr> },
}

/// One FROM item with its compile-time classification results.
#[derive(Debug, Clone)]
struct PlanFrom {
    source: PlanSource,
    /// This item's alias-qualified column layout.
    layout: Layout,
    /// Joined layout of all items before this one (hash-probe side).
    prev_layout: Layout,
    /// Joined layout including this item (prefix-filter scope).
    joined_layout: Layout,
    /// Conjuncts resolvable within this item alone — applied during the
    /// scan (fused) or right after a derived block evaluates.
    pushdown: Vec<PExpr>,
    /// Selected access path for a base-table source (always
    /// [`Access::FullScan`] for derived tables).
    access: Access,
    /// Equi-join keys against the joined prefix, as (prev-side, this-side)
    /// expression pairs. Empty means cross product.
    join_keys: Vec<(PExpr, PExpr)>,
    /// Conjuncts that became resolvable over the joined prefix.
    prefix_filters: Vec<PExpr>,
    /// Preserved-side derived table (left-outer padding semantics).
    preserved: bool,
    /// Cardinality-driven join strategy: the joined prefix is statically
    /// bounded to at most one row, so the hash build over this item is
    /// skipped and the (at most one) prefix row filters this item's rows
    /// directly. Same rows, same order, same counters as the hash path —
    /// but no hash table is materialized.
    filter_probe: bool,
}

#[derive(Debug, Clone)]
enum PlanItem {
    Star,
    QualifiedStar(String),
    Expr(PExpr),
}

/// One compiled query block (top level, derived table or EXISTS subquery).
#[derive(Debug, Clone)]
struct PlanBlock {
    from: Vec<PlanFrom>,
    /// Conjuncts left after classification: EXISTS and outer references.
    residuals: Vec<PExpr>,
    select: Vec<PlanItem>,
    group_by: Vec<PExpr>,
    having: Option<PExpr>,
    distinct: bool,
    aggregating: bool,
    /// Full joined FROM layout (projection scope).
    layout: Layout,
    /// Output column names, precomputed.
    columns: Vec<String>,
}

/// A query compiled once against a [`Catalog`], executable any number of
/// times against databases of that catalog with varying parameter
/// bindings. Owns all of its data, so it is `Send + Sync` and can be
/// shared across publisher worker threads.
#[derive(Debug, Clone)]
pub struct PreparedPlan {
    root: PlanBlock,
    /// Interned `$var.column` parameter slots in first-reference order.
    slots: Vec<(String, String)>,
    options: EvalOptions,
    /// Set-oriented strategy for [`PreparedPlan::execute_batch`],
    /// precomputed when every slot reference is a separable top-level
    /// equality (`None` falls back to per-distinct-binding execution).
    batch: Option<BatchPlan>,
    /// A parameterized equality in the root block rides a secondary index:
    /// [`PreparedPlan::execute_batch`] then runs index-nested-loop — one
    /// indexed execution per distinct binding — instead of the shared
    /// full scan + binding hash-join, since per-binding lookups touch only
    /// matching rows while the shared pipeline reads the whole table.
    index_loop: bool,
    /// Static row-count bound for one parameter valuation, derived at
    /// prepare time from `PRIMARY KEY` constraints and equality pushdowns
    /// ([`query_cardinality`]), with its justifying fact chain.
    bound: CardBound,
    /// Caller-supplied bound on the *number of bindings* a batch will
    /// carry (the publisher's per-parent fan-out bound for the view node
    /// that owns this plan). When it proves at most one binding per
    /// batch, the shared-pipeline batch strategy is demoted to scalar
    /// execution: scanning the whole table to serve one binding does
    /// strictly more work than one filtered (or indexed) execution.
    binding_bound: Card,
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compiles `q` against `catalog` under default [`EvalOptions`].
pub fn prepare(q: &SelectQuery, catalog: &Catalog) -> Result<PreparedPlan> {
    prepare_with(q, catalog, EvalOptions::default())
}

/// [`prepare`] with explicit [`EvalOptions`]. The options are baked into
/// the plan (e.g. with `hash_joins` off no equi-keys are selected), so
/// executing it always behaves like `eval_query_with` under the same
/// options.
pub fn prepare_with(
    q: &SelectQuery,
    catalog: &Catalog,
    options: EvalOptions,
) -> Result<PreparedPlan> {
    let mut compiler = Compiler {
        catalog,
        options,
        slots: Vec::new(),
    };
    let mut root = compiler.compile_block(q)?;

    // Cardinality pass: per-item bounds drive the join strategy (a
    // provably <= 1 row joined prefix probes by filtering instead of
    // building a hash table), the total bound is kept on the plan for
    // `describe()`/`xvc explain` and the publisher's batch sizing.
    let card = query_cardinality(q, catalog, &FactSet::new());
    let mut prefix = Card::AtMostOne;
    for (i, item) in root.from.iter_mut().enumerate() {
        if i > 0 && options.hash_joins && prefix.at_most_one() && !item.join_keys.is_empty() {
            item.filter_probe = true;
        }
        prefix = prefix.times(
            card.per_item_prefix
                .get(i)
                .copied()
                .unwrap_or(Card::Unbounded),
        );
    }

    let batch = analyze_batch(&root, compiler.slots.len());
    let index_loop = batch.is_some()
        && root
            .from
            .iter()
            .any(|f| matches!(&f.access, Access::IndexEq { key, .. } if count_slots_expr(key) > 0));
    Ok(PreparedPlan {
        root,
        slots: compiler.slots,
        options,
        batch,
        index_loop,
        bound: card.total,
        binding_bound: Card::Unbounded,
    })
}

struct Compiler<'a> {
    catalog: &'a Catalog,
    options: EvalOptions,
    slots: Vec<(String, String)>,
}

impl Compiler<'_> {
    fn slot(&mut self, var: &str, column: &str) -> usize {
        if let Some(i) = self.slots.iter().position(|(v, c)| v == var && c == column) {
            return i;
        }
        self.slots.push((var.to_owned(), column.to_owned()));
        self.slots.len() - 1
    }

    fn compile_expr(&mut self, e: &ScalarExpr) -> Result<PExpr> {
        Ok(match e {
            ScalarExpr::Column { qualifier, name } => PExpr::Column {
                qualifier: qualifier.clone(),
                name: name.clone(),
            },
            ScalarExpr::Param { var, column } => PExpr::Slot(self.slot(var, column)),
            ScalarExpr::Literal(v) => PExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, lhs, rhs } => PExpr::Binary {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs)?),
                rhs: Box::new(self.compile_expr(rhs)?),
            },
            ScalarExpr::Not(i) => PExpr::Not(Box::new(self.compile_expr(i)?)),
            ScalarExpr::IsNull(i) => PExpr::IsNull(Box::new(self.compile_expr(i)?)),
            ScalarExpr::Exists(q) => PExpr::Exists(Box::new(self.compile_block(q)?)),
            ScalarExpr::Aggregate { func, arg } => PExpr::Aggregate {
                func: *func,
                arg: match arg {
                    Some(a) => Some(Box::new(self.compile_expr(a)?)),
                    None => None,
                },
            },
        })
    }

    /// Mirrors `eval::eval_scoped_opt`'s per-evaluation classification,
    /// against catalog-derived layouts (which the runtime layouts always
    /// equal). The check order matches the interpreter so the same invalid
    /// query surfaces the same class of error.
    fn compile_block(&mut self, q: &SelectQuery) -> Result<PlanBlock> {
        // Alias uniqueness.
        {
            let mut seen = HashSet::new();
            for t in &q.from {
                if !seen.insert(t.binding_name().to_owned()) {
                    return Err(Error::DuplicateAlias {
                        alias: t.binding_name().to_owned(),
                    });
                }
            }
        }

        // Static per-item column layouts. Unknown tables and malformed
        // derived select lists error here, like the interpreter's
        // `from_item_columns` pass inside its ambiguity check.
        let mut item_layouts: Vec<Layout> = Vec::new();
        let mut sets: Vec<HashSet<String>> = Vec::new();
        for t in &q.from {
            let alias = t.binding_name().to_owned();
            let cols = match t {
                TableRef::Named { name, .. } => self.catalog.get(name)?.column_names(),
                TableRef::Derived { query, .. } => output_columns(query, self.catalog)?,
            };
            sets.push(cols.iter().cloned().collect());
            item_layouts.push(cols.into_iter().map(|c| (alias.clone(), c)).collect());
        }
        ambiguity_from_sets(q, &sets)?;

        let mut conjuncts: Vec<&ScalarExpr> = Vec::new();
        if let Some(w) = &q.where_clause {
            split_and(w, &mut conjuncts);
        }
        let mut applied = vec![false; conjuncts.len()];

        let mut from = Vec::new();
        let mut full: Layout = Layout::new();
        let mut seen_aliases: Vec<String> = Vec::new();
        for (idx, t) in q.from.iter().enumerate() {
            let alias = t.binding_name().to_owned();
            let layout = item_layouts[idx].clone();
            let this_cols = cols_set(&layout);

            let source = match t {
                TableRef::Named { name, .. } => PlanSource::Scan(name.clone()),
                TableRef::Derived { query, .. } => {
                    PlanSource::Derived(Box::new(self.compile_block(query)?))
                }
            };

            let mut pushdown = Vec::new();
            for (i, c) in conjuncts.iter().enumerate() {
                if applied[i] || contains_exists(c) || c.contains_aggregate() {
                    continue;
                }
                if resolvable_within(c, std::slice::from_ref(&alias), &this_cols) {
                    pushdown.push(self.compile_expr(c)?);
                    applied[i] = true;
                }
            }

            // Access-path selection: a pushed-down `col = literal/slot`
            // equality on an indexed column turns the scan into an index
            // lookup. The equality stays in `pushdown` as the recheck.
            let mut access = Access::FullScan;
            if self.options.use_indexes {
                if let TableRef::Named { name, .. } = t {
                    access = select_index_access(self.catalog.get(name)?, &pushdown);
                }
            }

            let mut join_keys = Vec::new();
            if idx > 0 && self.options.hash_joins {
                for (i, c) in conjuncts.iter().enumerate() {
                    if applied[i] {
                        continue;
                    }
                    if let Some((l, r)) = equi_pair_layouts(c, &full, &layout) {
                        join_keys.push((self.compile_expr(&l)?, self.compile_expr(&r)?));
                        applied[i] = true;
                    }
                }
            }

            let prev_layout = full.clone();
            full.extend(layout.iter().cloned());
            seen_aliases.push(alias);
            let full_cols = cols_set(&full);

            let mut prefix_filters = Vec::new();
            for (i, c) in conjuncts.iter().enumerate() {
                if applied[i] || contains_exists(c) || c.contains_aggregate() {
                    continue;
                }
                if resolvable_within(c, &seen_aliases, &full_cols) {
                    prefix_filters.push(self.compile_expr(c)?);
                    applied[i] = true;
                }
            }

            from.push(PlanFrom {
                source,
                layout,
                prev_layout,
                joined_layout: full.clone(),
                pushdown,
                access,
                join_keys,
                prefix_filters,
                preserved: matches!(
                    t,
                    TableRef::Derived {
                        preserved: true,
                        ..
                    }
                ),
                filter_probe: false,
            });
        }

        let mut residuals = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if applied[i] {
                continue;
            }
            if c.contains_aggregate() {
                return Err(Error::MisplacedAggregate);
            }
            residuals.push(self.compile_expr(c)?);
        }

        let mut columns = Vec::new();
        let mut select = Vec::new();
        for (i, item) in q.select.iter().enumerate() {
            columns.extend(item_names(item, &full, i)?);
            select.push(match item {
                SelectItem::Star => PlanItem::Star,
                SelectItem::QualifiedStar(qual) => PlanItem::QualifiedStar(qual.clone()),
                SelectItem::Expr { expr, .. } => PlanItem::Expr(self.compile_expr(expr)?),
            });
        }
        let group_by = q
            .group_by
            .iter()
            .map(|g| self.compile_expr(g))
            .collect::<Result<Vec<_>>>()?;
        let having = q
            .having
            .as_ref()
            .map(|h| self.compile_expr(h))
            .transpose()?;

        Ok(PlanBlock {
            from,
            residuals,
            select,
            group_by,
            having,
            distinct: q.distinct,
            aggregating: q.is_aggregating(),
            layout: full,
            columns,
        })
    }
}

/// Picks an index access path from the compiled pushdowns: a
/// `col = literal` / `col = $slot` equality (either operand order) whose
/// column carries a declared index. Among candidates, an equality on a
/// single-column `PRIMARY KEY` wins (the cardinality domain proves such a
/// lookup fetches at most one row); otherwise the first candidate in
/// pushdown order is kept. Table column names are unique, so the column
/// resolves uniquely within the item; richer key expressions are skipped
/// because the key must evaluate without a row in scope.
fn select_index_access(schema: &TableSchema, pushdown: &[PExpr]) -> Access {
    let pk = schema.primary_key();
    let single_pk = (pk.len() == 1).then(|| pk[0].to_owned());
    let mut first: Option<Access> = None;
    for p in pushdown {
        let PExpr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = p
        else {
            continue;
        };
        for (col, key) in [(lhs, rhs), (rhs, lhs)] {
            let PExpr::Column { name, .. } = col.as_ref() else {
                continue;
            };
            if schema.index_on(name).is_none()
                || !matches!(key.as_ref(), PExpr::Literal(_) | PExpr::Slot(_))
            {
                continue;
            }
            if let Some(column) = schema.column_index(name) {
                let access = Access::IndexEq {
                    column,
                    key: key.clone(),
                };
                if single_pk.as_deref() == Some(name.as_str()) {
                    return access; // unique: at most one row fetched
                }
                if first.is_none() {
                    first = Some(access);
                }
            }
        }
    }
    first.unwrap_or(Access::FullScan)
}

// ---------------------------------------------------------------------------
// Batch (set-oriented) analysis
// ---------------------------------------------------------------------------

/// How one deferred equality's row side is computed.
#[derive(Debug, Clone)]
enum BatchSide {
    /// Index into the root block's joined layout.
    Col(usize),
    /// A constant.
    Lit(Value),
}

/// One `row-expr = $var.column` equality lifted out of the shared pipeline
/// and into the binding hash-join.
#[derive(Debug, Clone)]
struct BatchKeySpec {
    row: BatchSide,
    slot: usize,
    /// The slot was written on the left (`$m.x = col`); preserved so the
    /// post-hash recheck evaluates operands in the scalar order.
    slot_first: bool,
}

/// Precomputed set-oriented strategy: the root block with every slot
/// equality removed (so it runs once, binding-free), plus the deferred
/// keys that hash-join its rows back to the binding relation.
#[derive(Debug, Clone)]
struct BatchPlan {
    stripped: PlanBlock,
    keys: Vec<BatchKeySpec>,
}

/// Decides whether the plan is eligible for the shared-pipeline batch
/// strategy: every `$var.column` reference in the *entire* plan must be a
/// top-level `column = $slot` (or `literal = $slot`) conjunct assigned to
/// a root-block scan pushdown or prefix filter. Preserved (left-outer)
/// derived tables capture their baseline *after* pushdown, so their
/// presence disables the rewrite.
fn analyze_batch(root: &PlanBlock, n_slots: usize) -> Option<BatchPlan> {
    if n_slots == 0 || root.from.iter().any(|f| f.preserved) {
        return None;
    }
    // (from idx, in-pushdown?, conjunct idx) of every separable equality.
    let mut take: Vec<(usize, bool, usize)> = Vec::new();
    let mut keys = Vec::new();
    for (fi, item) in root.from.iter().enumerate() {
        let offset = item.prev_layout.len();
        for (ci, c) in item.pushdown.iter().enumerate() {
            if let Some(k) = slot_equality(c, &item.layout, offset) {
                keys.push(k);
                take.push((fi, true, ci));
            }
        }
        for (ci, c) in item.prefix_filters.iter().enumerate() {
            if let Some(k) = slot_equality(c, &item.joined_layout, 0) {
                keys.push(k);
                take.push((fi, false, ci));
            }
        }
    }
    // Sound only if those equalities are the plan's ONLY slot references
    // (each carries exactly one): a slot surviving anywhere else —
    // residuals, nested blocks, projections — still needs per-binding
    // evaluation.
    if keys.is_empty() || count_slots_block(root) != keys.len() {
        return None;
    }
    let mut stripped = root.clone();
    for (fi, item) in stripped.from.iter_mut().enumerate() {
        let mut i = 0;
        item.pushdown.retain(|_| {
            let hit = take.contains(&(fi, true, i));
            i += 1;
            !hit
        });
        let mut i = 0;
        item.prefix_filters.retain(|_| {
            let hit = take.contains(&(fi, false, i));
            i += 1;
            !hit
        });
        // The stripped pipeline runs binding-free; an access path keyed on
        // a slot would hit UnboundParameter, so it reverts to a full scan.
        if matches!(&item.access, Access::IndexEq { key, .. } if count_slots_expr(key) > 0) {
            item.access = Access::FullScan;
        }
        // The <= 1 row prefix bound was justified by the (now removed)
        // slot pins; the shared pipeline's prefix carries every binding's
        // rows, so it joins by hash like any unbounded prefix.
        item.filter_probe = false;
    }
    Some(BatchPlan { stripped, keys })
}

fn slot_equality(c: &PExpr, layout: &Layout, offset: usize) -> Option<BatchKeySpec> {
    let PExpr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = c
    else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (PExpr::Slot(s), other) => row_side(other, layout, offset).map(|row| BatchKeySpec {
            row,
            slot: *s,
            slot_first: true,
        }),
        (other, PExpr::Slot(s)) => row_side(other, layout, offset).map(|row| BatchKeySpec {
            row,
            slot: *s,
            slot_first: false,
        }),
        _ => None,
    }
}

/// Statically resolves the non-slot side of a candidate equality. A column
/// must resolve uniquely in the scope layout the conjunct executes under;
/// ambiguity (which the scalar path reports at runtime) disables batching
/// so the scalar path stays the one reporting it.
fn row_side(e: &PExpr, layout: &Layout, offset: usize) -> Option<BatchSide> {
    match e {
        PExpr::Literal(v) => Some(BatchSide::Lit(v.clone())),
        PExpr::Column { qualifier, name } => {
            let mut found = None;
            for (i, (q, n)) in layout.iter().enumerate() {
                let qual_ok = match qualifier {
                    Some(qq) => qq == q,
                    None => true,
                };
                if n == name && qual_ok {
                    if found.is_some() {
                        return None;
                    }
                    found = Some(i);
                }
            }
            found.map(|i| BatchSide::Col(offset + i))
        }
        _ => None,
    }
}

fn count_slots_block(b: &PlanBlock) -> usize {
    let mut n = 0;
    for item in &b.from {
        if let PlanSource::Derived(child) = &item.source {
            n += count_slots_block(child);
        }
        for e in &item.pushdown {
            n += count_slots_expr(e);
        }
        for (l, r) in &item.join_keys {
            n += count_slots_expr(l) + count_slots_expr(r);
        }
        for e in &item.prefix_filters {
            n += count_slots_expr(e);
        }
    }
    for e in &b.residuals {
        n += count_slots_expr(e);
    }
    for item in &b.select {
        if let PlanItem::Expr(e) = item {
            n += count_slots_expr(e);
        }
    }
    for e in &b.group_by {
        n += count_slots_expr(e);
    }
    if let Some(h) = &b.having {
        n += count_slots_expr(h);
    }
    n
}

fn count_slots_expr(e: &PExpr) -> usize {
    match e {
        PExpr::Slot(_) => 1,
        PExpr::Column { .. } | PExpr::Literal(_) => 0,
        PExpr::Binary { lhs, rhs, .. } => count_slots_expr(lhs) + count_slots_expr(rhs),
        PExpr::Not(i) | PExpr::IsNull(i) => count_slots_expr(i),
        PExpr::Exists(b) => count_slots_block(b),
        PExpr::Aggregate { arg, .. } => arg.as_ref().map_or(0, |a| count_slots_expr(a)),
    }
}

/// `key_of` with negative zero folded onto positive zero: `sql_cmp` treats
/// `-0.0` and `0.0` as equal, so the binding hash-join must too. (`Int`
/// and `Float` already unify — both hash through `f64` bits.)
fn batch_key_of(v: &Value) -> Key {
    match v {
        Value::Float(f) if *f == 0.0 => Key::Num(0f64.to_bits()),
        _ => key_of(v),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl PreparedPlan {
    /// Output column names (known without executing).
    pub fn columns(&self) -> &[String] {
        &self.root.columns
    }

    /// The `$var.column` parameter slots this plan reads, in
    /// first-reference order. A result memo keyed on these values (and
    /// nothing else) is sound: two environments agreeing on every slot
    /// produce identical results.
    pub fn slots(&self) -> &[(String, String)] {
        &self.slots
    }

    /// The [`EvalOptions`] the plan was compiled under.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// Static bound on the rows one execution can produce (per parameter
    /// valuation), with the fact chain that justifies it. Derived at
    /// prepare time; an over-approximation, never an undercount.
    pub fn bound(&self) -> &CardBound {
        &self.bound
    }

    /// The caller-declared bound on bindings per batch
    /// (see [`PreparedPlan::with_binding_bound`]).
    pub fn binding_bound(&self) -> Card {
        self.binding_bound
    }

    /// Declares a static bound on how many parameter environments any
    /// [`PreparedPlan::execute_batch`] call will carry — the publisher's
    /// per-parent fan-out bound for the view node that owns this plan.
    /// When the bound proves at most one binding, the shared-pipeline
    /// batch strategy is skipped in favour of per-binding execution
    /// (which keeps pushdowns and index access paths keyed on the
    /// binding's slots); rows and row order are unaffected. Defaults to
    /// [`Card::Unbounded`], which preserves the heuristic behaviour.
    #[must_use]
    pub fn with_binding_bound(mut self, bound: Card) -> Self {
        self.binding_bound = bound;
        self
    }

    /// Executes the plan, producing the same [`Relation`] as
    /// `eval_query_with` on the source query under the plan's options.
    pub fn execute(&self, db: &Database, env: &ParamEnv) -> Result<Relation> {
        let stats = Cell::new(EvalStats::default());
        self.run(db, env, &stats)
    }

    /// [`PreparedPlan::execute`] that also accumulates [`EvalStats`]
    /// counters into `stats` on success, mirroring `eval_query_stats`
    /// (including the `param_queries` bump for non-empty environments).
    pub fn execute_stats(
        &self,
        db: &Database,
        env: &ParamEnv,
        stats: &mut EvalStats,
    ) -> Result<Relation> {
        let cell = Cell::new(EvalStats::default());
        let rel = self.run(db, env, &cell)?;
        let mut run = cell.get();
        if !env.is_empty() {
            run.param_queries += 1;
        }
        stats.absorb(&run);
        Ok(rel)
    }

    fn run(&self, db: &Database, env: &ParamEnv, stats: &Cell<EvalStats>) -> Result<Relation> {
        let ctx = ExecCtx {
            db,
            env,
            slots: &self.slots,
            cache: RefCell::new(vec![None; self.slots.len()]),
            options: self.options,
            stats,
        };
        exec_block(&ctx, &self.root, None)
    }

    /// Whether [`PreparedPlan::execute_batch`] can use the shared-pipeline
    /// strategy (scan once, hash-join the binding relation) rather than
    /// one execution per distinct binding.
    pub fn batchable(&self) -> bool {
        self.batch.is_some()
    }

    /// [`PreparedPlan::execute_batch_stats`] without counter reporting.
    pub fn execute_batch(&self, db: &Database, envs: &[ParamEnv]) -> Result<BatchResult> {
        let mut stats = EvalStats::default();
        self.execute_batch_stats(db, envs, &mut stats)
    }

    /// Set-oriented execution: evaluates the plan for *every* environment
    /// in `envs` at once, returning each binding's rows tagged by its
    /// index in `envs` ([`BatchResult`]). Rows, row order and errors agree
    /// with the scalar loop `envs.iter().map(|e| plan.execute(db, e))`;
    /// the first error of that loop (if any) is the error returned.
    ///
    /// Strategy: the distinct binding tuples (resolved slot values) are
    /// materialized as an in-memory binding relation. When the plan is
    /// [`batchable`](PreparedPlan::batchable), the already-fused scan
    /// pipeline runs **once** with the slot equalities removed and its
    /// rows are hash-joined against the binding relation on the interned
    /// slot columns (with an exact `=` recheck after the hash match, so
    /// NULL/NaN semantics match the scalar filters). Otherwise the plan
    /// executes once per *distinct* binding and the result is replicated
    /// to duplicate bindings. Environments whose slots cannot be resolved
    /// are executed scalarly one by one, preserving the scalar path's lazy
    /// unbound-parameter behaviour.
    ///
    /// `EvalStats` counters are defined **relative to the scalar path** —
    /// they report physical work actually done, which is the point of
    /// batching:
    ///
    /// * `queries` / `rows_scanned` etc. count one shared pipeline run
    ///   (plus nested blocks per evaluation) instead of one per binding;
    /// * the binding hash-join itself counts as one `hash_join_builds`
    ///   with `hash_join_build_rows` = pipeline rows and
    ///   `hash_join_probe_rows` = distinct resolved bindings;
    /// * `param_queries` counts distinct binding groups served (scalar
    ///   counts every non-empty-env execution, including duplicates);
    /// * `group_buckets` is bumped per binding group, like the scalar
    ///   loop, because grouping happens after regrouping.
    ///
    /// On the per-distinct fallback, counters equal the scalar loop's
    /// minus the duplicate executions. Counters are absorbed into `stats`
    /// only when the whole batch succeeds.
    pub fn execute_batch_stats(
        &self,
        db: &Database,
        envs: &[ParamEnv],
        stats: &mut EvalStats,
    ) -> Result<BatchResult> {
        struct Group {
            first: usize,
            members: Vec<usize>,
            values: Option<Vec<Value>>,
        }
        enum Mode {
            Fast {
                rows: Vec<Vec<Value>>,
                index: HashMap<Vec<Key>, Vec<usize>>,
            },
            Scalar,
        }

        if envs.is_empty() {
            return Ok(BatchResult {
                columns: self.root.columns.clone(),
                groups: Vec::new(),
            });
        }

        // 1. The binding relation: distinct resolved slot tuples in
        // first-occurrence order. Distinctness is on strict value identity
        // (same rendering the publisher's memo uses), which is sound per
        // the `slots()` contract.
        let mut order: Vec<Group> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        for (i, env) in envs.iter().enumerate() {
            let resolved: Result<Vec<Value>> = self
                .slots
                .iter()
                .map(|(v, c)| resolve_param(env, v, c))
                .collect();
            match resolved {
                Ok(values) => {
                    let mut key = String::new();
                    for v in &values {
                        key.push_str(&format!("{v:?}"));
                        key.push('\u{1f}');
                    }
                    if let Some(&g) = by_key.get(&key) {
                        order[g].members.push(i);
                    } else {
                        by_key.insert(key, order.len());
                        order.push(Group {
                            first: i,
                            members: vec![i],
                            values: Some(values),
                        });
                    }
                }
                // Unresolvable bindings stay scalar: slot resolution is
                // lazy there, so a plan that never reaches the slot still
                // succeeds, exactly like `execute` on that env.
                Err(_) => order.push(Group {
                    first: i,
                    members: vec![i],
                    values: None,
                }),
            }
        }

        let cell = Cell::new(EvalStats::default());

        // 2. Shared pipeline: one binding-free run of the stripped plan,
        // indexed by the deferred key columns.
        let mode = match &self.batch {
            // Index-nested-loop plans skip the shared pipeline: scalar
            // executions below each probe the index per distinct binding.
            // So do plans whose declared binding bound proves at most one
            // binding per batch: scanning the whole table to serve a
            // single binding does strictly more work than one execution
            // with the slot pushdowns (and any index path) intact.
            Some(bp)
                if !self.index_loop
                    && !self.binding_bound.at_most_one()
                    && order.iter().any(|g| g.values.is_some()) =>
            {
                let attempt = Cell::new(EvalStats::default());
                let empty = ParamEnv::new();
                let shared = {
                    let ctx = ExecCtx {
                        db,
                        env: &empty,
                        slots: &self.slots,
                        cache: RefCell::new(vec![None; self.slots.len()]),
                        options: self.options,
                        stats: &attempt,
                    };
                    exec_source_rows(&ctx, &bp.stripped, None)
                };
                match shared {
                    Ok(rows) => {
                        let mut index: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
                        'row: for (ri, row) in rows.iter().enumerate() {
                            let mut key = Vec::with_capacity(bp.keys.len());
                            for k in &bp.keys {
                                let v = match &k.row {
                                    BatchSide::Col(c) => &row[*c],
                                    BatchSide::Lit(v) => v,
                                };
                                if v.is_null() {
                                    continue 'row; // NULL never equi-joins
                                }
                                key.push(batch_key_of(v));
                            }
                            index.entry(key).or_default().push(ri);
                        }
                        let mut s = attempt.get();
                        s.hash_join_builds += 1;
                        s.hash_join_build_rows += rows.len() as u64;
                        s.hash_join_probe_rows +=
                            order.iter().filter(|g| g.values.is_some()).count() as u64;
                        attempt.set(s);
                        let mut c = cell.get();
                        c.absorb(&attempt.get());
                        cell.set(c);
                        Mode::Fast { rows, index }
                    }
                    // The stripped pipeline evaluated predicates on rows
                    // the per-binding filters would have dropped first;
                    // re-run scalar per group so the error (if still one)
                    // is the scalar loop's first error.
                    Err(_) => Mode::Scalar,
                }
            }
            _ => Mode::Scalar,
        };

        // 3. Per distinct binding, in first-occurrence order (which makes
        // the first failing group the scalar loop's first failing env).
        let mut results: Vec<Relation> = Vec::with_capacity(order.len());
        for group in &order {
            let rel = match (&mode, &group.values) {
                (Mode::Fast { rows, index }, Some(values)) => {
                    let bp = self.batch.as_ref().expect("fast mode implies batch plan");
                    let mut probe = Vec::with_capacity(bp.keys.len());
                    let mut null_probe = false;
                    for k in &bp.keys {
                        let v = &values[k.slot];
                        if v.is_null() {
                            null_probe = true;
                            break;
                        }
                        probe.push(batch_key_of(v));
                    }
                    let mut matched: Vec<Vec<Value>> = Vec::new();
                    if !null_probe {
                        if let Some(hits) = index.get(&probe) {
                            'cand: for &ri in hits {
                                let row = &rows[ri];
                                for k in &bp.keys {
                                    let rv = match &k.row {
                                        BatchSide::Col(c) => row[*c].clone(),
                                        BatchSide::Lit(v) => v.clone(),
                                    };
                                    let sv = values[k.slot].clone();
                                    let (l, r) = if k.slot_first { (sv, rv) } else { (rv, sv) };
                                    if !eval_binop(BinOp::Eq, &l, &r)?.is_truthy() {
                                        continue 'cand;
                                    }
                                }
                                matched.push(row.clone());
                            }
                        }
                    }
                    let rel = {
                        let empty = ParamEnv::new();
                        let ctx = ExecCtx {
                            db,
                            env: &empty,
                            slots: &self.slots,
                            cache: RefCell::new(vec![None; self.slots.len()]),
                            options: self.options,
                            stats: &cell,
                        };
                        finish_block(&ctx, &bp.stripped, &matched, None)?
                    };
                    let mut s = cell.get();
                    s.param_queries += 1; // slots resolved ⇒ env non-empty
                    cell.set(s);
                    rel
                }
                _ => {
                    let env = &envs[group.first];
                    let attempt = Cell::new(EvalStats::default());
                    let rel = self.run(db, env, &attempt)?;
                    let mut s = attempt.get();
                    if !env.is_empty() {
                        s.param_queries += 1;
                    }
                    let mut c = cell.get();
                    c.absorb(&s);
                    cell.set(c);
                    rel
                }
            };
            results.push(rel);
        }

        // 4. Regroup: every binding receives its group's rows.
        let columns = results
            .first()
            .map(|r| r.columns.clone())
            .unwrap_or_else(|| self.root.columns.clone());
        let mut groups: Vec<Vec<Vec<Value>>> = vec![Vec::new(); envs.len()];
        for (group, rel) in order.iter().zip(results.iter()) {
            for &m in &group.members {
                groups[m] = rel.rows.clone();
            }
        }
        stats.absorb(&cell.get());
        Ok(BatchResult { columns, groups })
    }

    /// Renders the compiled pipeline — slot table, per-item scan fusion
    /// and join strategy, projection, and the batch (set-oriented)
    /// operator — as indented text. This is the plan that *executes*, as
    /// opposed to `explain_query`'s static classification; `xvc explain`
    /// prints both.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "prepared plan: {} column(s)", self.root.columns.len());
        if self.slots.is_empty() {
            let _ = writeln!(out, "  slots: (none)");
        } else {
            let rendered: Vec<String> = self
                .slots
                .iter()
                .enumerate()
                .map(|(i, (v, c))| format!("s{i}=${v}.{c}"))
                .collect();
            let _ = writeln!(out, "  slots: {}", rendered.join(", "));
        }
        let _ = writeln!(out, "  cardinality: {}", self.bound);
        if self.binding_bound != Card::Unbounded {
            let _ = writeln!(out, "  binding bound: {} per batch", self.binding_bound);
        }
        describe_block(&self.root, &self.slots, 1, &mut out);
        match &self.batch {
            Some(_) if !self.index_loop && self.binding_bound.at_most_one() => {
                let _ = writeln!(
                    out,
                    "  batch: per-binding scalar execution — binding bound \
                     {} justifies skipping the shared pipeline",
                    self.binding_bound
                );
            }
            Some(bp) => {
                let keys: Vec<String> = bp
                    .keys
                    .iter()
                    .map(|k| {
                        let row = match &k.row {
                            BatchSide::Col(i) => {
                                let (q, n) = &self.root.layout[*i];
                                format!("{q}.{n}")
                            }
                            BatchSide::Lit(v) => fmt_literal(v),
                        };
                        let (var, col) = &self.slots[k.slot];
                        format!("{row} = ${var}.{col}")
                    })
                    .collect();
                if self.index_loop {
                    let _ = writeln!(
                        out,
                        "  batch: index-nested-loop — per-binding index \
                         lookups on ({})",
                        keys.join(", ")
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "  batch: set-oriented — shared pipeline once, \
                         hash-join binding relation on ({})",
                        keys.join(", ")
                    );
                }
            }
            None if self.slots.is_empty() => {
                let _ = writeln!(out, "  batch: single shared execution (no binding slots)");
            }
            None => {
                let _ = writeln!(
                    out,
                    "  batch: per-distinct-binding execution \
                     (slot predicates not separable)"
                );
            }
        }
        out
    }
}

/// Rows for a whole batch of parameter environments, tagged by the index
/// of the binding that produced them. Produced by
/// [`PreparedPlan::execute_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    columns: Vec<String>,
    /// `groups[i]` holds the rows binding `i` produced, in the scalar
    /// path's row order.
    groups: Vec<Vec<Vec<Value>>>,
}

impl BatchResult {
    /// Output column names (shared by every binding's rows).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of bindings the batch was executed for.
    pub fn bindings(&self) -> usize {
        self.groups.len()
    }

    /// True when the batch was executed over zero bindings.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The rows binding `binding` produced, in scalar row order.
    pub fn rows_for(&self, binding: usize) -> &[Vec<Value>] {
        &self.groups[binding]
    }

    /// Total rows across all bindings (duplicate bindings count their
    /// replicated rows).
    pub fn total_rows(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// All rows as `(binding index, row)` pairs, grouped by binding.
    pub fn tagged_rows(&self) -> impl Iterator<Item = (usize, &Vec<Value>)> + '_ {
        self.groups
            .iter()
            .enumerate()
            .flat_map(|(i, rows)| rows.iter().map(move |r| (i, r)))
    }

    /// One binding's rows as a standalone [`Relation`] (clones).
    pub fn relation_for(&self, binding: usize) -> Relation {
        Relation {
            columns: self.columns.clone(),
            rows: self.groups[binding].clone(),
        }
    }

    /// Consumes the batch into one [`Relation`] per binding.
    pub fn into_relations(self) -> Vec<Relation> {
        let columns = self.columns;
        self.groups
            .into_iter()
            .map(|rows| Relation {
                columns: columns.clone(),
                rows,
            })
            .collect()
    }
}

fn fmt_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("'{s}'"),
        Value::Bool(b) => b.to_string().to_uppercase(),
    }
}

fn fmt_pexpr(e: &PExpr, slots: &[(String, String)]) -> String {
    match e {
        PExpr::Column {
            qualifier: Some(q),
            name,
        } => format!("{q}.{name}"),
        PExpr::Column {
            qualifier: None,
            name,
        } => name.clone(),
        PExpr::Slot(i) => {
            let (v, c) = &slots[*i];
            format!("${v}.{c}")
        }
        PExpr::Literal(v) => fmt_literal(v),
        PExpr::Binary { op, lhs, rhs } => format!(
            "{} {} {}",
            fmt_pexpr(lhs, slots),
            op.symbol(),
            fmt_pexpr(rhs, slots)
        ),
        PExpr::Not(i) => format!("NOT ({})", fmt_pexpr(i, slots)),
        PExpr::IsNull(i) => format!("{} IS NULL", fmt_pexpr(i, slots)),
        PExpr::Exists(_) => "EXISTS (...)".to_owned(),
        PExpr::Aggregate { func, arg } => {
            let inner = match arg {
                Some(a) => fmt_pexpr(a, slots),
                None => "*".to_owned(),
            };
            format!("{func:?}({inner})").to_uppercase()
        }
    }
}

fn describe_block(block: &PlanBlock, slots: &[(String, String)], depth: usize, out: &mut String) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    for (i, item) in block.from.iter().enumerate() {
        let source = match (&item.source, &item.access) {
            (PlanSource::Scan(t), Access::FullScan) => format!("scan {t}"),
            (PlanSource::Scan(t), Access::IndexEq { column, key }) => {
                // The item layout mirrors the schema's column order, so
                // the schema position doubles as a layout position.
                format!(
                    "index lookup {t} on {} = {}",
                    item.layout[*column].1,
                    fmt_pexpr(key, slots)
                )
            }
            (PlanSource::Derived(_), _) => "derived subplan".to_owned(),
        };
        let join = if i == 0 {
            String::new()
        } else if item.join_keys.is_empty() {
            " | nested-loop (cross) join".to_owned()
        } else {
            let ks: Vec<String> = item
                .join_keys
                .iter()
                .map(|(l, r)| format!("{} = {}", fmt_pexpr(l, slots), fmt_pexpr(r, slots)))
                .collect();
            if item.filter_probe {
                format!(
                    " | filter-probe join on ({}) — joined prefix bounded \
                     to <= 1 row, hash build skipped",
                    ks.join(", ")
                )
            } else {
                format!(" | hash join on ({})", ks.join(", "))
            }
        };
        let preserved = if item.preserved {
            " | preserved (left-outer)"
        } else {
            ""
        };
        let _ = writeln!(out, "{pad}from[{i}]: {source}{join}{preserved}");
        if !item.pushdown.is_empty() {
            let ps: Vec<String> = item.pushdown.iter().map(|p| fmt_pexpr(p, slots)).collect();
            let _ = writeln!(out, "{pad}  fused pushdown: {}", ps.join(" AND "));
        }
        if !item.prefix_filters.is_empty() {
            let ps: Vec<String> = item
                .prefix_filters
                .iter()
                .map(|p| fmt_pexpr(p, slots))
                .collect();
            let _ = writeln!(out, "{pad}  prefix filter: {}", ps.join(" AND "));
        }
        if let PlanSource::Derived(child) = &item.source {
            describe_block(child, slots, depth + 1, out);
        }
    }
    if !block.residuals.is_empty() {
        let ps: Vec<String> = block
            .residuals
            .iter()
            .map(|p| fmt_pexpr(p, slots))
            .collect();
        let _ = writeln!(out, "{pad}residual: {}", ps.join(" AND "));
    }
    let mut proj = format!("{pad}project: {}", block.columns.join(", "));
    if block.aggregating {
        proj.push_str(&format!(" | group by {}", block.group_by.len()));
    }
    if block.having.is_some() {
        proj.push_str(" | having");
    }
    if block.distinct {
        proj.push_str(" | distinct");
    }
    let _ = writeln!(out, "{proj}");
}

struct ExecCtx<'a> {
    db: &'a Database,
    env: &'a ParamEnv,
    slots: &'a [(String, String)],
    /// Per-execution slot memo. Lazy, so a parameter the evaluation never
    /// reaches (short-circuits, empty inputs) is never resolved — matching
    /// the interpreter's unbound-parameter error behaviour.
    cache: RefCell<Vec<Option<Result<Value>>>>,
    options: EvalOptions,
    stats: &'a Cell<EvalStats>,
}

impl ExecCtx<'_> {
    fn bump(&self, f: impl FnOnce(&mut EvalStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn slot(&self, i: usize) -> Result<Value> {
        if let Some(r) = &self.cache.borrow()[i] {
            return r.clone();
        }
        let (var, column) = &self.slots[i];
        let r = resolve_param(self.env, var, column);
        self.cache.borrow_mut()[i] = Some(r.clone());
        r
    }
}

fn p_eval_scalar(ctx: &ExecCtx<'_>, e: &PExpr, scope: &Scope<'_>) -> Result<Value> {
    match e {
        PExpr::Column { qualifier, name } => scope.resolve(qualifier.as_deref(), name),
        PExpr::Slot(i) => ctx.slot(*i),
        PExpr::Literal(v) => Ok(v.clone()),
        PExpr::Binary { op, lhs, rhs } => {
            let l = p_eval_scalar(ctx, lhs, scope)?;
            match op {
                BinOp::And => {
                    if !l.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = p_eval_scalar(ctx, rhs, scope)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                BinOp::Or => {
                    if l.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = p_eval_scalar(ctx, rhs, scope)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                _ => {
                    let r = p_eval_scalar(ctx, rhs, scope)?;
                    eval_binop(*op, &l, &r)
                }
            }
        }
        PExpr::Not(inner) => {
            let v = p_eval_scalar(ctx, inner, scope)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        PExpr::IsNull(inner) => {
            let v = p_eval_scalar(ctx, inner, scope)?;
            Ok(Value::Bool(v.is_null()))
        }
        PExpr::Exists(block) => {
            ctx.bump(|s| s.exists_evals += 1);
            let rel = exec_block(ctx, block, Some(scope))?;
            Ok(Value::Bool(!rel.is_empty()))
        }
        PExpr::Aggregate { .. } => Err(Error::MisplacedAggregate),
    }
}

/// Mirrors `eval::eval_agg_expr`: aggregates accumulate over the group,
/// boolean connectives do *not* short-circuit, other subexpressions
/// evaluate on the group's first row (NULL columns for an empty group).
fn p_agg_expr(
    ctx: &ExecCtx<'_>,
    e: &PExpr,
    layout: &Layout,
    group: &[&Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Value> {
    match e {
        PExpr::Aggregate { func, arg } => {
            let mut acc = AggAcc::new(*func);
            for row in group {
                let scope = Scope {
                    layout,
                    row,
                    parent,
                    probe: None,
                };
                let v = match arg {
                    Some(a) => p_eval_scalar(ctx, a, &scope)?,
                    None => Value::Int(1), // COUNT(*)
                };
                acc.feed(&v)?;
            }
            Ok(acc.finish())
        }
        PExpr::Binary { op, lhs, rhs } => {
            let l = p_agg_expr(ctx, lhs, layout, group, parent)?;
            let r = p_agg_expr(ctx, rhs, layout, group, parent)?;
            match op {
                BinOp::And => Ok(Value::Bool(l.is_truthy() && r.is_truthy())),
                BinOp::Or => Ok(Value::Bool(l.is_truthy() || r.is_truthy())),
                _ => eval_binop(*op, &l, &r),
            }
        }
        PExpr::Not(inner) => {
            let v = p_agg_expr(ctx, inner, layout, group, parent)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        PExpr::IsNull(inner) => {
            let v = p_agg_expr(ctx, inner, layout, group, parent)?;
            Ok(Value::Bool(v.is_null()))
        }
        other => match group.first() {
            Some(row) => {
                let scope = Scope {
                    layout,
                    row,
                    parent,
                    probe: None,
                };
                p_eval_scalar(ctx, other, &scope)
            }
            None => match other {
                PExpr::Column { .. } => Ok(Value::Null),
                _ => {
                    let empty_layout = Layout::new();
                    let empty_row: Vec<Value> = Vec::new();
                    let scope = Scope {
                        layout: &empty_layout,
                        row: &empty_row,
                        parent,
                        probe: None,
                    };
                    p_eval_scalar(ctx, other, &scope)
                }
            },
        },
    }
}

fn exec_block(
    ctx: &ExecCtx<'_>,
    block: &PlanBlock,
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    let rows = exec_source_rows(ctx, block, parent)?;
    finish_block(ctx, block, &rows, parent)
}

/// FROM + WHERE: scans (with fused pushdown), joins, prefix filters,
/// residuals and preserved-side padding — everything up to (but excluding)
/// projection. The batch executor runs this once and projects per binding.
fn exec_source_rows(
    ctx: &ExecCtx<'_>,
    block: &PlanBlock,
    parent: Option<&Scope<'_>>,
) -> Result<Vec<Vec<Value>>> {
    ctx.bump(|s| s.queries += 1);

    let mut work: Option<Vec<Vec<Value>>> = None;
    // Preserved-side baselines: (offset, width, rows after pushdown).
    let mut baselines: Vec<(usize, usize, Vec<Vec<Value>>)> = Vec::new();

    for item in &block.from {
        let rows = match &item.source {
            PlanSource::Scan(name) => {
                let table = ctx.db.table(name)?;
                let mut out = Vec::new();
                // Index access path: fetch candidates by key, recheck
                // through the (still-present) pushdown equality. Falls
                // back to the scan when the runtime table lacks the index
                // the catalog promised (e.g. a stale plan).
                let mut via_index = false;
                if ctx.options.use_indexes {
                    if let Access::IndexEq { column, key } = &item.access {
                        if let Some(idx) = table.index_for(*column) {
                            via_index = true;
                            ctx.bump(|s| s.index_lookups += 1);
                            if !table.is_empty() {
                                // The key is a literal or slot — it needs
                                // no row in scope (parent stays reachable
                                // for correlated layouts' sake only).
                                let empty_layout = Layout::new();
                                let empty_row: Vec<Value> = Vec::new();
                                let scope = Scope {
                                    layout: &empty_layout,
                                    row: &empty_row,
                                    parent,
                                    probe: None,
                                };
                                let kv = p_eval_scalar(ctx, key, &scope)?;
                                let rids = idx.lookup(&kv);
                                ctx.bump(|s| s.rows_scanned += rids.len() as u64);
                                'rid: for &rid in rids {
                                    let row = table.fetch_row(rid);
                                    for p in &item.pushdown {
                                        let scope = Scope {
                                            layout: &item.layout,
                                            row: &row,
                                            parent,
                                            probe: None,
                                        };
                                        if !p_eval_scalar(ctx, p, &scope)?.is_truthy() {
                                            continue 'rid;
                                        }
                                    }
                                    out.push(row);
                                }
                            }
                        }
                    }
                }
                if !via_index {
                    ctx.bump(|s| s.rows_scanned += table.len() as u64);
                    // Fused scan + pushdown: evaluate the pushed-down
                    // conjuncts while streaming the stored rows, keeping
                    // survivors only.
                    'row: for row in table.scan() {
                        for p in &item.pushdown {
                            let scope = Scope {
                                layout: &item.layout,
                                row: row.as_ref(),
                                parent,
                                probe: None,
                            };
                            if !p_eval_scalar(ctx, p, &scope)?.is_truthy() {
                                continue 'row;
                            }
                        }
                        out.push(row.into_owned());
                    }
                }
                out
            }
            PlanSource::Derived(child) => {
                let rel = exec_block(ctx, child, parent)?;
                let mut rows = rel.rows;
                for p in &item.pushdown {
                    p_filter_rows(ctx, &mut rows, &item.layout, p, parent)?;
                }
                rows
            }
        };

        if item.preserved {
            baselines.push((item.prev_layout.len(), item.layout.len(), rows.clone()));
        }

        let mut joined = match work.take() {
            None => rows,
            Some(prev) => p_join(ctx, &prev, &rows, item, parent)?,
        };
        for p in &item.prefix_filters {
            p_filter_rows(ctx, &mut joined, &item.joined_layout, p, parent)?;
        }
        work = Some(joined);
    }

    // An empty FROM list yields one empty row (the rebind-guard probe
    // shape), exactly like the interpreter.
    let mut rows = work.unwrap_or_else(|| vec![Vec::new()]);

    for pred in &block.residuals {
        p_apply_residual(ctx, &mut rows, &block.layout, pred, parent)?;
    }

    // Left-outer padding for preserved derived tables.
    for (offset, width, baseline) in &baselines {
        let present: HashSet<Vec<Key>> = rows
            .iter()
            .map(|r| r[*offset..offset + width].iter().map(key_of).collect())
            .collect();
        for b in baseline {
            let key: Vec<Key> = b.iter().map(key_of).collect();
            if !present.contains(&key) {
                let mut row = vec![Value::Null; block.layout.len()];
                row[*offset..offset + width].clone_from_slice(b);
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// Projection (plain or grouped), HAVING and DISTINCT over the joined and
/// filtered source rows.
fn finish_block(
    ctx: &ExecCtx<'_>,
    block: &PlanBlock,
    rows: &[Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    let mut rel = if block.aggregating {
        p_project_grouped(ctx, block, rows, parent)?
    } else {
        p_project_plain(ctx, block, rows, parent)?
    };

    if block.distinct {
        let mut seen = HashSet::new();
        let mut kept = Vec::new();
        for row in rel.rows.drain(..) {
            let key: Vec<Key> = row.iter().map(key_of).collect();
            if seen.insert(key) {
                kept.push(row);
            }
        }
        rel.rows = kept;
    }
    Ok(rel)
}

fn p_filter_rows(
    ctx: &ExecCtx<'_>,
    rows: &mut Vec<Vec<Value>>,
    layout: &Layout,
    pred: &PExpr,
    parent: Option<&Scope<'_>>,
) -> Result<()> {
    let mut kept = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let scope = Scope {
            layout,
            row: &row,
            parent,
            probe: None,
        };
        if p_eval_scalar(ctx, pred, &scope)?.is_truthy() {
            kept.push(row);
        }
    }
    *rows = kept;
    Ok(())
}

/// Mirrors `eval::apply_residual_filter`: a probe cell detects whether the
/// first row's evaluation ever read the row scope; if not, the predicate is
/// row-independent and its result is reused (counted as cache hits).
fn p_apply_residual(
    ctx: &ExecCtx<'_>,
    rows: &mut Vec<Vec<Value>>,
    layout: &Layout,
    pred: &PExpr,
    parent: Option<&Scope<'_>>,
) -> Result<()> {
    let mut kept = Vec::with_capacity(rows.len());
    let mut cached: Option<bool> = None;
    let probe = Cell::new(false);
    for (i, row) in rows.drain(..).enumerate() {
        let keep = match cached {
            Some(b) => {
                ctx.bump(|s| s.exists_cache_hits += 1);
                b
            }
            None => {
                let scope = Scope {
                    layout,
                    row: &row,
                    parent,
                    probe: Some(&probe),
                };
                let b = p_eval_scalar(ctx, pred, &scope)?.is_truthy();
                if i == 0 && !probe.get() && ctx.options.cache_uncorrelated_exists {
                    cached = Some(b);
                }
                b
            }
        };
        if keep {
            kept.push(row);
        }
    }
    *rows = kept;
    Ok(())
}

fn p_join(
    ctx: &ExecCtx<'_>,
    prev_rows: &[Vec<Value>],
    next_rows: &[Vec<Value>],
    item: &PlanFrom,
    parent: Option<&Scope<'_>>,
) -> Result<Vec<Vec<Value>>> {
    if item.join_keys.is_empty() {
        // Cross product.
        let mut rows = Vec::with_capacity(prev_rows.len() * next_rows.len());
        for a in prev_rows {
            for b in next_rows {
                let mut row = a.clone();
                row.extend(b.iter().cloned());
                rows.push(row);
            }
        }
        ctx.bump(|s| {
            s.nested_loop_joins += 1;
            s.nested_loop_rows += rows.len() as u64;
        });
        return Ok(rows);
    }

    ctx.bump(|s| {
        s.hash_join_builds += 1;
        s.hash_join_build_rows += next_rows.len() as u64;
        s.hash_join_probe_rows += prev_rows.len() as u64;
    });

    // Cardinality-driven strategy: the joined prefix is statically <= 1
    // row, so instead of materializing a hash table over the next side,
    // its (precomputed, once per row — same evaluation counts as the
    // build) keys filter directly against the probe key. Same rows, same
    // order, same counters; no HashMap allocation.
    if item.filter_probe {
        let mut next_keys: Vec<Option<Vec<Key>>> = Vec::with_capacity(next_rows.len());
        'keys: for row in next_rows {
            let mut key = Vec::with_capacity(item.join_keys.len());
            for (_, nexpr) in &item.join_keys {
                let scope = Scope {
                    layout: &item.layout,
                    row,
                    parent,
                    probe: None,
                };
                let v = p_eval_scalar(ctx, nexpr, &scope)?;
                if v.is_null() {
                    next_keys.push(None); // NULL never equi-joins
                    continue 'keys;
                }
                key.push(key_of(&v));
            }
            next_keys.push(Some(key));
        }
        let mut rows = Vec::new();
        'fprobe: for a in prev_rows {
            let mut key = Vec::with_capacity(item.join_keys.len());
            for (pexpr, _) in &item.join_keys {
                let scope = Scope {
                    layout: &item.prev_layout,
                    row: a,
                    parent,
                    probe: None,
                };
                let v = p_eval_scalar(ctx, pexpr, &scope)?;
                if v.is_null() {
                    continue 'fprobe;
                }
                key.push(key_of(&v));
            }
            for (i, nk) in next_keys.iter().enumerate() {
                if nk.as_ref() == Some(&key) {
                    let mut row = a.clone();
                    row.extend(next_rows[i].iter().cloned());
                    rows.push(row);
                }
            }
        }
        return Ok(rows);
    }

    // Build on the next side.
    let mut index: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
    'build: for (i, row) in next_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(item.join_keys.len());
        for (_, nexpr) in &item.join_keys {
            let scope = Scope {
                layout: &item.layout,
                row,
                parent,
                probe: None,
            };
            let v = p_eval_scalar(ctx, nexpr, &scope)?;
            if v.is_null() {
                continue 'build; // NULL never equi-joins
            }
            key.push(key_of(&v));
        }
        index.entry(key).or_default().push(i);
    }

    // Probe with the prev side.
    let mut rows = Vec::new();
    'probe: for a in prev_rows {
        let mut key = Vec::with_capacity(item.join_keys.len());
        for (pexpr, _) in &item.join_keys {
            let scope = Scope {
                layout: &item.prev_layout,
                row: a,
                parent,
                probe: None,
            };
            let v = p_eval_scalar(ctx, pexpr, &scope)?;
            if v.is_null() {
                continue 'probe;
            }
            key.push(key_of(&v));
        }
        if let Some(matches) = index.get(&key) {
            for &i in matches {
                let mut row = a.clone();
                row.extend(next_rows[i].iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

fn p_project_plain(
    ctx: &ExecCtx<'_>,
    block: &PlanBlock,
    rows: &[Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        let scope = Scope {
            layout: &block.layout,
            row,
            parent,
            probe: None,
        };
        let mut out = Vec::with_capacity(block.columns.len());
        for item in &block.select {
            match item {
                PlanItem::Star => out.extend(row.iter().cloned()),
                PlanItem::QualifiedStar(qal) => {
                    for (i, (cq, _)) in block.layout.iter().enumerate() {
                        if cq == qal {
                            out.push(row[i].clone());
                        }
                    }
                }
                PlanItem::Expr(e) => out.push(p_eval_scalar(ctx, e, &scope)?),
            }
        }
        out_rows.push(out);
    }
    Ok(Relation {
        columns: block.columns.clone(),
        rows: out_rows,
    })
}

fn p_project_grouped(
    ctx: &ExecCtx<'_>,
    block: &PlanBlock,
    rows: &[Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    // Build groups in first-occurrence order.
    let mut group_order: Vec<Vec<Key>> = Vec::new();
    let mut groups: HashMap<Vec<Key>, Vec<&Vec<Value>>> = HashMap::new();
    if block.group_by.is_empty() {
        // Implicit single group, present even over empty input.
        groups.insert(Vec::new(), rows.iter().collect());
        group_order.push(Vec::new());
    } else {
        for row in rows {
            let scope = Scope {
                layout: &block.layout,
                row,
                parent,
                probe: None,
            };
            let mut key = Vec::with_capacity(block.group_by.len());
            for g in &block.group_by {
                key.push(key_of(&p_eval_scalar(ctx, g, &scope)?));
            }
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(row);
        }
    }

    ctx.bump(|s| s.group_buckets += groups.len() as u64);

    let mut out_rows = Vec::with_capacity(groups.len());
    for key in &group_order {
        let group = &groups[key];
        if let Some(h) = &block.having {
            let v = p_agg_expr(ctx, h, &block.layout, group, parent)?;
            if !v.is_truthy() {
                continue;
            }
        }
        let mut out = Vec::with_capacity(block.columns.len());
        for item in &block.select {
            match item {
                PlanItem::Star => match group.first() {
                    Some(r) => out.extend(r.iter().cloned()),
                    None => out.extend(block.layout.iter().map(|_| Value::Null)),
                },
                PlanItem::QualifiedStar(qal) => {
                    for (i, (cq, _)) in block.layout.iter().enumerate() {
                        if cq == qal {
                            match group.first() {
                                Some(r) => out.push(r[i].clone()),
                                None => out.push(Value::Null),
                            }
                        }
                    }
                }
                PlanItem::Expr(e) => out.push(p_agg_expr(ctx, e, &block.layout, group, parent)?),
            }
        }
        out_rows.push(out);
    }
    Ok(Relation {
        columns: block.columns.clone(),
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_query, eval_query_stats, NamedTuple};
    use crate::parse::parse_query;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn hotel_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "confroom",
                vec![
                    ColumnDef::new("c_id", ColumnType::Int),
                    ColumnDef::new("chotel_id", ColumnType::Int),
                    ColumnDef::new("capacity", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        for (id, hotel, cap) in [(100, 10, 300), (101, 10, 150), (102, 12, 500)] {
            db.insert(
                "confroom",
                vec![Value::Int(id), Value::Int(hotel), Value::Int(cap)],
            )
            .unwrap();
        }
        db
    }

    /// Asserts rows AND stats parity with the interpreter on `sql`.
    fn check(db: &Database, sql: &str, env: &ParamEnv) -> Relation {
        let q = parse_query(sql).unwrap();
        let mut interp_stats = EvalStats::default();
        let interp =
            eval_query_stats(db, &q, env, EvalOptions::default(), &mut interp_stats).unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let mut plan_stats = EvalStats::default();
        let prepared = plan.execute_stats(db, env, &mut plan_stats).unwrap();
        assert_eq!(prepared, interp, "relation mismatch for {sql}");
        assert_eq!(plan_stats, interp_stats, "stats mismatch for {sql}");
        prepared
    }

    fn metro_param(id: i64, name: &str) -> ParamEnv {
        let mut env = ParamEnv::new();
        env.insert(
            "m".into(),
            NamedTuple {
                columns: vec!["metroid".into(), "metroname".into()],
                values: vec![Value::Int(id), Value::Str(name.into())],
            },
        );
        env
    }

    #[test]
    fn scan_filter_join_parity() {
        let db = hotel_db();
        for sql in [
            "SELECT metroid, metroname FROM metroarea",
            "SELECT hotelname FROM hotel WHERE starrating > 4",
            "SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid",
            "SELECT hotelname, metroname FROM hotel, metroarea",
            "SELECT metroname, hotelname, capacity FROM metroarea, hotel, confroom \
             WHERE metro_id = metroid AND chotel_id = hotelid",
            "SELECT DISTINCT starrating FROM hotel",
        ] {
            check(&db, sql, &ParamEnv::new());
        }
    }

    #[test]
    fn aggregate_parity() {
        let db = hotel_db();
        for sql in [
            "SELECT chotel_id, SUM(capacity), COUNT(*) FROM confroom GROUP BY chotel_id",
            "SELECT SUM(capacity) FROM confroom",
            "SELECT SUM(capacity), COUNT(*) FROM confroom WHERE capacity > 9999",
            "SELECT chotel_id FROM confroom GROUP BY chotel_id HAVING SUM(capacity) > 400",
            "SELECT MIN(capacity), MAX(capacity), AVG(capacity) FROM confroom",
        ] {
            check(&db, sql, &ParamEnv::new());
        }
    }

    #[test]
    fn exists_parity_including_cache_counters() {
        let db = hotel_db();
        for sql in [
            "SELECT * FROM hotel WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 1)",
            "SELECT * FROM hotel WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 99)",
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM confroom WHERE chotel_id = hotelid)",
        ] {
            check(&db, sql, &ParamEnv::new());
        }
    }

    #[test]
    fn parameterized_parity_and_slots() {
        let db = hotel_db();
        let env = metro_param(1, "chicago");
        let sql = "SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4";
        let r = check(&db, sql, &env);
        assert_eq!(r.len(), 1);
        let plan = prepare(&parse_query(sql).unwrap(), &db.catalog()).unwrap();
        assert_eq!(plan.slots(), &[("m".to_owned(), "metroid".to_owned())]);
    }

    #[test]
    fn derived_table_with_params_parity() {
        let db = hotel_db();
        let env = metro_param(1, "chicago");
        let r = check(
            &db,
            "SELECT SUM(capacity), TEMP.* \
             FROM confroom, (SELECT * FROM hotel \
                             WHERE metro_id=$m.metroid AND starrating > 4) AS TEMP \
             WHERE chotel_id=TEMP.hotelid \
             GROUP BY TEMP.hotelid, TEMP.hotelname, TEMP.starrating, TEMP.metro_id",
            &env,
        );
        assert_eq!(r.rows[0][0], Value::Int(450));
    }

    #[test]
    fn preserved_derived_table_parity() {
        let db = hotel_db();
        check(
            &db,
            "SELECT COUNT(c_id), TEMP.hotelid \
             FROM confroom, OUTER (SELECT * FROM hotel) AS TEMP \
             WHERE chotel_id = TEMP.hotelid GROUP BY TEMP.hotelid",
            &ParamEnv::new(),
        );
    }

    #[test]
    fn one_plan_many_environments() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let r1 = plan.execute(&db, &metro_param(1, "chicago")).unwrap();
        let r2 = plan.execute(&db, &metro_param(2, "nyc")).unwrap();
        assert_eq!(r1.len(), 2);
        assert_eq!(r2.len(), 1);
        assert_eq!(r2.rows[0][0], Value::Str("plaza".into()));
    }

    #[test]
    fn invalid_queries_rejected_at_prepare() {
        let db = hotel_db();
        let dup = parse_query("SELECT * FROM hotel, hotel").unwrap();
        assert!(matches!(
            prepare(&dup, &db.catalog()),
            Err(Error::DuplicateAlias { .. })
        ));
        let agg = parse_query("SELECT * FROM confroom WHERE SUM(capacity) > 1").unwrap();
        assert!(matches!(
            prepare(&agg, &db.catalog()),
            Err(Error::MisplacedAggregate)
        ));
        let missing = parse_query("SELECT * FROM nonexistent").unwrap();
        assert!(matches!(
            prepare(&missing, &db.catalog()),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn unbound_parameter_errors_at_execute() {
        let db = hotel_db();
        let q = parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        assert!(matches!(
            plan.execute(&db, &ParamEnv::new()),
            Err(Error::UnboundParameter { .. })
        ));
    }

    /// Scalar reference loop for batch parity: `execute_stats` per env,
    /// stopping at the first error, summing stats only over successes.
    fn scalar_loop(
        plan: &PreparedPlan,
        db: &Database,
        envs: &[ParamEnv],
    ) -> Result<(Vec<Relation>, EvalStats)> {
        let mut stats = EvalStats::default();
        let mut out = Vec::new();
        for env in envs {
            out.push(plan.execute_stats(db, env, &mut stats)?);
        }
        Ok((out, stats))
    }

    #[test]
    fn batch_fast_path_matches_scalar_loop() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        assert!(plan.batchable());
        let envs = vec![
            metro_param(1, "chicago"),
            metro_param(2, "nyc"),
            metro_param(1, "chicago"), // duplicate binding
            metro_param(99, "nowhere"),
        ];
        let (scalar, _) = scalar_loop(&plan, &db, &envs).unwrap();
        let mut stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &envs, &mut stats).unwrap();
        assert_eq!(batch.bindings(), envs.len());
        assert_eq!(batch.columns(), &["hotelname".to_owned()]);
        for (i, rel) in scalar.iter().enumerate() {
            assert_eq!(batch.rows_for(i), &rel.rows[..], "binding {i}");
        }
        // One shared pipeline run, one binding hash-join, one
        // param_query per *distinct* binding (3, not 4).
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.rows_scanned, 3);
        assert_eq!(stats.param_queries, 3);
        assert_eq!(stats.hash_join_builds, 1);
        assert_eq!(stats.hash_join_build_rows, 3);
        assert_eq!(stats.hash_join_probe_rows, 3);
        assert_eq!(batch.total_rows(), 2 + 1 + 2);
        assert_eq!(batch.tagged_rows().count(), 5);
    }

    #[test]
    fn batch_fallback_still_matches_scalar_loop() {
        let db = hotel_db();
        // Non-equality slot predicate: not separable, so execute_batch
        // runs once per distinct binding instead of joining.
        let q = parse_query("SELECT hotelname FROM hotel WHERE starrating > $m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        assert!(!plan.batchable());
        let envs = vec![
            metro_param(4, "x"),
            metro_param(4, "x"),
            metro_param(0, "y"),
        ];
        let (scalar, _) = scalar_loop(&plan, &db, &envs).unwrap();
        let mut stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &envs, &mut stats).unwrap();
        for (i, rel) in scalar.iter().enumerate() {
            assert_eq!(batch.rows_for(i), &rel.rows[..], "binding {i}");
        }
        // Two distinct bindings: two executions, two param_queries.
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.param_queries, 2);
    }

    #[test]
    fn batch_error_agreement_with_scalar_loop() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let envs = vec![metro_param(1, "chicago"), ParamEnv::new()];
        let scalar_err = scalar_loop(&plan, &db, &envs).unwrap_err();
        let mut stats = EvalStats::default();
        let batch_err = plan
            .execute_batch_stats(&db, &envs, &mut stats)
            .unwrap_err();
        assert_eq!(format!("{scalar_err:?}"), format!("{batch_err:?}"));
        // Failed batch absorbs nothing.
        assert_eq!(stats, EvalStats::default());
    }

    #[test]
    fn batch_of_nothing_is_empty() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let mut stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &[], &mut stats).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.columns(), &["hotelname".to_owned()]);
        assert_eq!(stats, EvalStats::default());
    }

    #[test]
    fn batch_relation_accessors_round_trip() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let envs = vec![metro_param(2, "nyc")];
        let batch = plan.execute_batch(&db, &envs).unwrap();
        let direct = plan.execute(&db, &envs[0]).unwrap();
        assert_eq!(batch.relation_for(0), direct);
        assert_eq!(batch.into_relations(), vec![direct]);
    }

    #[test]
    fn describe_renders_pipeline_and_batch_operator() {
        let db = hotel_db();
        let q = parse_query(
            "SELECT hotelname, capacity FROM hotel, confroom \
             WHERE chotel_id = hotelid AND metro_id = $m.metroid AND starrating > 3",
        )
        .unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let text = plan.describe();
        assert!(text.contains("slots: s0=$m.metroid"), "{text}");
        assert!(text.contains("from[0]: scan hotel"), "{text}");
        assert!(text.contains("fused pushdown"), "{text}");
        assert!(text.contains("hash join on"), "{text}");
        assert!(
            text.contains("batch: set-oriented") && text.contains("= $m.metroid"),
            "{text}"
        );

        let unbatched = prepare(
            &parse_query("SELECT hotelname FROM hotel WHERE starrating > $m.metroid").unwrap(),
            &db.catalog(),
        )
        .unwrap();
        assert!(
            unbatched.describe().contains("per-distinct-binding"),
            "{}",
            unbatched.describe()
        );

        let slotless = prepare(
            &parse_query("SELECT hotelname FROM hotel").unwrap(),
            &db.catalog(),
        )
        .unwrap();
        assert!(
            slotless.describe().contains("single shared execution"),
            "{}",
            slotless.describe()
        );
    }

    /// `hotel_db` with a hash index on `hotel.metro_id`.
    fn indexed_hotel_db() -> Database {
        let mut db = hotel_db();
        db.create_index("hotel", "metro_id", crate::schema::IndexKind::Hash)
            .unwrap();
        db
    }

    #[test]
    fn index_lookup_matches_scan_rows_and_order() {
        let plain = hotel_db();
        let indexed = indexed_hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id = $m.metroid").unwrap();
        let scan_plan = prepare(&q, &plain.catalog()).unwrap();
        let idx_plan = prepare(&q, &indexed.catalog()).unwrap();
        for id in [1, 2, 99] {
            let env = metro_param(id, "x");
            let mut scan_stats = EvalStats::default();
            let mut idx_stats = EvalStats::default();
            let scanned = scan_plan
                .execute_stats(&plain, &env, &mut scan_stats)
                .unwrap();
            let looked_up = idx_plan
                .execute_stats(&indexed, &env, &mut idx_stats)
                .unwrap();
            assert_eq!(scanned, looked_up, "metroid {id}");
            assert_eq!(idx_stats.index_lookups, 1);
            assert_eq!(scan_stats.index_lookups, 0);
            // The lookup touches only candidate rows.
            assert_eq!(idx_stats.rows_scanned, looked_up.len() as u64);
            assert!(idx_stats.rows_scanned <= scan_stats.rows_scanned);
        }
        // Literal keys take the index path too.
        let q = parse_query("SELECT hotelname FROM hotel WHERE 2 = metro_id").unwrap();
        let plan = prepare(&q, &indexed.catalog()).unwrap();
        let mut stats = EvalStats::default();
        let rel = plan
            .execute_stats(&indexed, &ParamEnv::new(), &mut stats)
            .unwrap();
        assert_eq!(rel, eval_query(&plain, &q, &ParamEnv::new()).unwrap());
        assert_eq!(stats.index_lookups, 1);
    }

    #[test]
    fn index_lookup_respects_use_indexes_and_missing_runtime_index() {
        let indexed = indexed_hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id = 1").unwrap();
        let off = prepare_with(
            &q,
            &indexed.catalog(),
            EvalOptions {
                use_indexes: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let mut stats = EvalStats::default();
        off.execute_stats(&indexed, &ParamEnv::new(), &mut stats)
            .unwrap();
        assert_eq!(stats.index_lookups, 0);
        assert!(
            !off.describe().contains("index lookup"),
            "{}",
            off.describe()
        );

        // Plan compiled against the indexed catalog, executed against a
        // database without the runtime index: falls back to the scan.
        let plan = prepare(&q, &indexed.catalog()).unwrap();
        let plain = hotel_db();
        let mut stats = EvalStats::default();
        let rel = plan
            .execute_stats(&plain, &ParamEnv::new(), &mut stats)
            .unwrap();
        assert_eq!(stats.index_lookups, 0);
        assert_eq!(rel, plan.execute(&indexed, &ParamEnv::new()).unwrap());
    }

    #[test]
    fn index_nested_loop_batch_matches_scalar_loop() {
        let indexed = indexed_hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id = $m.metroid").unwrap();
        let plan = prepare(&q, &indexed.catalog()).unwrap();
        assert!(plan.batchable());
        let text = plan.describe();
        assert!(
            text.contains("index lookup hotel on metro_id = $m.metroid"),
            "{text}"
        );
        assert!(text.contains("batch: index-nested-loop"), "{text}");
        let envs = vec![
            metro_param(1, "chicago"),
            metro_param(2, "nyc"),
            metro_param(1, "chicago"),
            metro_param(99, "nowhere"),
        ];
        let (scalar, _) = scalar_loop(&plan, &indexed, &envs).unwrap();
        let mut stats = EvalStats::default();
        let batch = plan
            .execute_batch_stats(&indexed, &envs, &mut stats)
            .unwrap();
        for (i, rel) in scalar.iter().enumerate() {
            assert_eq!(batch.rows_for(i), &rel.rows[..], "binding {i}");
        }
        // One indexed execution per distinct binding (3), no shared scan.
        assert_eq!(stats.index_lookups, 3);
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.hash_join_builds, 0);
        // Only matching rows were fetched.
        assert_eq!(stats.rows_scanned, batch.total_rows() as u64 - 2); // dup binding replicated
    }

    #[test]
    fn hash_joins_disabled_matches_interpreter() {
        let db = hotel_db();
        let q = parse_query(
            "SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid",
        )
        .unwrap();
        let opts = EvalOptions {
            hash_joins: false,
            ..EvalOptions::default()
        };
        let mut interp_stats = EvalStats::default();
        let interp = eval_query_stats(&db, &q, &ParamEnv::new(), opts, &mut interp_stats).unwrap();
        let plan = prepare_with(&q, &db.catalog(), opts).unwrap();
        let mut plan_stats = EvalStats::default();
        let prepared = plan
            .execute_stats(&db, &ParamEnv::new(), &mut plan_stats)
            .unwrap();
        assert_eq!(prepared, interp);
        assert_eq!(plan_stats, interp_stats);
        assert!(plan_stats.nested_loop_joins > 0);
    }

    /// `hotel_db` data under a catalog with PRIMARY KEYs, so the
    /// cardinality pass has constraints to work with.
    fn pk_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int).primary_key(),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int).primary_key(),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn bound_computed_and_rendered() {
        let db = pk_db();
        let pinned = prepare(
            &parse_query("SELECT metroname FROM metroarea WHERE metroid = $m.metroid").unwrap(),
            &db.catalog(),
        )
        .unwrap();
        assert!(pinned.bound().card.at_most_one(), "{:?}", pinned.bound());
        assert!(
            pinned.describe().contains("cardinality: <= 1 row"),
            "{}",
            pinned.describe()
        );

        let open = prepare(
            &parse_query("SELECT hotelname FROM hotel WHERE starrating > 3").unwrap(),
            &db.catalog(),
        )
        .unwrap();
        assert_eq!(open.bound().card, Card::Unbounded);
        assert!(
            open.describe().contains("cardinality: unbounded"),
            "{}",
            open.describe()
        );
    }

    #[test]
    fn filter_probe_join_fires_on_bounded_prefix_with_parity() {
        let db = pk_db();
        // metroarea's full PK is pinned by the parameter, so the joined
        // prefix entering the hotel join is statically <= 1 row.
        let sql = "SELECT hotelname, metroname FROM metroarea, hotel \
                   WHERE metroid = $m.metroid AND metro_id = metroid";
        let plan = prepare(&parse_query(sql).unwrap(), &db.catalog()).unwrap();
        let text = plan.describe();
        assert!(text.contains("filter-probe join on"), "{text}");
        assert!(!text.contains("hash join on"), "{text}");
        // Rows, order AND stats agree with the interpreter (the strategy
        // bumps the hash-join counters it replaces).
        let r = check(&db, sql, &metro_param(1, "chicago"));
        assert_eq!(r.len(), 2);

        // Without the pin the prefix is unbounded: ordinary hash join.
        let unpinned = prepare(
            &parse_query(
                "SELECT hotelname, metroname FROM metroarea, hotel WHERE metro_id = metroid",
            )
            .unwrap(),
            &db.catalog(),
        )
        .unwrap();
        assert!(
            unpinned.describe().contains("hash join on"),
            "{}",
            unpinned.describe()
        );
    }

    #[test]
    fn binding_bound_demotes_batch_to_scalar() {
        let db = hotel_db();
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id=$m.metroid").unwrap();
        let plan = prepare(&q, &db.catalog())
            .unwrap()
            .with_binding_bound(Card::AtMostOne);
        assert!(plan.batchable());
        assert_eq!(plan.binding_bound(), Card::AtMostOne);
        let text = plan.describe();
        assert!(text.contains("binding bound: <= 1 row per batch"), "{text}");
        assert!(text.contains("per-binding scalar execution"), "{text}");

        let envs = vec![metro_param(2, "nyc")];
        let (scalar, scalar_stats) = scalar_loop(&plan, &db, &envs).unwrap();
        let mut stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &envs, &mut stats).unwrap();
        assert_eq!(batch.rows_for(0), &scalar[0].rows[..]);
        // No shared pipeline, no binding hash-join: the batch did exactly
        // the scalar loop's work.
        assert_eq!(stats, scalar_stats);
        assert_eq!(stats.hash_join_builds, 0);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn index_selection_prefers_primary_key_equality() {
        let mut db = pk_db();
        // Indexes on both a non-key and the key column; the key equality
        // wins regardless of conjunct order.
        db.create_index("hotel", "starrating", crate::schema::IndexKind::Hash)
            .unwrap();
        db.create_index("hotel", "hotelid", crate::schema::IndexKind::Hash)
            .unwrap();
        let q = parse_query("SELECT hotelname FROM hotel WHERE starrating = 5 AND hotelid = 12")
            .unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let text = plan.describe();
        assert!(
            text.contains("index lookup hotel on hotelid = 12"),
            "{text}"
        );
        let mut stats = EvalStats::default();
        let rel = plan
            .execute_stats(&db, &ParamEnv::new(), &mut stats)
            .unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Str("plaza".into())]]);
        assert_eq!(stats.index_lookups, 1);
        assert_eq!(stats.rows_scanned, 1);
    }
}
