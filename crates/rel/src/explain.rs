//! EXPLAIN: a static re-simulation of the evaluator's planning decisions.
//!
//! [`explain_query`] walks a [`SelectQuery`] exactly the way
//! `eval::eval_scoped_opt` would — same conjunct splitting, same pushdown
//! test, same equi-key detection — but against catalog-derived column
//! layouts instead of materialized rows, so no data is touched. The result
//! is a numbered plan showing join order, join strategy (hash vs.
//! nested-loop), which predicates were pushed down to scans, which remain
//! as residual filters (and whether an EXISTS residual is correlated with
//! the row), and the grouping/projection stages.
//!
//! Because the classification helpers are shared with the evaluator
//! (`split_and`, `resolvable_within`, `equi_pair_layouts`), the printed
//! plan cannot drift from what execution actually does — with one caveat:
//! the evaluator detects EXISTS correlation dynamically via a scope
//! tripwire, while EXPLAIN decides it statically from free column
//! references, which is conservative for predicates whose correlation
//! never fires at runtime.

use crate::ast::{BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::error::Result;
use crate::eval::{
    cols_set, contains_exists, distinct_aliases, equi_pair_layouts, output_columns,
    resolvable_within, split_and, EvalOptions, Layout,
};
use crate::print::expr_to_sql_inline;
use crate::schema::{Catalog, TableSchema};

/// Renders the execution plan for `q` under default [`EvalOptions`].
pub fn explain_query(q: &SelectQuery, catalog: &Catalog) -> Result<String> {
    explain_query_with(q, catalog, EvalOptions::default())
}

/// Renders the execution plan for `q` under the given options (e.g. with
/// hash joins disabled every join shows as a nested loop).
pub fn explain_query_with(
    q: &SelectQuery,
    catalog: &Catalog,
    options: EvalOptions,
) -> Result<String> {
    let mut lines = Vec::new();
    explain_block(q, catalog, options, 0, &mut lines)?;
    Ok(lines.join("\n"))
}

fn pad(depth: usize) -> String {
    "     ".repeat(depth)
}

/// Mirrors `plan::select_index_access` over the item's pushed-down
/// conjuncts: a `col = literal/param` equality (either operand order) on a
/// column with a declared index is served by an index lookup instead of a
/// scan; among candidates, an equality on a single-column `PRIMARY KEY`
/// wins (at most one row), otherwise the first candidate. Returns the
/// chosen conjunct's position in `cands` and the annotation to print.
fn select_index_note(schema: &TableSchema, cands: &[&ScalarExpr]) -> Option<(usize, String)> {
    let pk = schema.primary_key();
    let single_pk = (pk.len() == 1).then(|| pk[0].to_owned());
    let mut first: Option<(usize, String)> = None;
    for (at, c) in cands.iter().enumerate() {
        let ScalarExpr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = c
        else {
            continue;
        };
        for (col, key) in [(lhs, rhs), (rhs, lhs)] {
            let ScalarExpr::Column { name, .. } = col.as_ref() else {
                continue;
            };
            if !matches!(
                key.as_ref(),
                ScalarExpr::Literal(_) | ScalarExpr::Param { .. }
            ) {
                continue;
            }
            if let Some(def) = schema.index_on(name) {
                let note = format!(
                    "access path: index lookup on {name} ({} index)",
                    format!("{:?}", def.kind).to_lowercase()
                );
                if single_pk.as_deref() == Some(name.as_str()) {
                    return Some((at, format!("{note} — primary key equality, <= 1 row")));
                }
                if first.is_none() {
                    first = Some((at, note));
                }
            }
        }
    }
    first
}

fn explain_block(
    q: &SelectQuery,
    catalog: &Catalog,
    options: EvalOptions,
    depth: usize,
    lines: &mut Vec<String>,
) -> Result<()> {
    let p = pad(depth);
    let mut step = 0usize;

    let mut conjuncts: Vec<&ScalarExpr> = Vec::new();
    if let Some(w) = &q.where_clause {
        split_and(w, &mut conjuncts);
    }
    let mut applied = vec![false; conjuncts.len()];

    let mut full: Layout = Layout::new();
    let mut seen_aliases: Vec<String> = Vec::new();

    for (idx, t) in q.from.iter().enumerate() {
        let alias = t.binding_name().to_owned();
        let layout = item_layout(catalog, t)?;
        let this_cols = cols_set(&layout);

        step += 1;
        match t {
            TableRef::Named { name, .. } => {
                if *name == alias {
                    lines.push(format!("{p}{step}. scan {name}"));
                } else {
                    lines.push(format!("{p}{step}. scan {name} AS {alias}"));
                }
            }
            TableRef::Derived {
                query, preserved, ..
            } => {
                let note = if *preserved {
                    " (preserved — left-outer)"
                } else {
                    ""
                };
                lines.push(format!("{p}{step}. derived table {alias}{note}:"));
                explain_block(query, catalog, options, depth + 1, lines)?;
            }
        }
        // Predicates pushed down to this scan alone. The pushed equality
        // `plan::prepare` turns into an index lookup (primary-key
        // equalities ranked first) is annotated here too.
        let schema = match t {
            TableRef::Named { name, .. } => Some(catalog.get(name)?),
            TableRef::Derived { .. } => None,
        };
        let mut pushed: Vec<&ScalarExpr> = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if applied[i] || contains_exists(c) || c.contains_aggregate() {
                continue;
            }
            if resolvable_within(c, std::slice::from_ref(&alias), &this_cols) {
                pushed.push(c);
                applied[i] = true;
            }
        }
        let note_at = if options.use_indexes {
            schema.and_then(|s| select_index_note(s, &pushed))
        } else {
            None
        };
        for (k, c) in pushed.iter().enumerate() {
            lines.push(format!("{p}     pushdown: {}", expr_to_sql_inline(c)));
            if let Some((at, note)) = &note_at {
                if *at == k {
                    lines.push(format!("{p}     {note}"));
                }
            }
        }

        if idx > 0 {
            let mut keys: Vec<String> = Vec::new();
            if options.hash_joins {
                for (i, c) in conjuncts.iter().enumerate() {
                    if applied[i] {
                        continue;
                    }
                    if let Some((l, r)) = equi_pair_layouts(c, &full, &layout) {
                        keys.push(format!(
                            "{} = {}",
                            expr_to_sql_inline(&l),
                            expr_to_sql_inline(&r)
                        ));
                        applied[i] = true;
                    }
                }
            }
            step += 1;
            if keys.is_empty() {
                lines.push(format!(
                    "{p}{step}. nested-loop join {alias} (cross product — no equality key)"
                ));
            } else {
                lines.push(format!(
                    "{p}{step}. hash join {alias} ON {}",
                    keys.join(" AND ")
                ));
            }
        }

        full.extend(layout);
        seen_aliases.push(alias);
        let full_cols = cols_set(&full);

        // Predicates that became resolvable over the joined prefix.
        for (i, c) in conjuncts.iter().enumerate() {
            if applied[i] || contains_exists(c) || c.contains_aggregate() {
                continue;
            }
            if resolvable_within(c, &seen_aliases, &full_cols) {
                lines.push(format!("{p}     filter: {}", expr_to_sql_inline(c)));
                applied[i] = true;
            }
        }
    }

    if q.from.is_empty() {
        step += 1;
        lines.push(format!("{p}{step}. constant single-row input (empty FROM)"));
    }

    // Residual conjuncts: EXISTS and outer-scope references.
    let full_cols = cols_set(&full);
    for (i, c) in conjuncts.iter().enumerate() {
        if applied[i] {
            continue;
        }
        step += 1;
        let correlated = conjunct_is_correlated(c, &seen_aliases, &full_cols, catalog);
        let note = if !correlated && options.cache_uncorrelated_exists {
            "[uncorrelated — evaluated once, result cached]"
        } else {
            "[evaluated per row]"
        };
        lines.push(format!(
            "{p}{step}. residual filter: {} {note}",
            expr_to_sql_inline(c)
        ));
    }

    if q.is_aggregating() {
        step += 1;
        if q.group_by.is_empty() {
            lines.push(format!("{p}{step}. aggregate over implicit single group"));
        } else {
            let keys: Vec<String> = q.group_by.iter().map(expr_to_sql_inline).collect();
            lines.push(format!("{p}{step}. hash group by {}", keys.join(", ")));
        }
        if let Some(h) = &q.having {
            lines.push(format!("{p}     having: {}", expr_to_sql_inline(h)));
        }
    }

    step += 1;
    let cols = output_columns(q, catalog)?;
    let d = if q.distinct { " distinct" } else { "" };
    lines.push(format!("{p}{step}. project{d} [{}]", cols.join(", ")));
    Ok(())
}

/// Alias-qualified column layout a FROM item contributes, from the catalog.
fn item_layout(catalog: &Catalog, t: &TableRef) -> Result<Layout> {
    let alias = t.binding_name().to_owned();
    let cols = match t {
        TableRef::Named { name, .. } => catalog.get(name)?.column_names(),
        TableRef::Derived { query, .. } => output_columns(query, catalog)?,
    };
    Ok(cols.into_iter().map(|c| (alias.clone(), c)).collect())
}

/// Static correlation test for a residual conjunct: does any free column
/// reference (including those escaping EXISTS subqueries) resolve in the
/// current block's layout?
fn conjunct_is_correlated(
    c: &ScalarExpr,
    aliases: &[String],
    columns: &std::collections::HashSet<String>,
    catalog: &Catalog,
) -> bool {
    let mut refs = Vec::new();
    free_refs(c, catalog, &mut refs);
    refs.iter().any(|(q, n)| match q {
        Some(q) => aliases.iter().any(|a| a == q),
        None => columns.contains(n),
    })
}

type ColRef = (Option<String>, String);

fn free_refs(e: &ScalarExpr, catalog: &Catalog, out: &mut Vec<ColRef>) {
    match e {
        ScalarExpr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
        ScalarExpr::Binary { lhs, rhs, .. } => {
            free_refs(lhs, catalog, out);
            free_refs(rhs, catalog, out);
        }
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => free_refs(i, catalog, out),
        ScalarExpr::Aggregate { arg: Some(a), .. } => free_refs(a, catalog, out),
        ScalarExpr::Exists(q) => out.extend(query_free_refs(q, catalog)),
        _ => {}
    }
}

/// Column references in `q` that do not resolve against `q`'s own FROM
/// layout — i.e. the ones that correlate it with an outer scope.
fn query_free_refs(q: &SelectQuery, catalog: &Catalog) -> Vec<ColRef> {
    let mut layout = Layout::new();
    for t in &q.from {
        if let Ok(l) = item_layout(catalog, t) {
            layout.extend(l);
        }
    }
    let aliases = distinct_aliases(&layout);
    let columns = cols_set(&layout);
    let mut refs = Vec::new();
    for item in &q.select {
        if let SelectItem::Expr { expr, .. } = item {
            free_refs(expr, catalog, &mut refs);
        }
    }
    if let Some(w) = &q.where_clause {
        free_refs(w, catalog, &mut refs);
    }
    for g in &q.group_by {
        free_refs(g, catalog, &mut refs);
    }
    if let Some(h) = &q.having {
        free_refs(h, catalog, &mut refs);
    }
    refs.into_iter()
        .filter(|(qual, name)| match qual {
            Some(qual) => !aliases.iter().any(|a| a == qual),
            None => !columns.contains(name),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn hotel_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        c.add(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c.add(
            TableSchema::new(
                "confroom",
                vec![
                    ColumnDef::new("c_id", ColumnType::Int),
                    ColumnDef::new("chotel_id", ColumnType::Int),
                    ColumnDef::new("capacity", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c
    }

    fn plan(sql: &str) -> String {
        explain_query(&parse_query(sql).unwrap(), &hotel_catalog()).unwrap()
    }

    #[test]
    fn scan_with_pushdown() {
        let p = plan("SELECT hotelname FROM hotel WHERE starrating > 4");
        assert!(p.contains("1. scan hotel"), "got:\n{p}");
        assert!(p.contains("pushdown: starrating > 4"), "got:\n{p}");
        assert!(p.contains("project [hotelname]"), "got:\n{p}");
    }

    #[test]
    fn index_access_path_annotated() {
        let mut catalog = hotel_catalog();
        let mut hotel = catalog.get("hotel").unwrap().clone();
        hotel.indexes.push(crate::schema::IndexDef {
            column: "metro_id".to_owned(),
            kind: crate::schema::IndexKind::Hash,
        });
        catalog.add(hotel);
        let q = parse_query("SELECT hotelname FROM hotel WHERE metro_id = $m.metroid").unwrap();
        let p = explain_query(&q, &catalog).unwrap();
        assert!(
            p.contains("access path: index lookup on metro_id (hash index)"),
            "got:\n{p}"
        );
        // With indexes disabled the annotation disappears.
        let p = explain_query_with(
            &q,
            &catalog,
            EvalOptions {
                use_indexes: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert!(!p.contains("access path"), "got:\n{p}");
        // No index, no annotation.
        let p = plan("SELECT hotelname FROM hotel WHERE metro_id = 3");
        assert!(!p.contains("access path"), "got:\n{p}");
    }

    #[test]
    fn index_access_prefers_primary_key_equality() {
        let mut catalog = Catalog::new();
        catalog.add(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int).primary_key(),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        let mut hotel = catalog.get("hotel").unwrap().clone();
        for column in ["starrating", "hotelid"] {
            hotel.indexes.push(crate::schema::IndexDef {
                column: column.to_owned(),
                kind: crate::schema::IndexKind::Hash,
            });
        }
        catalog.add(hotel);
        // Both equalities are indexed; the primary-key one wins even
        // though the non-key equality comes first.
        let q = parse_query("SELECT hotelname FROM hotel WHERE starrating = 5 AND hotelid = 12")
            .unwrap();
        let p = explain_query(&q, &catalog).unwrap();
        assert!(
            p.contains("access path: index lookup on hotelid (hash index) — primary key equality, <= 1 row"),
            "got:\n{p}"
        );
        assert!(!p.contains("index lookup on starrating"), "got:\n{p}");
    }

    #[test]
    fn hash_join_detected() {
        let p = plan("SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid");
        assert!(
            p.contains("hash join metroarea ON metro_id = metroid"),
            "got:\n{p}"
        );
    }

    #[test]
    fn cross_product_without_key() {
        let p = plan("SELECT hotelname, metroname FROM hotel, metroarea");
        assert!(
            p.contains("nested-loop join metroarea (cross product — no equality key)"),
            "got:\n{p}"
        );
    }

    #[test]
    fn hash_joins_disabled_fall_back() {
        let q = parse_query(
            "SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid",
        )
        .unwrap();
        let p = explain_query_with(
            &q,
            &hotel_catalog(),
            EvalOptions {
                hash_joins: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert!(p.contains("nested-loop join metroarea"), "got:\n{p}");
        assert!(p.contains("filter: metro_id = metroid"), "got:\n{p}");
    }

    #[test]
    fn derived_table_nested_plan() {
        let p = plan(
            "SELECT SUM(capacity), TEMP.hotelid \
             FROM confroom, (SELECT * FROM hotel WHERE starrating > 4) AS TEMP \
             WHERE chotel_id = TEMP.hotelid \
             GROUP BY TEMP.hotelid",
        );
        assert!(p.contains("derived table TEMP:"), "got:\n{p}");
        assert!(p.contains("pushdown: starrating > 4"), "got:\n{p}");
        assert!(
            p.contains("hash join TEMP ON chotel_id = TEMP.hotelid"),
            "got:\n{p}"
        );
        assert!(p.contains("hash group by TEMP.hotelid"), "got:\n{p}");
    }

    #[test]
    fn preserved_derived_table_annotated() {
        let p = plan(
            "SELECT COUNT(c_id), TEMP.hotelid \
             FROM confroom, OUTER (SELECT * FROM hotel) AS TEMP \
             WHERE chotel_id = TEMP.hotelid GROUP BY TEMP.hotelid",
        );
        assert!(
            p.contains("derived table TEMP (preserved — left-outer):"),
            "got:\n{p}"
        );
    }

    #[test]
    fn exists_correlation_classified() {
        let p = plan(
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM confroom WHERE chotel_id = hotelid)",
        );
        assert!(p.contains("residual filter: EXISTS"), "got:\n{p}");
        assert!(p.contains("[evaluated per row]"), "got:\n{p}");

        let p = plan(
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 1)",
        );
        assert!(
            p.contains("[uncorrelated — evaluated once, result cached]"),
            "got:\n{p}"
        );
    }

    #[test]
    fn having_and_distinct_rendered() {
        let p = plan(
            "SELECT DISTINCT chotel_id FROM confroom \
             GROUP BY chotel_id HAVING SUM(capacity) > 400",
        );
        assert!(p.contains("having: SUM(capacity) > 400"), "got:\n{p}");
        assert!(p.contains("project distinct [chotel_id]"), "got:\n{p}");
    }
}
