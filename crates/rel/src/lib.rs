//! # `xvc-rel` — in-memory relational engine
//!
//! The SIGMOD'03 composition paper assumes a relational engine behind the
//! XML-publishing middleware: schema-tree *tag queries* are parameterized
//! SQL, and the composition algorithm itself **rewrites SQL** (the
//! `UNBIND`/`NEST` functions of Figures 10–13 substitute binding variables
//! with derived-table subqueries, add `GROUP BY` clauses to preserve
//! aggregation semantics, and wrap sibling subtrees in `EXISTS` checks).
//! No SQL crate is available offline, so this crate provides everything
//! first-party:
//!
//! * [`value`] — dynamically typed SQL values with NULL semantics;
//! * [`schema`] / [`table`] — catalogs, table schemas and row storage
//!   ([`Database`]), with an in-memory backend and a paged one
//!   ([`table::Backend`]);
//! * [`storage`] — the paged substrate: slotted pages, pluggable page
//!   stores (memory or temp file) and a buffer pool with pin/unpin and
//!   clock eviction;
//! * [`index`] — hash and B-tree secondary indexes over table columns,
//!   order-preserving so index access paths publish identical documents;
//! * [`ast`] — the SQL fragment the algorithm emits: select lists with
//!   aggregates and qualified stars, derived tables, parameters
//!   (`$bv.column`), `GROUP BY`/`HAVING`, `EXISTS` subqueries;
//! * [`parse`] — an SQL parser for that fragment, so the paper's queries can
//!   be written as text in tests and round-tripped;
//! * [`mod@print`] — a deterministic pretty-printer (golden tests compare SQL);
//! * [`eval`] — the interpreter: eager single-table filters, hash
//!   equi-joins, grouping, aggregate & `HAVING` evaluation, correlated
//!   `EXISTS` with constant-per-parameterization caching;
//! * [`plan`] — prepared plans: the interpreter's classification hoisted
//!   to compile time (predicate pushdown assignment, join order and
//!   hash-key selection, parameter slots), executable once per binding —
//!   what the publisher's per-`SchemaTree` plan cache stores;
//! * [`rewrite`] — the query-surgery helpers `UNBIND`/`NEST` rely on;
//! * [`optimize`] — the Kim-style unnesting pass the paper points at
//!   (§4.2.1), applied opt-in after composition;
//! * [`dml`] — the write path: `INSERT INTO` / `DELETE FROM` statements
//!   returning per-table [`Delta`]s for incremental republishing;
//! * [`domain`] / [`facts`] — the predicate-dataflow engine: a per-column
//!   equality/interval/nullability abstract domain seeded from retained
//!   DDL constraints, with conjunct-level satisfiability, entailment and
//!   fact-chain provenance (consumed by TVQ pruning and `xvc check`).

#![warn(missing_docs)]
// Curated clippy::pedantic subset shared with `xvc-analyze` (kept clean
// under `-D warnings` in ci.sh).
#![warn(
    clippy::doc_markdown,
    clippy::explicit_iter_loop,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::match_same_arms,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod ast;
pub mod csv;
pub mod ddl;
pub mod dml;
pub mod domain;
pub mod error;
pub mod eval;
pub mod explain;
pub mod facts;
pub mod index;
pub mod optimize;
pub mod parse;
pub mod plan;
pub mod print;
pub mod rewrite;
pub mod schema;
pub mod storage;
pub mod table;
pub mod value;

pub use ast::{AggFunc, BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
pub use csv::load_csv;
pub use ddl::{database_from_ddl, parse_create_table, parse_ddl};
pub use dml::{Delta, TableDelta};
pub use domain::{Assumption, Card, CardBound, ColumnDomain};
pub use error::{Error, Result};
pub use eval::{
    eval_query, eval_query_stats, eval_query_with, output_columns, EvalOptions, EvalStats,
    NamedTuple, ParamEnv, Relation,
};
pub use explain::{explain_query, explain_query_with};
pub use facts::{
    analyze_query, bound_query, drop_redundant_conjuncts, param_key, query_cardinality, ClauseKind,
    FactEntry, FactSet, QueryAnalysis, QueryCardinality,
};
pub use index::SecondaryIndex;
pub use optimize::optimize;
pub use parse::parse_query;
pub use plan::{prepare, prepare_with, BatchResult, PreparedPlan};
pub use schema::{Catalog, ColumnDef, ColumnType, IndexDef, IndexKind, TableSchema};
pub use storage::{BufferPool, FilePageStore, MemPageStore, Page, PageStore, PoolStats, PAGE_SIZE};
pub use table::{Backend, Database, Table};
pub use value::Value;
