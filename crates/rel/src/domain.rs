//! Per-column abstract domain for predicate dataflow analysis (§4.2.1).
//!
//! A [`ColumnDomain`] over-approximates the set of values a column (or a
//! `$bv.column` parameter) can take on any row that satisfies the facts
//! assumed so far: an optional exact value, a set of excluded values, an
//! interval, and nullability. Facts are *assumed* one conjunct at a time;
//! each assumption reports whether it contradicts the accumulated domain
//! (the conjunction is provably false under SQL three-valued logic), is
//! entailed by it (the conjunct can be dropped), or genuinely narrows it.
//!
//! Soundness notes:
//!
//! * Assuming a comparison conjunct `col op v` TRUE also implies `col` is
//!   not NULL — a comparison with NULL is *unknown*, and filters discard
//!   unknown rows.
//! * Entailment (`Redundant`) of a comparison requires the domain to pin
//!   the column non-NULL; an interval alone proves nothing about a row
//!   where the column is NULL.
//! * Incomparable values ([`Value::sql_cmp`] returns `None`, e.g. `Int`
//!   vs `Str`) never produce `Contradiction` or `Redundant`; the domain
//!   stays conservative.

use std::cmp::Ordering;
use std::fmt;

use crate::ast::BinOp;
use crate::value::Value;

/// Outcome of assuming one fact against a [`ColumnDomain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assumption {
    /// The fact conflicts with the accumulated domain: the conjunction is
    /// provably false (no row can satisfy all facts at once).
    Contradiction,
    /// The fact is already entailed by the accumulated domain: the
    /// conjunct is provably true on every surviving row and can be
    /// dropped.
    Redundant,
    /// The fact narrows the domain (or is incomparable and recorded
    /// conservatively).
    Narrowed,
}

/// An interval endpoint: the bounding value and whether it is inclusive.
type Bound = (Value, bool);

/// Abstract value-set of one column: equality, disequalities, interval and
/// nullability. The empty (`Default`) domain means "anything, possibly
/// NULL".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnDomain {
    /// Exact value, when a `col = literal` fact was assumed.
    pub eq: Option<Value>,
    /// Excluded values (`col <> literal` facts).
    pub ne: Vec<Value>,
    /// Lower bound from `>` / `>=` facts.
    pub lo: Option<Bound>,
    /// Upper bound from `<` / `<=` facts.
    pub hi: Option<Bound>,
    /// The column is known non-NULL (DDL `NOT NULL`, a key column, or any
    /// assumed comparison).
    pub non_null: bool,
    /// The column is known NULL (`col IS NULL` assumed true).
    pub null_only: bool,
}

impl ColumnDomain {
    /// The domain seeded by a DDL `NOT NULL` / `PRIMARY KEY` constraint.
    pub fn not_null() -> Self {
        ColumnDomain {
            non_null: true,
            ..ColumnDomain::default()
        }
    }

    /// Assumes the comparison conjunct `col op v` is TRUE (`v` must not be
    /// NULL; NULL-literal comparisons are never true and are handled by
    /// the caller).
    pub fn assume_cmp(&mut self, op: BinOp, v: &Value) -> Assumption {
        debug_assert!(op.is_comparison());
        if v.is_null() || self.null_only {
            // `col op NULL` is unknown on every row; `col IS NULL` plus a
            // true comparison is impossible.
            return Assumption::Contradiction;
        }
        match op {
            BinOp::Eq => self.assume_eq(v),
            BinOp::Ne => self.assume_ne(v),
            BinOp::Lt | BinOp::Le => self.assume_upper(v, op == BinOp::Le),
            BinOp::Gt | BinOp::Ge => self.assume_lower(v, op == BinOp::Ge),
            _ => Assumption::Narrowed,
        }
    }

    /// Assumes `col IS NOT NULL` is TRUE.
    pub fn assume_non_null(&mut self) -> Assumption {
        if self.null_only {
            return Assumption::Contradiction;
        }
        if self.non_null {
            return Assumption::Redundant;
        }
        self.non_null = true;
        Assumption::Narrowed
    }

    /// Assumes `col IS NULL` is TRUE.
    pub fn assume_null(&mut self) -> Assumption {
        if self.non_null || self.eq.is_some() || self.lo.is_some() || self.hi.is_some() {
            return Assumption::Contradiction;
        }
        if self.null_only {
            return Assumption::Redundant;
        }
        self.null_only = true;
        Assumption::Narrowed
    }

    fn assume_eq(&mut self, v: &Value) -> Assumption {
        if let Some(e) = &self.eq {
            return match e.sql_eq(v) {
                Some(true) => Assumption::Redundant,
                Some(false) => Assumption::Contradiction,
                None => Assumption::Narrowed, // incomparable types
            };
        }
        if self.ne.iter().any(|n| n.sql_eq(v) == Some(true)) {
            return Assumption::Contradiction;
        }
        if !self.bounds_admit(v) {
            return Assumption::Contradiction;
        }
        self.eq = Some(v.clone());
        self.non_null = true;
        Assumption::Narrowed
    }

    fn assume_ne(&mut self, v: &Value) -> Assumption {
        let known_non_null = self.non_null;
        if let Some(e) = &self.eq {
            return match e.sql_eq(v) {
                Some(true) => Assumption::Contradiction,
                Some(false) if known_non_null => Assumption::Redundant,
                _ => Assumption::Narrowed,
            };
        }
        if known_non_null
            && (self.ne.iter().any(|n| n.sql_eq(v) == Some(true)) || !self.bounds_admit(v))
        {
            // Already excluded by a prior `<>` or by the interval.
            return Assumption::Redundant;
        }
        self.ne.push(v.clone());
        self.non_null = true;
        Assumption::Narrowed
    }

    /// Assumes `col < v` (`inclusive = false`) or `col <= v` (`true`).
    fn assume_upper(&mut self, v: &Value, inclusive: bool) -> Assumption {
        if let Some(e) = &self.eq {
            return match e.sql_cmp(v) {
                Some(Ordering::Less) => Assumption::Redundant,
                Some(Ordering::Equal) if inclusive => Assumption::Redundant,
                Some(_) => Assumption::Contradiction,
                None => Assumption::Narrowed,
            };
        }
        // Contradiction against the lower bound: [lo, v) or [lo, v] empty.
        if let Some((lo, lo_inc)) = &self.lo {
            match lo.sql_cmp(v) {
                Some(Ordering::Greater) => return Assumption::Contradiction,
                Some(Ordering::Equal) if !(inclusive && *lo_inc) => {
                    return Assumption::Contradiction
                }
                _ => {}
            }
        }
        // Redundant if the existing upper bound is at least as tight (and
        // the column is already pinned non-NULL).
        if self.non_null {
            if let Some((hi, hi_inc)) = &self.hi {
                let entailed = match hi.sql_cmp(v) {
                    Some(Ordering::Less) => true,
                    Some(Ordering::Equal) => inclusive || !*hi_inc,
                    _ => false,
                };
                if entailed {
                    return Assumption::Redundant;
                }
            }
        }
        if self.tighter_than_hi(v, inclusive) {
            self.hi = Some((v.clone(), inclusive));
        }
        self.non_null = true;
        Assumption::Narrowed
    }

    /// Assumes `col > v` (`inclusive = false`) or `col >= v` (`true`).
    fn assume_lower(&mut self, v: &Value, inclusive: bool) -> Assumption {
        if let Some(e) = &self.eq {
            return match e.sql_cmp(v) {
                Some(Ordering::Greater) => Assumption::Redundant,
                Some(Ordering::Equal) if inclusive => Assumption::Redundant,
                Some(_) => Assumption::Contradiction,
                None => Assumption::Narrowed,
            };
        }
        if let Some((hi, hi_inc)) = &self.hi {
            match v.sql_cmp(hi) {
                Some(Ordering::Greater) => return Assumption::Contradiction,
                Some(Ordering::Equal) if !(inclusive && *hi_inc) => {
                    return Assumption::Contradiction
                }
                _ => {}
            }
        }
        if self.non_null {
            if let Some((lo, lo_inc)) = &self.lo {
                let entailed = match lo.sql_cmp(v) {
                    Some(Ordering::Greater) => true,
                    Some(Ordering::Equal) => inclusive || !*lo_inc,
                    _ => false,
                };
                if entailed {
                    return Assumption::Redundant;
                }
            }
        }
        if self.tighter_than_lo(v, inclusive) {
            self.lo = Some((v.clone(), inclusive));
        }
        self.non_null = true;
        Assumption::Narrowed
    }

    /// True if `v` can lie inside the current interval.
    fn bounds_admit(&self, v: &Value) -> bool {
        if let Some((lo, inc)) = &self.lo {
            match lo.sql_cmp(v) {
                Some(Ordering::Greater) => return false,
                Some(Ordering::Equal) if !inc => return false,
                _ => {}
            }
        }
        if let Some((hi, inc)) = &self.hi {
            match v.sql_cmp(hi) {
                Some(Ordering::Greater) => return false,
                Some(Ordering::Equal) if !inc => return false,
                _ => {}
            }
        }
        true
    }

    /// True if `(v, inclusive)` is a strictly tighter upper bound than the
    /// current one (incomparable bounds are never replaced).
    fn tighter_than_hi(&self, v: &Value, inclusive: bool) -> bool {
        match &self.hi {
            None => true,
            Some((hi, hi_inc)) => matches!(
                (v.sql_cmp(hi), inclusive, hi_inc),
                (Some(Ordering::Less), _, _) | (Some(Ordering::Equal), false, true)
            ),
        }
    }

    /// True if `(v, inclusive)` is a strictly tighter lower bound than the
    /// current one.
    fn tighter_than_lo(&self, v: &Value, inclusive: bool) -> bool {
        match &self.lo {
            None => true,
            Some((lo, lo_inc)) => matches!(
                (v.sql_cmp(lo), inclusive, lo_inc),
                (Some(Ordering::Greater), _, _) | (Some(Ordering::Equal), false, true)
            ),
        }
    }

    /// True if nothing is known about the column.
    pub fn is_top(&self) -> bool {
        *self == ColumnDomain::default()
    }
}

impl fmt::Display for ColumnDomain {
    /// Compact rendering used in fact chains: `= 5`, `> 4, <= 10, NOT NULL`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(v) = &self.eq {
            parts.push(format!("= {}", v.render()));
        }
        for n in &self.ne {
            parts.push(format!("<> {}", n.render()));
        }
        if let Some((v, inc)) = &self.lo {
            parts.push(format!("{} {}", if *inc { ">=" } else { ">" }, v.render()));
        }
        if let Some((v, inc)) = &self.hi {
            parts.push(format!("{} {}", if *inc { "<=" } else { "<" }, v.render()));
        }
        if self.null_only {
            parts.push("IS NULL".to_owned());
        } else if self.non_null && self.eq.is_none() {
            parts.push("NOT NULL".to_owned());
        }
        if parts.is_empty() {
            parts.push("unconstrained".to_owned());
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// Static row-count bound for one query (or one FROM item under the
/// facts in force): the cardinality half of the abstract domain.
///
/// The lattice is ordered `Zero < AtMostOne < Bounded(k) < Unbounded`;
/// `Bounded(1)` and `AtMostOne` are interchangeable and [`Card::times`]
/// normalizes toward `AtMostOne`. Joins compose bounds multiplicatively
/// and sibling subtrees compose additively, so the two operations below
/// are all the TVQ-level analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Card {
    /// The query provably yields no row.
    Zero,
    /// At most one row (key-pinned scan, implicit aggregate, guard probe).
    AtMostOne,
    /// At most `k` rows, `k >= 2` after normalization.
    Bounded(u64),
    /// No static bound.
    Unbounded,
}

impl Card {
    /// Normalizes `Bounded(0)`/`Bounded(1)` to their canonical variants.
    fn norm(self) -> Card {
        match self {
            Card::Bounded(0) => Card::Zero,
            Card::Bounded(1) => Card::AtMostOne,
            c => c,
        }
    }

    /// Bound on a join / nesting product: `Zero` absorbs, `AtMostOne` is
    /// the identity, bounded factors multiply (saturating to `Unbounded`
    /// on overflow).
    pub fn times(self, other: Card) -> Card {
        match (self.norm(), other.norm()) {
            (Card::Zero, _) | (_, Card::Zero) => Card::Zero,
            (Card::AtMostOne, c) | (c, Card::AtMostOne) => c,
            (Card::Bounded(a), Card::Bounded(b)) => {
                a.checked_mul(b).map_or(Card::Unbounded, Card::Bounded)
            }
            _ => Card::Unbounded,
        }
    }

    /// Bound on a disjoint union (sibling subtrees of one document).
    pub fn plus(self, other: Card) -> Card {
        match (self.norm(), other.norm()) {
            (Card::Zero, c) | (c, Card::Zero) => c,
            (Card::Unbounded, _) | (_, Card::Unbounded) => Card::Unbounded,
            (a, b) => {
                let (a, b) = (a.as_limit().unwrap(), b.as_limit().unwrap());
                a.checked_add(b).map_or(Card::Unbounded, Card::Bounded)
            }
        }
    }

    /// True when the bound guarantees at most one row.
    pub fn at_most_one(self) -> bool {
        matches!(self.norm(), Card::Zero | Card::AtMostOne)
    }

    /// The numeric limit, when one exists.
    pub fn as_limit(self) -> Option<u64> {
        match self {
            Card::Zero => Some(0),
            Card::AtMostOne => Some(1),
            Card::Bounded(k) => Some(k),
            Card::Unbounded => None,
        }
    }
}

impl fmt::Display for Card {
    /// ASCII rendering used in plans, diagnostics and `xvc explain`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.norm() {
            Card::Zero => write!(f, "0 rows"),
            Card::AtMostOne => write!(f, "<= 1 row"),
            Card::Bounded(k) => write!(f, "<= {k} rows"),
            Card::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A [`Card`] together with the fact chain that justifies it, mirroring
/// the provenance the value domain records in
/// [`crate::facts::FactEntry::sources`].
#[derive(Debug, Clone, PartialEq)]
pub struct CardBound {
    /// The bound itself.
    pub card: Card,
    /// Human-readable justification, oldest fact first (DDL constraints,
    /// pinning conjuncts, aggregate rules). Empty for `Unbounded`.
    pub chain: Vec<String>,
}

impl CardBound {
    /// An unbounded cardinality with no justification.
    pub fn unbounded() -> Self {
        CardBound {
            card: Card::Unbounded,
            chain: Vec::new(),
        }
    }

    /// A bound justified by the given chain.
    pub fn new(card: Card, chain: Vec<String>) -> Self {
        CardBound { card, chain }
    }
}

impl Default for CardBound {
    fn default() -> Self {
        CardBound::unbounded()
    }
}

impl fmt::Display for CardBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.card)?;
        if !self.chain.is_empty() {
            write!(f, " [{}]", self.chain.join("; "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn equality_conflicts() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(5)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(5)), Assumption::Redundant);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(6)), Assumption::Contradiction);
        assert!(d.non_null);
    }

    #[test]
    fn interval_contradiction() {
        // starrating > 4 AND starrating < 3 — the Figure 1 seed example.
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(4)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Lt, &int(3)), Assumption::Contradiction);
    }

    #[test]
    fn interval_boundary_cases() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Ge, &int(3)), Assumption::Narrowed);
        // >= 3 AND < 3 is empty; >= 3 AND <= 3 pins the value.
        assert_eq!(
            d.clone().assume_cmp(BinOp::Lt, &int(3)),
            Assumption::Contradiction
        );
        assert_eq!(d.assume_cmp(BinOp::Le, &int(3)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(3)), Assumption::Narrowed);
    }

    #[test]
    fn redundant_bounds() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(10)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(5)), Assumption::Redundant);
        assert_eq!(d.assume_cmp(BinOp::Ge, &int(10)), Assumption::Redundant);
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(12)), Assumption::Narrowed);
    }

    #[test]
    fn entailment_requires_non_null() {
        // A bare DDL interval fact without NOT NULL must not prove a
        // conjunct redundant... but any assumed comparison pins non-NULL,
        // so construct the domain by hand.
        let mut d = ColumnDomain {
            lo: Some((int(10), false)),
            ..ColumnDomain::default()
        };
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(5)), Assumption::Narrowed);
    }

    #[test]
    fn equality_vs_interval() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Lt, &int(3)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(7)), Assumption::Contradiction);
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(7)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Lt, &int(3)), Assumption::Contradiction);
        assert_eq!(d.assume_cmp(BinOp::Gt, &int(3)), Assumption::Redundant);
    }

    #[test]
    fn disequality() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Ne, &int(5)), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Ne, &int(5)), Assumption::Redundant);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(5)), Assumption::Contradiction);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(6)), Assumption::Narrowed);
    }

    #[test]
    fn nullability() {
        let mut d = ColumnDomain::not_null();
        assert_eq!(d.assume_null(), Assumption::Contradiction);
        assert_eq!(d.assume_non_null(), Assumption::Redundant);

        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_null(), Assumption::Narrowed);
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(1)), Assumption::Contradiction);

        // Comparing against a NULL literal is never true.
        let mut d = ColumnDomain::default();
        assert_eq!(
            d.assume_cmp(BinOp::Eq, &Value::Null),
            Assumption::Contradiction
        );
    }

    #[test]
    fn incomparable_types_stay_conservative() {
        let mut d = ColumnDomain::default();
        assert_eq!(d.assume_cmp(BinOp::Eq, &int(5)), Assumption::Narrowed);
        assert_eq!(
            d.assume_cmp(BinOp::Eq, &Value::Str("x".into())),
            Assumption::Narrowed
        );
    }

    #[test]
    fn int_float_compare() {
        let mut d = ColumnDomain::default();
        assert_eq!(
            d.assume_cmp(BinOp::Gt, &Value::Float(4.5)),
            Assumption::Narrowed
        );
        assert_eq!(d.assume_cmp(BinOp::Lt, &int(4)), Assumption::Contradiction);
    }

    #[test]
    fn display_is_compact() {
        let mut d = ColumnDomain::default();
        d.assume_cmp(BinOp::Gt, &int(4));
        d.assume_cmp(BinOp::Le, &int(10));
        assert_eq!(d.to_string(), "> 4, <= 10, NOT NULL");
        assert_eq!(ColumnDomain::default().to_string(), "unconstrained");
    }

    #[test]
    fn card_lattice_multiplies_and_adds() {
        assert_eq!(Card::Zero.times(Card::Unbounded), Card::Zero);
        assert_eq!(Card::AtMostOne.times(Card::Bounded(7)), Card::Bounded(7));
        assert_eq!(Card::Bounded(3).times(Card::Bounded(4)), Card::Bounded(12));
        assert_eq!(
            Card::Bounded(u64::MAX).times(Card::Bounded(2)),
            Card::Unbounded
        );
        assert_eq!(Card::Unbounded.times(Card::AtMostOne), Card::Unbounded);

        assert_eq!(Card::Zero.plus(Card::AtMostOne), Card::AtMostOne);
        assert_eq!(Card::AtMostOne.plus(Card::AtMostOne), Card::Bounded(2));
        assert_eq!(Card::Bounded(3).plus(Card::Bounded(4)), Card::Bounded(7));
        assert_eq!(Card::Bounded(3).plus(Card::Unbounded), Card::Unbounded);
    }

    #[test]
    fn card_normalizes_degenerate_bounds() {
        assert_eq!(Card::Bounded(1).times(Card::Bounded(1)), Card::AtMostOne);
        assert_eq!(Card::Bounded(0).times(Card::Unbounded), Card::Zero);
        assert!(Card::Bounded(1).at_most_one());
        assert!(!Card::Bounded(2).at_most_one());
        assert_eq!(Card::Bounded(1).to_string(), "<= 1 row");
    }

    #[test]
    fn card_display_is_ascii_and_greppable() {
        assert_eq!(Card::Zero.to_string(), "0 rows");
        assert_eq!(Card::AtMostOne.to_string(), "<= 1 row");
        assert_eq!(Card::Bounded(42).to_string(), "<= 42 rows");
        assert_eq!(Card::Unbounded.to_string(), "unbounded");
        let b = CardBound::new(
            Card::AtMostOne,
            vec!["DDL: hotel.hotelid PRIMARY KEY".into()],
        );
        assert_eq!(b.to_string(), "<= 1 row [DDL: hotel.hotelid PRIMARY KEY]");
        assert_eq!(CardBound::default().card, Card::Unbounded);
    }
}
