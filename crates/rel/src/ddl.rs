//! A minimal DDL dialect: `CREATE TABLE` statements for catalog/database
//! bootstrap (used by the `xvc` CLI and file-based workflows).
//!
//! ```text
//! CREATE TABLE hotel (
//!     hotelid   INT,
//!     hotelname TEXT,
//!     starrating INT
//! );
//! ```
//!
//! Accepted type names: `INT`/`INTEGER`/`BIGINT` → [`ColumnType::Int`],
//! `FLOAT`/`REAL`/`DOUBLE` → [`ColumnType::Float`], `TEXT`/`STRING`/
//! `VARCHAR`/`CHAR`/`DATE` → [`ColumnType::Str`] (dates are ISO strings in
//! this engine). The column annotations `PRIMARY KEY` and `NOT NULL` are
//! retained on [`ColumnDef`] — they seed the predicate-dataflow fact base
//! and `check_row` enforces NOT NULL on insert. Other trailing tokens up
//! to `,`/`)` (e.g. `DEFAULT 0`, `UNIQUE`) still parse through unrecorded.

use crate::error::{Error, Result};
use crate::schema::{Catalog, ColumnDef, ColumnType, TableSchema};
use crate::table::Database;

/// Parses a script of `CREATE TABLE` statements into a [`Catalog`].
pub fn parse_ddl(input: &str) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    for schema in parse_statements(input)? {
        catalog.add(schema);
    }
    Ok(catalog)
}

/// Parses a DDL script into an empty [`Database`] (tables created, no rows).
pub fn database_from_ddl(input: &str) -> Result<Database> {
    let mut db = Database::new();
    for schema in parse_statements(input)? {
        db.create_table(schema);
    }
    Ok(db)
}

fn parse_statements(input: &str) -> Result<Vec<TableSchema>> {
    let mut out = Vec::new();
    // Strip `--` line comments.
    let cleaned: String = input
        .lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for stmt in cleaned.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        out.push(parse_create_table(stmt)?);
    }
    Ok(out)
}

/// Parses one `CREATE TABLE name (col type, ...)` statement.
pub fn parse_create_table(stmt: &str) -> Result<TableSchema> {
    let rest = strip_keywords(stmt.trim(), &["CREATE", "TABLE"]).ok_or_else(|| {
        Error::UnexpectedToken {
            found: format!("'{}'", head(stmt)),
            expected: "CREATE TABLE",
        }
    })?;
    let open = rest.find('(').ok_or(Error::UnexpectedEnd {
        expected: "'(' after table name",
    })?;
    let name = rest[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(Error::UnexpectedToken {
            found: format!("'{name}'"),
            expected: "a table name",
        });
    }
    let close = rest.rfind(')').ok_or(Error::UnexpectedEnd {
        expected: "')' closing the column list",
    })?;
    let body = &rest[open + 1..close];
    let mut columns = Vec::new();
    for col in split_top_level_commas(body) {
        let col = col.trim();
        if col.is_empty() {
            continue;
        }
        let mut parts = col.split_whitespace();
        let col_name = parts.next().ok_or(Error::UnexpectedEnd {
            expected: "a column name",
        })?;
        let ty_name = parts.next().ok_or(Error::UnexpectedEnd {
            expected: "a column type",
        })?;
        let ty = column_type(ty_name).ok_or_else(|| Error::UnexpectedToken {
            found: format!("'{ty_name}'"),
            expected: "INT/FLOAT/TEXT-family type",
        })?;
        let mut def = ColumnDef::new(col_name, ty);
        // Constraint annotations after the type: `PRIMARY KEY`, `NOT NULL`.
        let trailing: Vec<String> = parts.map(str::to_ascii_uppercase).collect();
        for pair in trailing.windows(2) {
            match (pair[0].as_str(), pair[1].as_str()) {
                ("PRIMARY", "KEY") => def = def.primary_key(),
                ("NOT", "NULL") => def = def.not_null(),
                _ => {}
            }
        }
        columns.push(def);
    }
    TableSchema::new(name, columns)
}

fn head(s: &str) -> &str {
    s.split_whitespace().next().unwrap_or("")
}

fn strip_keywords<'a>(s: &'a str, kws: &[&str]) -> Option<&'a str> {
    let mut rest = s;
    for kw in kws {
        rest = rest.trim_start();
        if rest.len() < kw.len() || !rest[..kw.len()].eq_ignore_ascii_case(kw) {
            return None;
        }
        rest = &rest[kw.len()..];
    }
    Some(rest.trim_start())
}

/// Splits on commas outside parentheses (types like `DECIMAL(10,2)` parse
/// through — the precision is ignored).
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn column_type(name: &str) -> Option<ColumnType> {
    let base = name.split('(').next().unwrap_or(name);
    match base.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(ColumnType::Int),
        "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Some(ColumnType::Float),
        "TEXT" | "STRING" | "VARCHAR" | "CHAR" | "DATE" | "TIMESTAMP" => Some(ColumnType::Str),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_table() {
        let s =
            parse_create_table("CREATE TABLE hotel (hotelid INT, hotelname TEXT, starrating INT)")
                .unwrap();
        assert_eq!(s.name, "hotel");
        assert_eq!(s.columns.len(), 3);
        assert_eq!(s.columns[1].ty, ColumnType::Str);
    }

    #[test]
    fn parses_script_with_comments_and_annotations() {
        let catalog = parse_ddl(
            "-- the hotel schema\n\
             CREATE TABLE metroarea (metroid INT PRIMARY KEY, metroname VARCHAR(64));\n\
             create table availability (a_id int, price DECIMAL(10,2), startdate DATE);\n",
        )
        .unwrap();
        assert_eq!(catalog.len(), 2);
        let avail = catalog.get("availability").unwrap();
        assert_eq!(avail.columns[1].ty, ColumnType::Float);
        assert_eq!(avail.columns[2].ty, ColumnType::Str);
        // PRIMARY KEY is retained, not stripped.
        let metro = catalog.get("metroarea").unwrap();
        assert!(metro.columns[0].primary_key);
        assert!(metro.columns[0].not_null);
        assert!(!metro.columns[1].primary_key);
        assert_eq!(metro.primary_key(), vec!["metroid"]);
    }

    #[test]
    fn retains_not_null_and_enforces_it() {
        let db =
            database_from_ddl("CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, note TEXT)")
                .unwrap();
        let schema = db.table("t").unwrap().schema.clone();
        assert!(schema.columns[1].not_null && !schema.columns[1].primary_key);
        assert!(!schema.columns[2].not_null);
        use crate::value::Value;
        assert!(schema
            .check_row(&[Value::Int(1), Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn database_from_ddl_creates_empty_tables() {
        let db = database_from_ddl("CREATE TABLE t (a INT)").unwrap();
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_create_table("DROP TABLE x").is_err());
        assert!(parse_create_table("CREATE TABLE (a INT)").is_err());
        assert!(parse_create_table("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_create_table("CREATE TABLE t a INT").is_err());
    }
}
