//! A minimal DDL dialect: `CREATE TABLE` statements for catalog/database
//! bootstrap (used by the `xvc` CLI and file-based workflows).
//!
//! ```text
//! CREATE TABLE hotel (
//!     hotelid   INT,
//!     hotelname TEXT,
//!     starrating INT
//! );
//! ```
//!
//! Accepted type names: `INT`/`INTEGER`/`BIGINT` → [`ColumnType::Int`],
//! `FLOAT`/`REAL`/`DOUBLE` → [`ColumnType::Float`], `TEXT`/`STRING`/
//! `VARCHAR`/`CHAR`/`DATE` → [`ColumnType::Str`] (dates are ISO strings in
//! this engine). The column annotations `PRIMARY KEY` and `NOT NULL` are
//! retained on [`ColumnDef`] — they seed the predicate-dataflow fact base
//! and `check_row` enforces NOT NULL on insert. Other trailing tokens up
//! to `,`/`)` (e.g. `DEFAULT 0`, `UNIQUE`) still parse through unrecorded.
//!
//! `CREATE INDEX [name] ON table (column)` declares a secondary index
//! ([`IndexDef`]) on a previously created table — hash-shaped by default,
//! `USING BTREE` for the ordered shape. Prepared plans select index access
//! paths from these declarations.

use crate::error::{Error, Result};
use crate::schema::{Catalog, ColumnDef, ColumnType, IndexDef, IndexKind, TableSchema};
use crate::table::Database;

/// One parsed DDL statement.
enum DdlStatement {
    CreateTable(TableSchema),
    /// `CREATE INDEX ... ON table (column) [USING BTREE]`.
    CreateIndex {
        table: String,
        def: IndexDef,
    },
}

/// Parses a script of `CREATE TABLE` / `CREATE INDEX` statements into a
/// [`Catalog`] (index declarations attach to their table's schema).
pub fn parse_ddl(input: &str) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    for stmt in parse_statements(input)? {
        match stmt {
            DdlStatement::CreateTable(schema) => catalog.add(schema),
            DdlStatement::CreateIndex { table, def } => {
                let schema = catalog.get(&table)?;
                if schema.column_index(&def.column).is_none() {
                    return Err(Error::UnknownColumn {
                        reference: format!("{table}.{}", def.column),
                    });
                }
                let mut schema = schema.clone();
                schema.indexes.push(def);
                catalog.add(schema);
            }
        }
    }
    Ok(catalog)
}

/// Parses a DDL script into an empty [`Database`] (tables created, no
/// rows, declared indexes built).
pub fn database_from_ddl(input: &str) -> Result<Database> {
    let mut db = Database::new();
    for stmt in parse_statements(input)? {
        match stmt {
            DdlStatement::CreateTable(schema) => db.create_table(schema),
            DdlStatement::CreateIndex { table, def } => {
                db.create_index(&table, &def.column, def.kind)?;
            }
        }
    }
    Ok(db)
}

impl Database {
    /// Executes a DDL script against a *live* database: `CREATE TABLE`
    /// adds an empty table, `CREATE INDEX` builds a secondary index over
    /// the table's existing rows. Returns the number of statements
    /// applied.
    ///
    /// This is the runtime counterpart of [`database_from_ddl`] — the
    /// `xvc serve` DDL endpoint routes through it so a long-running
    /// engine can gain indexes mid-flight. Both statement kinds change
    /// the catalog fingerprint, so cached publish plans recompile on the
    /// next request. Statements are applied in order up to the first
    /// error; earlier statements stay applied (no rollback).
    pub fn execute_ddl(&mut self, sql: &str) -> Result<usize> {
        let statements = parse_statements(sql)?;
        let applied = statements.len();
        for stmt in statements {
            match stmt {
                DdlStatement::CreateTable(schema) => {
                    if self.table(&schema.name).is_ok() {
                        return Err(Error::UnexpectedToken {
                            found: format!("'{}'", schema.name),
                            expected: "a table name not already in the database",
                        });
                    }
                    self.create_table(schema);
                }
                DdlStatement::CreateIndex { table, def } => {
                    self.create_index(&table, &def.column, def.kind)?;
                }
            }
        }
        Ok(applied)
    }
}

fn parse_statements(input: &str) -> Result<Vec<DdlStatement>> {
    let mut out = Vec::new();
    // Strip `--` line comments.
    let cleaned: String = input
        .lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for stmt in cleaned.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if strip_keywords(stmt, &["CREATE", "INDEX"]).is_some() {
            out.push(parse_create_index(stmt)?);
        } else {
            out.push(DdlStatement::CreateTable(parse_create_table(stmt)?));
        }
    }
    Ok(out)
}

/// Parses one `CREATE INDEX [name] ON table (column) [USING BTREE]`
/// statement. The index name is accepted and discarded (indexes are
/// identified by table + column); the shape defaults to hash.
fn parse_create_index(stmt: &str) -> Result<DdlStatement> {
    let rest = strip_keywords(stmt.trim(), &["CREATE", "INDEX"]).ok_or_else(|| {
        Error::UnexpectedToken {
            found: format!("'{}'", head(stmt)),
            expected: "CREATE INDEX",
        }
    })?;
    // Optional index name before ON (token-wise, so a name like `online`
    // is not mistaken for the keyword).
    let mut parts = rest.splitn(2, char::is_whitespace);
    let first = parts.next().unwrap_or("");
    let rest = if first.eq_ignore_ascii_case("ON") {
        parts.next().unwrap_or("").trim_start()
    } else {
        strip_keywords(parts.next().unwrap_or(""), &["ON"]).ok_or(Error::UnexpectedEnd {
            expected: "ON after index name",
        })?
    };
    let open = rest.find('(').ok_or(Error::UnexpectedEnd {
        expected: "'(' after table name",
    })?;
    let table = rest[..open].trim();
    if table.is_empty() || !table.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(Error::UnexpectedToken {
            found: format!("'{table}'"),
            expected: "a table name",
        });
    }
    let close = rest.rfind(')').ok_or(Error::UnexpectedEnd {
        expected: "')' closing the column list",
    })?;
    let column = rest[open + 1..close].trim();
    if column.is_empty() || column.contains(',') {
        return Err(Error::UnexpectedToken {
            found: format!("'{column}'"),
            expected: "exactly one indexed column",
        });
    }
    let trailing: Vec<String> = rest[close + 1..]
        .split_whitespace()
        .map(str::to_ascii_uppercase)
        .collect();
    let kind = match trailing.as_slice() {
        [] => IndexKind::Hash,
        [using, shape] if using == "USING" => match shape.as_str() {
            "BTREE" => IndexKind::BTree,
            "HASH" => IndexKind::Hash,
            other => {
                return Err(Error::UnexpectedToken {
                    found: format!("'{other}'"),
                    expected: "USING HASH or USING BTREE",
                })
            }
        },
        other => {
            return Err(Error::UnexpectedToken {
                found: format!("'{}'", other.join(" ")),
                expected: "USING HASH, USING BTREE, or end of statement",
            })
        }
    };
    Ok(DdlStatement::CreateIndex {
        table: table.to_owned(),
        def: IndexDef {
            column: column.to_owned(),
            kind,
        },
    })
}

/// Parses one `CREATE TABLE name (col type, ...)` statement.
pub fn parse_create_table(stmt: &str) -> Result<TableSchema> {
    let rest = strip_keywords(stmt.trim(), &["CREATE", "TABLE"]).ok_or_else(|| {
        Error::UnexpectedToken {
            found: format!("'{}'", head(stmt)),
            expected: "CREATE TABLE",
        }
    })?;
    let open = rest.find('(').ok_or(Error::UnexpectedEnd {
        expected: "'(' after table name",
    })?;
    let name = rest[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(Error::UnexpectedToken {
            found: format!("'{name}'"),
            expected: "a table name",
        });
    }
    let close = rest.rfind(')').ok_or(Error::UnexpectedEnd {
        expected: "')' closing the column list",
    })?;
    let body = &rest[open + 1..close];
    let mut columns = Vec::new();
    for col in split_top_level_commas(body) {
        let col = col.trim();
        if col.is_empty() {
            continue;
        }
        let mut parts = col.split_whitespace();
        let col_name = parts.next().ok_or(Error::UnexpectedEnd {
            expected: "a column name",
        })?;
        let ty_name = parts.next().ok_or(Error::UnexpectedEnd {
            expected: "a column type",
        })?;
        let ty = column_type(ty_name).ok_or_else(|| Error::UnexpectedToken {
            found: format!("'{ty_name}'"),
            expected: "INT/FLOAT/TEXT-family type",
        })?;
        let mut def = ColumnDef::new(col_name, ty);
        // Constraint annotations after the type: `PRIMARY KEY`, `NOT NULL`.
        let trailing: Vec<String> = parts.map(str::to_ascii_uppercase).collect();
        for pair in trailing.windows(2) {
            match (pair[0].as_str(), pair[1].as_str()) {
                ("PRIMARY", "KEY") => def = def.primary_key(),
                ("NOT", "NULL") => def = def.not_null(),
                _ => {}
            }
        }
        columns.push(def);
    }
    TableSchema::new(name, columns)
}

fn head(s: &str) -> &str {
    s.split_whitespace().next().unwrap_or("")
}

fn strip_keywords<'a>(s: &'a str, kws: &[&str]) -> Option<&'a str> {
    let mut rest = s;
    for kw in kws {
        rest = rest.trim_start();
        if rest.len() < kw.len() || !rest[..kw.len()].eq_ignore_ascii_case(kw) {
            return None;
        }
        rest = &rest[kw.len()..];
    }
    Some(rest.trim_start())
}

/// Splits on commas outside parentheses (types like `DECIMAL(10,2)` parse
/// through — the precision is ignored).
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn column_type(name: &str) -> Option<ColumnType> {
    let base = name.split('(').next().unwrap_or(name);
    match base.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(ColumnType::Int),
        "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" => Some(ColumnType::Float),
        "TEXT" | "STRING" | "VARCHAR" | "CHAR" | "DATE" | "TIMESTAMP" => Some(ColumnType::Str),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_table() {
        let s =
            parse_create_table("CREATE TABLE hotel (hotelid INT, hotelname TEXT, starrating INT)")
                .unwrap();
        assert_eq!(s.name, "hotel");
        assert_eq!(s.columns.len(), 3);
        assert_eq!(s.columns[1].ty, ColumnType::Str);
    }

    #[test]
    fn parses_script_with_comments_and_annotations() {
        let catalog = parse_ddl(
            "-- the hotel schema\n\
             CREATE TABLE metroarea (metroid INT PRIMARY KEY, metroname VARCHAR(64));\n\
             create table availability (a_id int, price DECIMAL(10,2), startdate DATE);\n",
        )
        .unwrap();
        assert_eq!(catalog.len(), 2);
        let avail = catalog.get("availability").unwrap();
        assert_eq!(avail.columns[1].ty, ColumnType::Float);
        assert_eq!(avail.columns[2].ty, ColumnType::Str);
        // PRIMARY KEY is retained, not stripped.
        let metro = catalog.get("metroarea").unwrap();
        assert!(metro.columns[0].primary_key);
        assert!(metro.columns[0].not_null);
        assert!(!metro.columns[1].primary_key);
        assert_eq!(metro.primary_key(), vec!["metroid"]);
    }

    #[test]
    fn retains_not_null_and_enforces_it() {
        use crate::value::Value;
        let db =
            database_from_ddl("CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, note TEXT)")
                .unwrap();
        let schema = db.table("t").unwrap().schema.clone();
        assert!(schema.columns[1].not_null && !schema.columns[1].primary_key);
        assert!(!schema.columns[2].not_null);
        assert!(schema
            .check_row(&[Value::Int(1), Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn database_from_ddl_creates_empty_tables() {
        let db = database_from_ddl("CREATE TABLE t (a INT)").unwrap();
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_create_table("DROP TABLE x").is_err());
        assert!(parse_create_table("CREATE TABLE (a INT)").is_err());
        assert!(parse_create_table("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_create_table("CREATE TABLE t a INT").is_err());
    }

    #[test]
    fn create_index_attaches_to_catalog_and_database() {
        let ddl = "CREATE TABLE hotel (hotelid INT, metroid INT);\n\
                   CREATE INDEX idx_metro ON hotel (metroid);\n\
                   CREATE INDEX ON hotel (hotelid) USING BTREE;";
        let catalog = parse_ddl(ddl).unwrap();
        let hotel = catalog.get("hotel").unwrap();
        assert_eq!(hotel.indexes.len(), 2);
        assert_eq!(hotel.index_on("metroid").unwrap().kind, IndexKind::Hash);
        assert_eq!(hotel.index_on("hotelid").unwrap().kind, IndexKind::BTree);

        let db = database_from_ddl(ddl).unwrap();
        let t = db.table("hotel").unwrap();
        assert!(t.index_for(0).is_some() && t.index_for(1).is_some());
        // The database's catalog carries the declarations too.
        assert_eq!(db.catalog().get("hotel").unwrap().indexes.len(), 2);
    }

    #[test]
    fn execute_ddl_builds_index_over_live_rows_and_changes_fingerprint() {
        use crate::value::Value;
        let mut db = database_from_ddl("CREATE TABLE hotel (hotelid INT, metroid INT)").unwrap();
        db.insert("hotel", vec![Value::Int(1), Value::Int(7)])
            .unwrap();
        let before = db.catalog_fingerprint();

        assert_eq!(
            db.execute_ddl("CREATE INDEX ON hotel (metroid) USING BTREE")
                .unwrap(),
            1
        );
        // The index exists over the existing row and the catalog changed.
        assert!(db.table("hotel").unwrap().index_for(1).is_some());
        assert_ne!(db.catalog_fingerprint(), before);

        // CREATE TABLE works at runtime too, but never clobbers a table.
        assert_eq!(db.execute_ddl("CREATE TABLE extra (x INT)").unwrap(), 1);
        assert!(db.execute_ddl("CREATE TABLE hotel (x INT)").is_err());
        assert_eq!(db.table("hotel").unwrap().len(), 1);
    }

    #[test]
    fn create_index_rejects_bad_targets() {
        assert!(parse_ddl("CREATE INDEX i ON nope (x)").is_err());
        assert!(parse_ddl("CREATE TABLE t (a INT); CREATE INDEX i ON t (b)").is_err());
        assert!(parse_ddl("CREATE TABLE t (a INT); CREATE INDEX i ON t (a) USING TRIE").is_err());
        assert!(parse_ddl("CREATE TABLE t (a INT, b INT); CREATE INDEX i ON t (a, b)").is_err());
        assert!(database_from_ddl("CREATE INDEX i ON nope (x)").is_err());
    }
}
