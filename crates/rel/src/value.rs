//! Dynamically typed SQL values.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value. Dates are carried as ISO-8601 strings, which compare
/// correctly lexicographically — the hotel schema's `startdate`/`enddate`
/// need equality and grouping only.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String (also used for dates).
    Str(String),
    /// Boolean (result of comparisons; not a storable column type here).
    Bool(bool),
}

impl Value {
    /// True if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL three-valued-logic truthiness: NULL is "unknown", which filters
    /// treat as false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL (unknown) or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Grouping/ordering key: unlike [`Value::sql_cmp`], NULLs group
    /// together (SQL GROUP BY treats NULLs as equal).
    pub fn group_key(&self) -> GroupKey<'_> {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Num((*i as f64).to_bits()),
            Value::Float(f) => GroupKey::Num(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s),
            Value::Bool(b) => GroupKey::Bool(*b),
        }
    }

    /// Renders the value the way it appears as an XML attribute: integers
    /// without decimal point, floats with, NULL as empty string (the
    /// publisher omits NULL attributes entirely).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

/// Hashable grouping key for a value (see [`Value::group_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey<'a> {
    /// NULL group.
    Null,
    /// Numeric group (bit pattern of the f64; Int(2) and Float(2.0) group
    /// together because both normalize through f64).
    Num(u64),
    /// String group.
    Str(&'a str),
    /// Boolean group.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                // Keep the decimal point so the literal reparses as a
                // float (`3.0`, not `3`).
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert!(!Value::Null.is_truthy());
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn string_comparison_lexicographic() {
        assert_eq!(
            Value::Str("2003-06-09".into()).sql_cmp(&Value::Str("2003-06-12".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn group_keys_normalize_numerics() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Int(2).group_key());
    }

    #[test]
    fn render_for_xml_attributes() {
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(Value::Float(3.0).render(), "3");
        assert_eq!(Value::Float(3.5).render(), "3.5");
        assert_eq!(Value::Str("chicago".into()).render(), "chicago");
        assert_eq!(Value::Null.render(), "");
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Str("o'hare".into()).to_string(), "'o''hare'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
