//! SQL parser for the fragment used by tag queries and the composition
//! algorithm. Keywords are case-insensitive; identifiers are kept verbatim.
//!
//! Supported grammar (informally):
//!
//! ```text
//! query    := SELECT [DISTINCT] item (',' item)*
//!             FROM fromitem (',' fromitem)*
//!             [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
//! item     := '*' | ident '.' '*' | expr [AS ident]
//! fromitem := ident [AS ident] | '(' query ')' AS ident
//! expr     := or-expr with AND/OR/NOT, comparisons (= <> != < <= > >=),
//!             + - * /, EXISTS '(' query ')', expr IS [NOT] NULL,
//!             aggregates SUM/COUNT/AVG/MIN/MAX, params $var.column,
//!             numbers, 'strings', NULL, parenthesized expressions
//! ```

use crate::ast::{AggFunc, BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::error::{Error, Result};
use crate::value::Value;

/// Parses a single SELECT query from SQL text.
///
/// ```
/// let q = xvc_rel::parse_query(
///     "SELECT metroid, metroname FROM metroarea WHERE metroid > 3",
/// ).unwrap();
/// assert_eq!(q.select.len(), 2);
/// ```
pub fn parse_query(input: &str) -> Result<SelectQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    match p.peek() {
        None => Ok(q),
        Some(t) => Err(Error::TrailingTokens {
            found: t.to_string(),
        }),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// Keyword or identifier (original case preserved in `String`, keyword
    /// matching is case-insensitive).
    Word(String),
    /// A numeric literal; the flag records whether the source had a
    /// decimal point (so `3.0` stays a float and `3` an integer).
    Number(f64, bool),
    Str(String),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Dollar,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Word(w) => write!(f, "'{w}'"),
            Token::Number(n, _) => write!(f, "number {n}"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Comma => write!(f, "','"),
            Token::Dot => write!(f, "'.'"),
            Token::Star => write!(f, "'*'"),
            Token::LParen => write!(f, "'('"),
            Token::RParen => write!(f, "')'"),
            Token::Dollar => write!(f, "'$'"),
            Token::Eq => write!(f, "'='"),
            Token::Ne => write!(f, "'<>'"),
            Token::Lt => write!(f, "'<'"),
            Token::Le => write!(f, "'<='"),
            Token::Gt => write!(f, "'>'"),
            Token::Ge => write!(f, "'>='"),
            Token::Plus => write!(f, "'+'"),
            Token::Minus => write!(f, "'-'"),
            Token::Slash => write!(f, "'/'"),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(offset, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '$' => {
                chars.next();
                out.push(Token::Dollar);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '-' => {
                chars.next();
                out.push(Token::Minus);
            }
            '/' => {
                chars.next();
                out.push(Token::Slash);
            }
            '!' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token::Ne);
                } else {
                    return Err(Error::Lex { found: '!', offset });
                }
            }
            '<' => {
                chars.next();
                match chars.peek().map(|&(_, c)| c) {
                    Some('=') => {
                        chars.next();
                        out.push(Token::Le);
                    }
                    Some('>') => {
                        chars.next();
                        out.push(Token::Ne);
                    }
                    _ => out.push(Token::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some((_, '\'')) => {
                            // '' is an escaped quote.
                            if chars.peek().map(|&(_, c)| c) == Some('\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some((_, c)) => s.push(c),
                        None => {
                            return Err(Error::UnexpectedEnd {
                                expected: "closing quote",
                            })
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while matches!(chars.peek(), Some(&(_, d)) if d.is_ascii_digit() || d == '.') {
                    text.push(chars.next().unwrap().1);
                }
                let n = text
                    .parse::<f64>()
                    .map_err(|_| Error::Lex { found: c, offset })?;
                out.push(Token::Number(n, text.contains('.')));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut w = String::new();
                while matches!(chars.peek(), Some(&(_, d)) if d.is_alphanumeric() || d == '_') {
                    w.push(chars.next().unwrap().1);
                }
                out.push(Token::Word(w));
            }
            _ => return Err(Error::Lex { found: c, offset }),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => Err(Error::UnexpectedToken {
                    found: t.to_string(),
                    expected: kw,
                }),
                None => Err(Error::UnexpectedEnd { expected: kw }),
            }
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String> {
        match self.bump() {
            Some(Token::Word(w)) => Ok(w),
            Some(t) => Err(Error::UnexpectedToken {
                found: t.to_string(),
                expected,
            }),
            None => Err(Error::UnexpectedEnd { expected }),
        }
    }

    fn expect(&mut self, t: &Token, expected: &'static str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            match self.peek() {
                Some(found) => Err(Error::UnexpectedToken {
                    found: found.to_string(),
                    expected,
                }),
                None => Err(Error::UnexpectedEnd { expected }),
            }
        }
    }

    fn query(&mut self) -> Result<SelectQuery> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut select = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let mut q = SelectQuery {
            distinct,
            select,
            from,
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        };
        if self.eat_keyword("WHERE") {
            q.where_clause = Some(self.expr()?);
        }
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            q.group_by.push(self.expr()?);
            while self.eat(&Token::Comma) {
                q.group_by.push(self.expr()?);
            }
        }
        if self.eat_keyword("HAVING") {
            q.having = Some(self.expr()?);
        }
        Ok(q)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Star);
        }
        // `ident.*` → qualified star.
        if let (Some(Token::Word(w)), Some(Token::Dot), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let alias = w.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedStar(alias));
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident("alias after AS")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        // `OUTER (…) AS alias`: preserved-side derived table (see
        // `TableRef::Derived::preserved`).
        let preserved = self.eat_keyword("OUTER");
        if self.eat(&Token::LParen) {
            let q = self.query()?;
            self.expect(&Token::RParen, "')'")?;
            self.expect_keyword("AS")?;
            let alias = self.ident("derived-table alias")?;
            return Ok(TableRef::Derived {
                query: Box::new(q),
                alias,
                preserved,
            });
        }
        if preserved {
            return Err(Error::UnexpectedToken {
                found: "OUTER".into(),
                expected: "'(' after OUTER",
            });
        }
        let name = self.ident("table name")?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident("alias after AS")?)
        } else if matches!(self.peek(), Some(Token::Word(w))
            if !is_clause_keyword(w))
        {
            // `FROM hotel h` implicit alias.
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    // Expressions, precedence climbing: OR < AND < NOT < cmp < add < mul.

    fn expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = ScalarExpr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = ScalarExpr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<ScalarExpr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(ScalarExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<ScalarExpr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL postfix.
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let e = ScalarExpr::IsNull(Box::new(lhs));
            return Ok(if negated {
                ScalarExpr::Not(Box::new(e))
            } else {
                e
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(ScalarExpr::binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = ScalarExpr::binary(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<ScalarExpr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = ScalarExpr::binary(op, lhs, rhs);
        }
    }

    fn primary(&mut self) -> Result<ScalarExpr> {
        match self.peek().cloned() {
            Some(Token::Number(n, is_float)) => {
                self.bump();
                if !is_float && n.fract() == 0.0 && n.abs() < 1e15 {
                    Ok(ScalarExpr::Literal(Value::Int(n as i64)))
                } else {
                    Ok(ScalarExpr::Literal(Value::Float(n)))
                }
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(ScalarExpr::Literal(Value::Str(s)))
            }
            Some(Token::Minus) => {
                self.bump();
                let inner = self.primary()?;
                Ok(ScalarExpr::binary(BinOp::Sub, ScalarExpr::int(0), inner))
            }
            Some(Token::Dollar) => {
                self.bump();
                let var = self.ident("binding-variable name after '$'")?;
                self.expect(&Token::Dot, "'.' after binding variable")?;
                let column = self.ident("column after '$var.'")?;
                Ok(ScalarExpr::Param { var, column })
            }
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Word(w)) => {
                if w.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(ScalarExpr::Literal(Value::Null));
                }
                if w.eq_ignore_ascii_case("EXISTS") {
                    self.bump();
                    self.expect(&Token::LParen, "'(' after EXISTS")?;
                    let q = self.query()?;
                    self.expect(&Token::RParen, "')'")?;
                    return Ok(ScalarExpr::Exists(Box::new(q)));
                }
                if let Some(func) = agg_func(&w) {
                    if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                        self.bump();
                        self.bump();
                        let arg = if self.eat(&Token::Star) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect(&Token::RParen, "')'")?;
                        return Ok(ScalarExpr::Aggregate { func, arg });
                    }
                }
                // Plain or qualified column.
                self.bump();
                if self.eat(&Token::Dot) {
                    let name = self.ident("column after '.'")?;
                    Ok(ScalarExpr::Column {
                        qualifier: Some(w),
                        name,
                    })
                } else {
                    Ok(ScalarExpr::Column {
                        qualifier: None,
                        name: w,
                    })
                }
            }
            Some(t) => Err(Error::UnexpectedToken {
                found: t.to_string(),
                expected: "an expression",
            }),
            None => Err(Error::UnexpectedEnd {
                expected: "an expression",
            }),
        }
    }
}

fn agg_func(w: &str) -> Option<AggFunc> {
    match w.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn is_clause_keyword(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "WHERE" | "GROUP" | "HAVING" | "ORDER" | "AS" | "ON" | "FROM" | "SELECT" | "OUTER"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_tag_queries() {
        // Every tag query from Figure 1 (and the composed queries' shapes).
        for src in [
            "SELECT metroid, metroname FROM metroarea",
            "SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4",
            "SELECT SUM(capacity) FROM confroom WHERE chotel_id=$h.hotelid",
            "SELECT SUM(capacity) FROM confroom, hotel \
             WHERE chotel_id=hotelid AND metro_id=$m.metroid",
            "SELECT * FROM confroom WHERE chotel_id=$h.hotelid",
            "SELECT COUNT(a_id), startdate FROM availability, guestroom \
             WHERE rhotel_id=$h.hotelid AND a_r_id=r_id GROUP BY startdate",
            "SELECT COUNT(a_id) FROM availability, guestroom, hotel \
             WHERE rhotel_id=hotelid AND a_r_id=r_id AND metro_id=$m.metroid \
             AND startdate=$a.startdate",
        ] {
            parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn parses_derived_table_with_group_by_all() {
        let q = parse_query(
            "SELECT SUM(capacity), TEMP.* \
             FROM confroom, (SELECT * FROM hotel \
                             WHERE metro_id=$m.metroid AND starrating > 4) AS TEMP \
             WHERE chotel_id=TEMP.hotelid \
             GROUP BY TEMP.hotelid, TEMP.gym",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert!(matches!(q.select[1], SelectItem::QualifiedStar(ref a) if a == "TEMP"));
        assert!(matches!(q.from[1], TableRef::Derived { .. }));
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.parameters(), vec!["m".to_owned()]);
    }

    #[test]
    fn parses_exists_with_having() {
        fn count_exists(e: &ScalarExpr, n: &mut usize) {
            match e {
                ScalarExpr::Exists(_) => *n += 1,
                ScalarExpr::Binary { lhs, rhs, .. } => {
                    count_exists(lhs, n);
                    count_exists(rhs, n);
                }
                ScalarExpr::Not(e) => count_exists(e, n),
                _ => {}
            }
        }
        let q = parse_query(
            "SELECT * FROM confroom \
             WHERE chotel_id=$s_new.hotelid \
             AND EXISTS (SELECT COUNT(a_id), startdate \
                         FROM availability, guestroom \
                         WHERE rhotel_id=$s_new.hotelid AND a_r_id=r_id \
                         GROUP BY startdate) \
             AND EXISTS (SELECT SUM(capacity) FROM confroom \
                         WHERE chotel_id=$s_new.hotelid \
                         HAVING SUM(capacity)>100)",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let mut count = 0;
        count_exists(&w, &mut count);
        assert_eq!(count, 2);
    }

    #[test]
    fn roundtrips_through_printer() {
        let srcs = [
            "SELECT metroid, metroname FROM metroarea",
            "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
            "SELECT COUNT(*) AS n, startdate FROM availability GROUP BY startdate",
            "SELECT SUM(capacity), TEMP.* FROM confroom, \
             (SELECT * FROM hotel WHERE starrating > 4) AS TEMP \
             WHERE chotel_id = TEMP.hotelid GROUP BY TEMP.hotelid",
            "SELECT * FROM t WHERE NOT (x IS NULL) OR y = 'a''b'",
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u_id = t_id)",
        ];
        for src in srcs {
            let q1 = parse_query(src).unwrap();
            let q2 = parse_query(&q1.to_sql()).unwrap();
            assert_eq!(q1, q2, "{src}");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("select a from t where a > 1 group by a having count(*) > 2").unwrap();
        assert!(q.having.is_some());
    }

    #[test]
    fn implicit_and_explicit_aliases() {
        let q = parse_query("SELECT h.hotelid FROM hotel h, metroarea AS m").unwrap();
        assert_eq!(q.from[0].binding_name(), "h");
        assert_eq!(q.from[1].binding_name(), "m");
    }

    #[test]
    fn distinct_flag() {
        assert!(parse_query("SELECT DISTINCT a FROM t").unwrap().distinct);
        assert!(!parse_query("SELECT a FROM t").unwrap().distinct);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_query("SELECT FROM t"),
            Err(Error::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse_query("SELECT a"),
            Err(Error::UnexpectedEnd { .. }) | Err(Error::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse_query("SELECT a FROM t extra junk ="),
            Err(Error::TrailingTokens { .. }) | Err(Error::UnexpectedToken { .. })
        ));
        assert!(matches!(
            parse_query("SELECT a FROM (SELECT b FROM u)"),
            Err(Error::UnexpectedEnd { .. }) | Err(Error::UnexpectedToken { .. })
        ));
        assert!(matches!(parse_query(""), Err(Error::UnexpectedEnd { .. })));
    }

    #[test]
    fn string_escape() {
        let q = parse_query("SELECT * FROM t WHERE a = 'o''hare'").unwrap();
        let Some(ScalarExpr::Binary { rhs, .. }) = q.where_clause else {
            panic!()
        };
        assert_eq!(*rhs, ScalarExpr::Literal(Value::Str("o'hare".into())));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.select[0] else {
            panic!()
        };
        let ScalarExpr::Binary { op, rhs, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, ScalarExpr::Binary { op: BinOp::Mul, .. }));
    }
}
