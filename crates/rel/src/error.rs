//! Error type for the relational engine.

use std::fmt;

/// Result alias used throughout `xvc-rel`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or evaluating SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error in SQL text.
    Lex {
        /// The offending character.
        found: char,
        /// Byte offset in the SQL source.
        offset: usize,
    },
    /// The SQL text ended prematurely.
    UnexpectedEnd {
        /// What the parser expected next.
        expected: &'static str,
    },
    /// A token that is not legal at this position.
    UnexpectedToken {
        /// Rendering of the offending token.
        found: String,
        /// What the parser expected instead.
        expected: &'static str,
    },
    /// Trailing tokens after a complete statement.
    TrailingTokens {
        /// Rendering of the first extra token.
        found: String,
    },
    /// Reference to a table that does not exist in the catalog.
    UnknownTable {
        /// The table name.
        name: String,
    },
    /// A column reference could not be resolved in any scope.
    UnknownColumn {
        /// The reference as written (possibly qualified).
        reference: String,
    },
    /// A column name resolves in more than one FROM item.
    AmbiguousColumn {
        /// The ambiguous name.
        name: String,
    },
    /// A `$var.column` parameter was not bound at evaluation time.
    UnboundParameter {
        /// The binding-variable name.
        var: String,
    },
    /// A `$var.column` parameter referenced a column the binding tuple
    /// does not carry.
    ParameterColumn {
        /// The binding-variable name.
        var: String,
        /// The missing column.
        column: String,
    },
    /// Two FROM items use the same alias.
    DuplicateAlias {
        /// The repeated alias.
        alias: String,
    },
    /// An aggregate appeared where aggregates are not allowed (e.g. WHERE).
    MisplacedAggregate,
    /// A typed operation was applied to incompatible values.
    Type {
        /// Human-readable explanation.
        reason: String,
    },
    /// A table was created or loaded with rows that do not fit its schema.
    SchemaMismatch {
        /// Human-readable explanation.
        reason: String,
    },
    /// The paged storage layer failed (I/O error, oversized row, exhausted
    /// buffer pool, invalid index definition). I/O causes are stringified
    /// so the error stays `Clone`/`PartialEq` like every other variant.
    Storage {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { found, offset } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            Error::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of SQL; expected {expected}")
            }
            Error::UnexpectedToken { found, expected } => {
                write!(f, "unexpected token {found}; expected {expected}")
            }
            Error::TrailingTokens { found } => {
                write!(f, "trailing tokens after statement, starting at {found}")
            }
            Error::UnknownTable { name } => write!(f, "unknown table {name:?}"),
            Error::UnknownColumn { reference } => {
                write!(f, "unknown column {reference:?}")
            }
            Error::AmbiguousColumn { name } => write!(f, "ambiguous column {name:?}"),
            Error::UnboundParameter { var } => write!(f, "unbound parameter ${var}"),
            Error::ParameterColumn { var, column } => {
                write!(f, "parameter ${var} has no column {column:?}")
            }
            Error::DuplicateAlias { alias } => {
                write!(f, "duplicate FROM alias {alias:?}")
            }
            Error::MisplacedAggregate => {
                write!(f, "aggregate function not allowed in this clause")
            }
            Error::Type { reason } => write!(f, "type error: {reason}"),
            Error::SchemaMismatch { reason } => write!(f, "schema mismatch: {reason}"),
            Error::Storage { reason } => write!(f, "storage error: {reason}"),
        }
    }
}

impl std::error::Error for Error {}
