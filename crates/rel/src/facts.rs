//! Conjunct-level fact analysis of SELECT queries (§4.2.1).
//!
//! [`analyze_query`] walks a query's FROM/WHERE/HAVING under a
//! [`FactSet`] — a map from column keys to [`ColumnDomain`]s with recorded
//! provenance — seeded from DDL constraints (`NOT NULL` / `PRIMARY KEY`,
//! retained by `ddl.rs`) and from *inherited* facts about `$bv.column`
//! parameters supplied by the caller (the TVQ dataflow pass flows a
//! parent's output-column domains into its descendants). It derives:
//!
//! * **contradictions** — a WHERE/HAVING conjunction provably false under
//!   three-valued logic, with the justifying fact chain;
//! * **emptiness** — whether the query provably yields zero rows (an
//!   implicitly aggregating query still yields one row when its WHERE is
//!   unsatisfiable, so contradiction ≠ emptiness);
//! * **redundant conjuncts** — entailed by inherited/DDL facts or earlier
//!   conjuncts, safe to drop;
//! * **tautological / empty EXISTS** subqueries;
//! * **NULL comparisons** that can never bind a row;
//! * **key-implied duplicate joins** (diagnostic candidates only — never
//!   used for pruning);
//! * **output-column facts** for propagation to child TVQ nodes.
//!
//! Column keys are textual and scoped to one query: `alias.column` for
//! resolved table columns, `$bv.column` for parameters, and the rendered
//! SQL text for aggregate expressions (so `HAVING SUM(x) > 100 AND
//! SUM(x) < 50` is recognized as contradictory). EXISTS subqueries get a
//! fresh scope seeded with the parameter facts only.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::domain::{Assumption, Card, CardBound, ColumnDomain};
use crate::eval::output_columns;
use crate::print::expr_to_sql_inline;
use crate::schema::Catalog;
use crate::value::Value;

/// One column's accumulated domain plus the human-readable facts that
/// produced it (the *fact chain* justifying any decision based on it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FactEntry {
    /// The abstract value-set.
    pub domain: ColumnDomain,
    /// One line per fact applied, e.g. `DDL: hotel.hotelid PRIMARY KEY`
    /// or a conjunct reference like `starrating > 4`.
    pub sources: Vec<String>,
}

/// A set of facts: column key → domain + provenance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FactSet {
    entries: BTreeMap<String, FactEntry>,
}

/// The key under which facts about `$var.column` are stored.
pub fn param_key(var: &str, column: &str) -> String {
    format!("${var}.{column}")
}

impl FactSet {
    /// An empty fact set.
    pub fn new() -> Self {
        FactSet::default()
    }

    /// True if no facts are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a whole entry (seeding). An existing entry for the key is
    /// replaced.
    pub fn insert(&mut self, key: impl Into<String>, entry: FactEntry) {
        self.entries.insert(key.into(), entry);
    }

    /// The entry for a key, if any fact is recorded.
    pub fn get(&self, key: &str) -> Option<&FactEntry> {
        self.entries.get(key)
    }

    /// Iterates `(key, entry)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &FactEntry)> {
        self.entries.iter()
    }

    /// The subset of facts about `$bv.column` parameters — the only facts
    /// that remain valid inside a subquery scope.
    pub fn params_only(&self) -> FactSet {
        FactSet {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| k.starts_with('$'))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Assumes `key op v` TRUE; returns the outcome and, for
    /// `Contradiction`/`Redundant`, the justifying chain.
    fn assume_cmp(&mut self, key: &str, op: BinOp, v: &Value, source: &str) -> Outcome {
        self.assume_with(key, source, |d| d.assume_cmp(op, v))
    }

    fn assume_non_null(&mut self, key: &str, source: &str) -> Outcome {
        self.assume_with(key, source, ColumnDomain::assume_non_null)
    }

    fn assume_null(&mut self, key: &str, source: &str) -> Outcome {
        self.assume_with(key, source, ColumnDomain::assume_null)
    }

    fn assume_with(
        &mut self,
        key: &str,
        source: &str,
        f: impl FnOnce(&mut ColumnDomain) -> Assumption,
    ) -> Outcome {
        let entry = self.entries.entry(key.to_owned()).or_default();
        let prior = entry.sources.clone();
        match f(&mut entry.domain) {
            Assumption::Contradiction => {
                let mut chain = prior;
                chain.push(source.to_owned());
                Outcome {
                    assumption: Assumption::Contradiction,
                    chain,
                }
            }
            Assumption::Redundant => Outcome {
                assumption: Assumption::Redundant,
                chain: prior,
            },
            Assumption::Narrowed => {
                entry.sources.push(source.to_owned());
                Outcome {
                    assumption: Assumption::Narrowed,
                    chain: Vec::new(),
                }
            }
        }
    }
}

struct Outcome {
    assumption: Assumption,
    chain: Vec<String>,
}

/// Which clause a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClauseKind {
    /// The WHERE clause.
    Where,
    /// The HAVING clause.
    Having,
}

/// A provably false conjunct, with the facts that conflict with it.
#[derive(Debug, Clone, PartialEq)]
pub struct Contradiction {
    /// The clause the conjunct sits in.
    pub clause: ClauseKind,
    /// Rendered conjunct.
    pub conjunct: String,
    /// Facts that make it false, oldest first (the chain ends with the
    /// conjunct itself).
    pub chain: Vec<String>,
}

/// A conjunct entailed by the facts in force before it.
#[derive(Debug, Clone, PartialEq)]
pub struct Redundancy {
    /// The clause the conjunct sits in.
    pub clause: ClauseKind,
    /// Index in the flattened conjunct list of that clause (see
    /// [`conjuncts`]); used by [`drop_redundant_conjuncts`].
    pub index: usize,
    /// Rendered conjunct.
    pub conjunct: String,
    /// Facts that entail it.
    pub chain: Vec<String>,
    /// True when the conjunct is an `EXISTS` (or `NOT EXISTS`) whose
    /// subquery provably yields rows (resp. none).
    pub tautological_exists: bool,
}

/// Result of [`analyze_query`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryAnalysis {
    /// First provable contradiction, if any.
    pub contradiction: Option<Contradiction>,
    /// The query provably yields zero rows. Not implied by
    /// `contradiction`: an implicitly aggregating query with an
    /// unsatisfiable WHERE still yields one all-NULL row.
    pub empty: bool,
    /// Fact chain justifying `empty`.
    pub empty_chain: Vec<String>,
    /// Conjuncts that can be dropped without changing the result.
    pub redundant: Vec<Redundancy>,
    /// Comparisons that can never bind (NULL literal operand, or
    /// `IS NULL` on a NOT NULL column).
    pub null_compares: Vec<String>,
    /// Key-implied duplicate-join candidates (diagnostic only).
    pub dup_joins: Vec<String>,
    /// Facts about the query's output columns, keyed by output name.
    pub out_facts: BTreeMap<String, FactEntry>,
    /// The `$bv.column` facts in force after the WHERE/HAVING clauses —
    /// the inherited facts, possibly narrowed by this query's conjuncts.
    /// Only populated when no contradiction poisoned the clause walk.
    ///
    /// Narrowed parameter facts hold wherever a *row of this query*
    /// exists, so callers may propagate them to TVQ descendants — but not
    /// for implicitly aggregating queries, which yield a row even when
    /// their WHERE is false for every underlying tuple.
    pub param_facts: FactSet,
}

/// Flattens a predicate into its top-level AND conjuncts, left to right.
pub fn conjuncts(pred: &ScalarExpr) -> Vec<&ScalarExpr> {
    fn walk<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
        match e {
            ScalarExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            _ => out.push(e),
        }
    }

    let mut out = Vec::new();
    walk(pred, &mut out);
    out
}

fn conjuncts_owned(pred: ScalarExpr) -> Vec<ScalarExpr> {
    fn walk(e: ScalarExpr, out: &mut Vec<ScalarExpr>) {
        match e {
            ScalarExpr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                walk(*lhs, out);
                walk(*rhs, out);
            }
            other => out.push(other),
        }
    }

    let mut out = Vec::new();
    walk(pred, &mut out);
    out
}

fn refold(parts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    parts
        .into_iter()
        .reduce(|acc, p| ScalarExpr::binary(BinOp::And, acc, p))
}

/// Name-resolution scope of one query: which FROM item provides each
/// column, plus the declaration-ordered column layout (for `*`).
struct Scope {
    providers: BTreeMap<String, Vec<String>>,
    layout: Vec<(String, Vec<String>)>,
    /// Binding name → base-table name, for `Named` FROM items.
    tables: BTreeMap<String, String>,
}

impl Scope {
    fn build(from: &[TableRef], catalog: &Catalog) -> Scope {
        let mut providers: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut layout = Vec::new();
        let mut tables = BTreeMap::new();
        for t in from {
            let binding = t.binding_name().to_owned();
            let cols: Vec<String> = match t {
                TableRef::Named { name, .. } => {
                    tables.insert(binding.clone(), name.clone());
                    catalog
                        .get(name)
                        .map(super::schema::TableSchema::column_names)
                        .unwrap_or_default()
                }
                TableRef::Derived { query, .. } => {
                    output_columns(query, catalog).unwrap_or_default()
                }
            };
            for c in &cols {
                providers
                    .entry(c.clone())
                    .or_default()
                    .push(binding.clone());
            }
            layout.push((binding, cols));
        }
        Scope {
            providers,
            layout,
            tables,
        }
    }

    /// Canonical fact key for a column reference.
    fn key_of(&self, qualifier: Option<&str>, name: &str) -> String {
        if let Some(q) = qualifier {
            return format!("{q}.{name}");
        }
        match self.providers.get(name).map(Vec::as_slice) {
            Some([unique]) => format!("{unique}.{name}"),
            _ => name.to_owned(), // ambiguous or unknown: its own bucket
        }
    }
}

fn is_preserved(t: &TableRef) -> bool {
    matches!(
        t,
        TableRef::Derived {
            preserved: true,
            ..
        }
    )
}

/// One side of a comparison conjunct, normalized.
enum Side<'a> {
    /// Column / parameter / aggregate reference: `(fact key, display)`.
    Ref(String, String),
    /// A literal value.
    Lit(&'a Value),
    /// Anything else (arithmetic, OR, nested subquery...).
    Opaque,
}

fn side_of<'a>(e: &'a ScalarExpr, scope: &Scope) -> Side<'a> {
    match e {
        ScalarExpr::Column { qualifier, name } => {
            let key = scope.key_of(qualifier.as_deref(), name);
            Side::Ref(key, expr_to_sql_inline(e))
        }
        ScalarExpr::Param { var, column } => {
            Side::Ref(param_key(var, column), expr_to_sql_inline(e))
        }
        ScalarExpr::Aggregate { .. } => {
            let text = expr_to_sql_inline(e);
            Side::Ref(text.clone(), text)
        }
        ScalarExpr::Literal(v) => Side::Lit(v),
        _ => Side::Opaque,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other, // Eq / Ne are symmetric
    }
}

/// Analyzes one query under inherited parameter facts. `inherited` should
/// contain only `$bv.column` keys (anything else is filtered out).
pub fn analyze_query(q: &SelectQuery, catalog: &Catalog, inherited: &FactSet) -> QueryAnalysis {
    let mut a = QueryAnalysis::default();
    let scope = Scope::build(&q.from, catalog);
    let mut facts = inherited.params_only();
    let any_preserved = q.from.iter().any(is_preserved);

    // Seed facts from the FROM clause: DDL constraints for base tables,
    // recursive analysis for derived tables. When some *other* FROM item
    // has preserved (left-outer) semantics, this item's columns may be
    // NULL-padded, so its non-NULL facts are weakened.
    for t in &q.from {
        let binding = t.binding_name().to_owned();
        let padded = any_preserved && !is_preserved(t);
        match t {
            TableRef::Named { name, .. } => {
                if let Ok(schema) = catalog.get(name) {
                    for col in &schema.columns {
                        if col.rejects_null() && !padded {
                            let kind = if col.primary_key {
                                "PRIMARY KEY"
                            } else {
                                "NOT NULL"
                            };
                            facts.insert(
                                format!("{binding}.{}", col.name),
                                FactEntry {
                                    domain: ColumnDomain::not_null(),
                                    sources: vec![format!("DDL: {}.{} {kind}", name, col.name)],
                                },
                            );
                        }
                    }
                }
            }
            TableRef::Derived {
                query, preserved, ..
            } => {
                let sub = analyze_query(query, catalog, &facts);
                if sub.empty && (*preserved || !any_preserved) && !a.empty {
                    a.empty = true;
                    a.empty_chain = std::iter::once(format!(
                        "derived table `{binding}` provably yields no rows"
                    ))
                    .chain(sub.empty_chain.iter().cloned())
                    .collect();
                }
                for (col, entry) in &sub.out_facts {
                    let mut domain = entry.domain.clone();
                    if padded {
                        domain.non_null = false;
                        domain.null_only = false;
                    }
                    if !domain.is_top() {
                        facts.insert(
                            format!("{binding}.{col}"),
                            FactEntry {
                                domain,
                                sources: entry.sources.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    // Preserved (`OUTER`) padding re-adds baseline rows that never
    // satisfied the WHERE clause, so conjunct-narrowed facts hold only for
    // *matched* rows, not for everything the block emits. Snapshot the
    // seed-time facts (DDL + derived-table facts, already weakened for
    // padded items above): they are the strongest statements that survive
    // padding, and the only ones safe to export from this block.
    let seed_facts = if any_preserved {
        Some(facts.clone())
    } else {
        None
    };

    // WHERE conjuncts.
    if let Some(w) = &q.where_clause {
        analyze_clause(ClauseKind::Where, w, &scope, catalog, &mut facts, &mut a);
    }

    let implicit_agg = q.is_aggregating() && q.group_by.is_empty();

    // HAVING conjuncts, over the same fact set (group columns keep their
    // WHERE-level facts; aggregates get their own keys). Every group of a
    // grouped query holds at least one row.
    if a.contradiction.is_none() {
        if let Some(h) = &q.having {
            if !q.group_by.is_empty() {
                facts.insert(
                    expr_to_sql_inline(&ScalarExpr::Aggregate {
                        func: crate::ast::AggFunc::Count,
                        arg: None,
                    }),
                    FactEntry {
                        domain: ColumnDomain {
                            lo: Some((Value::Int(1), true)),
                            non_null: true,
                            ..ColumnDomain::default()
                        },
                        sources: vec!["every group contains at least one row".to_owned()],
                    },
                );
            }
            analyze_clause(ClauseKind::Having, h, &scope, catalog, &mut facts, &mut a);
        }
    }

    // Emptiness: a false WHERE kills every row unless the query is an
    // implicit (ungrouped) aggregation, which still yields one row — or a
    // preserved FROM item pads its baseline back in regardless of the
    // filter, in which case the block is non-empty whenever the baseline
    // is (unknowable statically); a false HAVING filters even that group
    // out in either case.
    if !a.empty {
        if let Some(c) = &a.contradiction {
            let dead = match c.clause {
                ClauseKind::Where => !implicit_agg && !any_preserved,
                ClauseKind::Having => true,
            };
            if dead {
                a.empty = true;
                a.empty_chain = c.chain.clone();
                if a.empty_chain.last() != Some(&c.conjunct) {
                    a.empty_chain.push(c.conjunct.clone());
                }
            }
        }
    }

    // Output-column facts (only when the query can actually yield rows —
    // callers prune empty nodes before propagating). Under preserved
    // padding, export the seed-time snapshot: padded rows bypass the
    // WHERE clause, so conjunct-narrowed column facts (and narrowed
    // parameter facts) do not hold for every emitted row.
    if a.contradiction.is_none() || any_preserved {
        let export = seed_facts.as_ref().unwrap_or(&facts);
        collect_out_facts(q, &scope, export, &mut a.out_facts);
        a.param_facts = export.params_only();
    }
    a
}

fn collect_out_facts(
    q: &SelectQuery,
    scope: &Scope,
    facts: &FactSet,
    out: &mut BTreeMap<String, FactEntry>,
) {
    let mut push = |name: &str, entry: FactEntry| {
        if !entry.domain.is_top() {
            out.entry(name.to_owned()).or_insert(entry);
        }
    };
    for item in &q.select {
        match item {
            SelectItem::Expr { expr, alias } => match expr {
                ScalarExpr::Column { qualifier, name } => {
                    let key = scope.key_of(qualifier.as_deref(), name);
                    if let Some(e) = facts.get(&key) {
                        push(alias.as_deref().unwrap_or(name), e.clone());
                    }
                }
                ScalarExpr::Literal(v) if !v.is_null() => {
                    if let Some(name) = alias {
                        push(
                            name,
                            FactEntry {
                                domain: ColumnDomain {
                                    eq: Some(v.clone()),
                                    non_null: true,
                                    ..ColumnDomain::default()
                                },
                                sources: vec![format!("selected literal {}", v.render())],
                            },
                        );
                    }
                }
                _ => {}
            },
            SelectItem::Star => {
                for (binding, cols) in &scope.layout {
                    for col in cols {
                        if let Some(e) = facts.get(&format!("{binding}.{col}")) {
                            push(col, e.clone());
                        }
                    }
                }
            }
            SelectItem::QualifiedStar(binding) => {
                if let Some((_, cols)) = scope.layout.iter().find(|(b, _)| b == binding) {
                    for col in cols {
                        if let Some(e) = facts.get(&format!("{binding}.{col}")) {
                            push(col, e.clone());
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn analyze_clause(
    clause: ClauseKind,
    pred: &ScalarExpr,
    scope: &Scope,
    catalog: &Catalog,
    facts: &mut FactSet,
    a: &mut QueryAnalysis,
) {
    for (index, conjunct) in conjuncts(pred).into_iter().enumerate() {
        if a.contradiction.is_some() {
            return; // facts after a contradiction are meaningless
        }
        let display = expr_to_sql_inline(conjunct);
        let source = format!("conjunct `{display}`");
        let mut contradiction = |chain: Vec<String>, a: &mut QueryAnalysis| {
            a.contradiction = Some(Contradiction {
                clause,
                conjunct: display.clone(),
                chain,
            });
        };
        let redundancy = |chain: Vec<String>, tautological_exists: bool| Redundancy {
            clause,
            index,
            conjunct: display.clone(),
            chain,
            tautological_exists,
        };
        match conjunct {
            ScalarExpr::Literal(v) => {
                if v.is_truthy() {
                    a.redundant
                        .push(redundancy(vec!["the literal is TRUE".to_owned()], false));
                } else {
                    contradiction(vec!["the literal is never TRUE".to_owned()], a);
                }
            }
            ScalarExpr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (lhs_side, rhs_side) = (side_of(lhs, scope), side_of(rhs, scope));
                match (lhs_side, rhs_side) {
                    (Side::Ref(_, _), Side::Lit(v)) | (Side::Lit(v), Side::Ref(_, _))
                        if v.is_null() =>
                    {
                        a.null_compares
                            .push(format!("`{display}`: comparison with NULL is never TRUE"));
                        contradiction(vec!["comparison with NULL is never TRUE".to_owned()], a);
                    }
                    (Side::Ref(key, _), Side::Lit(v)) => {
                        apply_cmp(
                            facts,
                            &key,
                            *op,
                            v,
                            &source,
                            &redundancy,
                            &mut contradiction,
                            a,
                        );
                    }
                    (Side::Lit(v), Side::Ref(key, _)) => {
                        apply_cmp(
                            facts,
                            &key,
                            flip(*op),
                            v,
                            &source,
                            &redundancy,
                            &mut contradiction,
                            a,
                        );
                    }
                    (Side::Lit(l), Side::Lit(r)) => match l.sql_cmp(r) {
                        Some(ord) => {
                            let holds = match op {
                                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                                BinOp::Ne => ord != std::cmp::Ordering::Equal,
                                BinOp::Lt => ord == std::cmp::Ordering::Less,
                                BinOp::Le => ord != std::cmp::Ordering::Greater,
                                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                                BinOp::Ge => ord != std::cmp::Ordering::Less,
                                _ => return,
                            };
                            if holds {
                                a.redundant.push(redundancy(
                                    vec!["both operands are constants".to_owned()],
                                    false,
                                ));
                            } else {
                                contradiction(vec!["both operands are constants".to_owned()], a);
                            }
                        }
                        None => {
                            a.null_compares
                                .push(format!("`{display}`: comparison with NULL is never TRUE"));
                            contradiction(vec!["comparison with NULL is never TRUE".to_owned()], a);
                        }
                    },
                    (Side::Ref(k1, d1), Side::Ref(k2, d2)) => {
                        // Both referenced values must be non-NULL for the
                        // comparison to be TRUE.
                        for k in [&k1, &k2] {
                            let o = facts.assume_non_null(k, &source);
                            if o.assumption == Assumption::Contradiction {
                                contradiction(o.chain, a);
                                return;
                            }
                        }
                        if *op == BinOp::Eq {
                            record_dup_join(&k1, &k2, scope, catalog, &display, a);
                            // `a = b` with both pinned to the same constant
                            // is redundant; cross-propagate domains so a
                            // parent's fact can contradict a grandchild's.
                            let (e1, e2) = (facts.get(&k1).cloned(), facts.get(&k2).cloned());
                            if let (Some(e1), Some(e2)) = (&e1, &e2) {
                                if let (Some(v1), Some(v2)) = (&e1.domain.eq, &e2.domain.eq) {
                                    if v1.sql_eq(v2) == Some(true) {
                                        let mut chain = e1.sources.clone();
                                        chain.extend(e2.sources.clone());
                                        a.redundant.push(redundancy(chain, false));
                                        continue;
                                    }
                                }
                            }
                            for (from, to, from_disp) in [(&e1, &k2, &d1), (&e2, &k1, &d2)] {
                                if let Some(entry) = from {
                                    if let Some(chain) =
                                        cross_assume(facts, entry, to, &display, from_disp)
                                    {
                                        contradiction(chain, a);
                                        return;
                                    }
                                }
                            }
                        }
                    }
                    _ => {} // opaque operand: no facts
                }
            }
            ScalarExpr::IsNull(inner) => match side_of(inner, scope) {
                Side::Ref(key, _) => {
                    let o = facts.assume_null(&key, &source);
                    match o.assumption {
                        Assumption::Contradiction => {
                            a.null_compares
                                .push(format!("`{display}`: the operand is provably NOT NULL"));
                            contradiction(o.chain, a);
                        }
                        Assumption::Redundant => a.redundant.push(redundancy(o.chain, false)),
                        Assumption::Narrowed => {}
                    }
                }
                Side::Lit(v) if v.is_null() => {
                    a.redundant
                        .push(redundancy(vec!["NULL IS NULL is TRUE".to_owned()], false));
                }
                Side::Lit(_) => {
                    contradiction(vec!["the operand is a non-NULL literal".to_owned()], a);
                }
                Side::Opaque => {}
            },
            ScalarExpr::Not(inner) => match &**inner {
                ScalarExpr::IsNull(e) => {
                    if let Side::Ref(key, _) = side_of(e, scope) {
                        let o = facts.assume_non_null(&key, &source);
                        match o.assumption {
                            Assumption::Contradiction => contradiction(o.chain, a),
                            Assumption::Redundant => a.redundant.push(redundancy(o.chain, false)),
                            Assumption::Narrowed => {}
                        }
                    }
                }
                ScalarExpr::Exists(sub) => {
                    let sub_a = analyze_query(sub, catalog, &facts.params_only());
                    if sub_a.empty {
                        let mut chain =
                            vec!["NOT EXISTS over a provably empty subquery is TRUE".to_owned()];
                        chain.extend(sub_a.empty_chain);
                        a.redundant.push(redundancy(chain, true));
                    } else if is_tautological(sub, &sub_a) {
                        contradiction(
                            vec!["the EXISTS subquery provably yields a row".to_owned()],
                            a,
                        );
                    }
                }
                ScalarExpr::Literal(v) => {
                    if v.is_truthy() || v.is_null() {
                        contradiction(vec!["NOT of the literal is never TRUE".to_owned()], a);
                    } else {
                        a.redundant.push(redundancy(
                            vec!["NOT of the literal is TRUE".to_owned()],
                            false,
                        ));
                    }
                }
                _ => {}
            },
            ScalarExpr::Exists(sub) => {
                let sub_a = analyze_query(sub, catalog, &facts.params_only());
                if sub_a.empty {
                    let mut chain = vec!["the EXISTS subquery provably yields no rows".to_owned()];
                    chain.extend(sub_a.empty_chain);
                    contradiction(chain, a);
                } else if is_tautological(sub, &sub_a) {
                    a.redundant.push(redundancy(
                        vec!["the EXISTS subquery provably yields a row".to_owned()],
                        true,
                    ));
                }
            }
            _ => {} // OR / arithmetic / other: opaque
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_cmp(
    facts: &mut FactSet,
    key: &str,
    op: BinOp,
    v: &Value,
    source: &str,
    redundancy: &impl Fn(Vec<String>, bool) -> Redundancy,
    contradiction: &mut impl FnMut(Vec<String>, &mut QueryAnalysis),
    a: &mut QueryAnalysis,
) {
    let o = facts.assume_cmp(key, op, v, source);
    match o.assumption {
        Assumption::Contradiction => contradiction(o.chain, a),
        Assumption::Redundant => a.redundant.push(redundancy(o.chain, false)),
        Assumption::Narrowed => {}
    }
}

/// Copies one entry's equality/interval facts onto another key (used for
/// `a = b` conjuncts). Returns the contradiction chain if the target's
/// domain conflicts.
fn cross_assume(
    facts: &mut FactSet,
    from: &FactEntry,
    to: &str,
    conjunct: &str,
    from_display: &str,
) -> Option<Vec<String>> {
    let via = |what: &str| {
        format!(
            "`{conjunct}` with {what} of `{from_display}` ({})",
            from.sources.join("; ")
        )
    };
    let d = &from.domain;
    let mut steps: Vec<(BinOp, Value, String)> = Vec::new();
    if let Some(v) = &d.eq {
        steps.push((BinOp::Eq, v.clone(), via("the known value")));
    }
    if let Some((v, inc)) = &d.lo {
        steps.push((
            if *inc { BinOp::Ge } else { BinOp::Gt },
            v.clone(),
            via("the lower bound"),
        ));
    }
    if let Some((v, inc)) = &d.hi {
        steps.push((
            if *inc { BinOp::Le } else { BinOp::Lt },
            v.clone(),
            via("the upper bound"),
        ));
    }
    for (op, v, source) in steps {
        let o = facts.assume_cmp(to, op, &v, &source);
        if o.assumption == Assumption::Contradiction {
            return Some(o.chain);
        }
    }
    None
}

/// Records an XVC406 candidate: the same base table twice in FROM, joined
/// by equality on its single-column primary key.
fn record_dup_join(
    k1: &str,
    k2: &str,
    scope: &Scope,
    catalog: &Catalog,
    display: &str,
    a: &mut QueryAnalysis,
) {
    let split = |k: &str| -> Option<(String, String)> {
        if k.starts_with('$') {
            return None;
        }
        let (b, c) = k.split_once('.')?;
        Some((b.to_owned(), c.to_owned()))
    };
    let (Some((b1, c1)), Some((b2, c2))) = (split(k1), split(k2)) else {
        return;
    };
    if b1 == b2 || c1 != c2 {
        return;
    }
    let (Some(t1), Some(t2)) = (scope.tables.get(&b1), scope.tables.get(&b2)) else {
        return;
    };
    if t1 != t2 {
        return;
    }
    let Ok(schema) = catalog.get(t1) else { return };
    let pk = schema.primary_key();
    if pk.len() == 1 && pk[0] == c1 {
        a.dup_joins.push(format!(
            "`{display}`: FROM items `{b1}` and `{b2}` are both table `{t1}` equated on its \
             primary key `{c1}`; every match is the same row, so one join is removable"
        ));
    }
}

/// True when the EXISTS subquery provably yields at least one row for
/// every parameter valuation satisfying the inherited facts.
fn is_tautological(sub: &SelectQuery, sub_a: &QueryAnalysis) -> bool {
    if sub_a.contradiction.is_some() || sub_a.empty {
        return false;
    }
    // An implicit (ungrouped) aggregation without HAVING always yields
    // exactly one row.
    if sub.is_aggregating() && sub.group_by.is_empty() && sub.having.is_none() {
        return true;
    }
    // `SELECT 1` over an empty FROM (produced by NEST for literal branch
    // nodes) yields one pseudo-row; it survives iff every conjunct is
    // provably TRUE.
    if sub.from.is_empty() && !sub.is_aggregating() {
        return match &sub.where_clause {
            None => true,
            Some(w) => sub_a.redundant.len() == conjuncts(w).len(),
        };
    }
    false
}

/// Result of [`query_cardinality`]: the cardinality half of the abstract
/// domain, layered on the same conjunct walk as [`analyze_query`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryCardinality {
    /// Bound on the whole query's row count for one valuation of its
    /// `$bv.column` parameters, with the justifying fact chain.
    pub total: CardBound,
    /// Per-FROM-item bound, same order as `q.from`: rows the item can
    /// contribute for *fixed* rows of every other item. The product of
    /// these (times the aggregate rule) is `total`.
    pub per_item: Vec<Card>,
    /// Like `per_item`, but counting only pins from literals, parameters
    /// and *earlier* FROM items — so the running product of a prefix of
    /// this vector bounds that join prefix as a standalone relation
    /// (which `per_item`, whose pins may come from later items, does
    /// not). Used for join-strategy selection.
    pub per_item_prefix: Vec<Card>,
    /// FROM bindings at index > 0 with no equality link to any other item
    /// and no pinning predicate: cross-product candidates.
    pub cross_joins: Vec<String>,
}

/// Convenience wrapper: just the whole-query bound.
pub fn bound_query(q: &SelectQuery, catalog: &Catalog, inherited: &FactSet) -> CardBound {
    query_cardinality(q, catalog, inherited).total
}

/// Derives a static row-count bound for `q` under inherited parameter
/// facts, from `PRIMARY KEY` constraints and equality pushdowns:
///
/// * a FROM item whose full primary key is equated to literals,
///   parameters or other items' columns contributes at most one row;
/// * joins compose bounds multiplicatively;
/// * an implicitly aggregating query yields exactly one row;
/// * a query [`analyze_query`] proves empty yields zero.
///
/// The bound is an over-approximation (never an undercount): secondary
/// indexes are not unique and contribute nothing here.
pub fn query_cardinality(
    q: &SelectQuery,
    catalog: &Catalog,
    inherited: &FactSet,
) -> QueryCardinality {
    let a = analyze_query(q, catalog, inherited);
    let scope = Scope::build(&q.from, catalog);
    let bindings: BTreeSet<String> = q.from.iter().map(|t| t.binding_name().to_owned()).collect();

    // Which item a fact key `binding.col` belongs to, if any.
    let item_of = |key: &str| -> Option<(String, String)> {
        if key.starts_with('$') {
            return None;
        }
        let (b, c) = key.split_once('.')?;
        bindings.contains(b).then(|| (b.to_owned(), c.to_owned()))
    };

    // Equality conjuncts, classified once: for every item, the set of its
    // columns equated to a value fixed per-row-of-the-other-items, and
    // whether the item has any equality link to another item at all.
    // `pinned_prefix` keeps only the pins usable when the item's join
    // prefix executes standalone: literals, parameters and earlier items.
    let index_of: BTreeMap<String, usize> = q
        .from
        .iter()
        .enumerate()
        .map(|(i, t)| (t.binding_name().to_owned(), i))
        .collect();
    let mut pinned: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut pinned_prefix: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut linked: BTreeSet<String> = BTreeSet::new();
    for c in q.where_clause.iter().flat_map(|w| conjuncts(w)) {
        let ScalarExpr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = c
        else {
            continue;
        };
        let display = expr_to_sql_inline(c);
        let sides = (side_of(lhs, &scope), side_of(rhs, &scope));
        let (l, r) = match &sides {
            (Side::Ref(l, _), Side::Ref(r, _)) => (Some(l.as_str()), Some(r.as_str())),
            (Side::Ref(l, _), Side::Lit(_)) => (Some(l.as_str()), None),
            (Side::Lit(_), Side::Ref(r, _)) => (None, Some(r.as_str())),
            _ => continue,
        };
        let (li, ri) = (l.and_then(item_of), r.and_then(item_of));
        // Literal / parameter / other-item column on the far side pins;
        // a column of the same item does not.
        let mut pin = |side: &Option<(String, String)>, other: &Option<(String, String)>| {
            if let Some((b, col)) = side {
                let other_binding = other.as_ref().map(|(ob, _)| ob);
                if other_binding != Some(b) {
                    pinned
                        .entry(b.clone())
                        .or_default()
                        .entry(col.clone())
                        .or_insert_with(|| display.clone());
                    let earlier = match other_binding {
                        None => true, // literal or parameter
                        Some(ob) => index_of.get(ob) < index_of.get(b),
                    };
                    if earlier {
                        pinned_prefix
                            .entry(b.clone())
                            .or_default()
                            .entry(col.clone())
                            .or_insert_with(|| display.clone());
                    }
                }
                if let Some(ob) = other_binding {
                    if ob != b {
                        linked.insert(b.clone());
                        linked.insert(ob.clone());
                    }
                }
            }
        };
        pin(&li, &ri);
        pin(&ri, &li);
    }

    // Per-item bounds.
    let mut per_item = Vec::with_capacity(q.from.len());
    let mut per_item_prefix = Vec::with_capacity(q.from.len());
    let mut chain = Vec::new();
    let mut cross_joins = Vec::new();
    for (idx, t) in q.from.iter().enumerate() {
        let binding = t.binding_name().to_owned();
        let (card, prefix_card) = match t {
            TableRef::Named { name, .. } => {
                let pk: Vec<String> = catalog
                    .get(name)
                    .map(|s| s.primary_key().iter().map(|c| (*c).to_owned()).collect())
                    .unwrap_or_default();
                let covered_by = |pins: Option<&BTreeMap<String, String>>| {
                    !pk.is_empty() && pk.iter().all(|c| pins.is_some_and(|p| p.contains_key(c)))
                };
                let pins = pinned.get(&binding);
                let card = if covered_by(pins) {
                    for c in &pk {
                        chain.push(format!("DDL: {name}.{c} PRIMARY KEY"));
                        chain.push(format!(
                            "conjunct `{}` pins {binding}.{c}",
                            pins.unwrap()[c]
                        ));
                    }
                    Card::AtMostOne
                } else {
                    Card::Unbounded
                };
                let prefix_card = if covered_by(pinned_prefix.get(&binding)) {
                    Card::AtMostOne
                } else {
                    Card::Unbounded
                };
                (card, prefix_card)
            }
            TableRef::Derived { query, .. } => {
                let sub = query_cardinality(query, catalog, &inherited.params_only());
                if sub.total.card != Card::Unbounded {
                    chain.push(format!(
                        "derived table `{binding}` yields {}",
                        sub.total.card
                    ));
                    chain.extend(sub.total.chain);
                }
                // A derived table's bound is self-contained, so it holds
                // for the standalone prefix too.
                (sub.total.card, sub.total.card)
            }
        };
        if idx > 0 && !linked.contains(&binding) && !card.at_most_one() {
            cross_joins.push(binding);
        }
        per_item.push(card);
        per_item_prefix.push(prefix_card);
    }

    // Whole-query bound: emptiness and the implicit-aggregate rule beat
    // the pipeline product.
    let total = if a.empty {
        CardBound::new(Card::Zero, a.empty_chain)
    } else if q.is_aggregating() && q.group_by.is_empty() {
        CardBound::new(
            Card::AtMostOne,
            vec!["implicit aggregation yields exactly one row".to_owned()],
        )
    } else {
        let mut card = Card::AtMostOne; // empty FROM: one probe row
        if q.from.is_empty() {
            chain.push("empty FROM yields exactly one probe row".to_owned());
        }
        for &c in &per_item {
            card = card.times(c);
        }
        if card == Card::Unbounded {
            chain.clear();
        }
        CardBound::new(card, chain)
    };
    QueryCardinality {
        total,
        per_item,
        per_item_prefix,
        cross_joins,
    }
}

/// Drops the conjuncts `analysis` proved redundant from `q`'s WHERE and
/// HAVING clauses; returns how many were eliminated. `analysis` must come
/// from [`analyze_query`] on this exact query.
pub fn drop_redundant_conjuncts(q: &mut SelectQuery, analysis: &QueryAnalysis) -> usize {
    if analysis.contradiction.is_some() {
        return 0; // facts past a contradiction are unreliable
    }
    let mut eliminated = 0;
    for clause in [ClauseKind::Where, ClauseKind::Having] {
        let drops: BTreeSet<usize> = analysis
            .redundant
            .iter()
            .filter(|r| r.clause == clause && !r.conjunct.is_empty())
            .map(|r| r.index)
            .collect();
        if drops.is_empty() {
            continue;
        }
        let slot = match clause {
            ClauseKind::Where => &mut q.where_clause,
            ClauseKind::Having => &mut q.having,
        };
        let Some(pred) = slot.take() else { continue };
        let parts = conjuncts_owned(pred);
        let total = parts.len();
        let kept: Vec<ScalarExpr> = parts
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !drops.contains(i))
            .map(|(_, e)| e)
            .collect();
        eliminated += total - kept.len();
        *slot = refold(kept);
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int).primary_key(),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                    ColumnDef::new("city", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        c
    }

    fn analyze(sql: &str) -> QueryAnalysis {
        analyze_query(&parse_query(sql).unwrap(), &catalog(), &FactSet::new())
    }

    #[test]
    fn detects_interval_contradiction() {
        let a = analyze("SELECT * FROM hotel WHERE starrating > 4 AND starrating < 3");
        let c = a.contradiction.expect("contradiction");
        assert_eq!(c.clause, ClauseKind::Where);
        assert!(c.conjunct.contains("starrating < 3"), "{c:?}");
        assert!(a.empty);
        assert!(!a.empty_chain.is_empty());
    }

    #[test]
    fn implicit_aggregation_is_not_empty() {
        // One NULL-aggregate row still comes out (§4.2 OUTER semantics
        // depend on this).
        let a = analyze("SELECT SUM(starrating) FROM hotel WHERE 1 = 2");
        assert!(a.contradiction.is_some());
        assert!(!a.empty);
        // ... but a grouped query with a false WHERE is empty.
        let a = analyze("SELECT city, SUM(starrating) FROM hotel WHERE 1 = 2 GROUP BY city");
        assert!(a.empty);
    }

    #[test]
    fn having_contradiction_empties_even_implicit_groups() {
        let a = analyze(
            "SELECT SUM(starrating) FROM hotel HAVING SUM(starrating) > 100 AND SUM(starrating) < 50",
        );
        let c = a.contradiction.as_ref().expect("contradiction");
        assert_eq!(c.clause, ClauseKind::Having);
        assert!(a.empty);
    }

    #[test]
    fn grouped_count_star_is_at_least_one() {
        let a = analyze("SELECT city FROM hotel GROUP BY city HAVING COUNT(*) >= 1");
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        let a = analyze("SELECT city FROM hotel GROUP BY city HAVING COUNT(*) < 1");
        assert!(a.empty, "{a:?}");
    }

    #[test]
    fn duplicate_conjunct_is_redundant_and_droppable() {
        let mut q = parse_query(
            "SELECT * FROM hotel WHERE starrating > 4 AND metro_id = 1 AND starrating > 4",
        )
        .unwrap();
        let a = analyze_query(&q, &catalog(), &FactSet::new());
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        assert_eq!(a.redundant[0].index, 2);
        assert_eq!(drop_redundant_conjuncts(&mut q, &a), 1);
        let w = q.where_clause.as_ref().unwrap();
        assert_eq!(conjuncts(w).len(), 2);
        // Second pass: nothing left to drop.
        let a2 = analyze_query(&q, &catalog(), &FactSet::new());
        assert!(a2.redundant.is_empty());
    }

    #[test]
    fn inherited_param_fact_contradicts_conjunct() {
        let mut inherited = FactSet::new();
        let mut domain = ColumnDomain::default();
        domain.assume_cmp(BinOp::Gt, &Value::Int(4));
        inherited.insert(
            param_key("h", "starrating"),
            FactEntry {
                domain,
                sources: vec!["conjunct `starrating > 4` (ancestor `hotel`)".to_owned()],
            },
        );
        let q = parse_query("SELECT * FROM hotel WHERE $h.starrating < 3").unwrap();
        let a = analyze_query(&q, &catalog(), &inherited);
        let c = a.contradiction.expect("contradiction");
        assert!(
            c.chain.iter().any(|s| s.contains("ancestor")),
            "chain should cite the inherited fact: {c:?}"
        );
    }

    #[test]
    fn equality_propagates_across_join() {
        // $m.metroid = 5 inherited; metro_id = $m.metroid AND metro_id = 7
        // is contradictory.
        let mut inherited = FactSet::new();
        let mut domain = ColumnDomain::default();
        domain.assume_cmp(BinOp::Eq, &Value::Int(5));
        inherited.insert(
            param_key("m", "metroid"),
            FactEntry {
                domain,
                sources: vec!["parent pins metroid = 5".to_owned()],
            },
        );
        let q = parse_query("SELECT * FROM hotel WHERE metro_id = $m.metroid AND metro_id = 7")
            .unwrap();
        let a = analyze_query(&q, &catalog(), &inherited);
        assert!(a.contradiction.is_some(), "{a:?}");
    }

    #[test]
    fn null_literal_comparison_never_binds() {
        let a = analyze("SELECT * FROM hotel WHERE starrating = NULL");
        assert_eq!(a.null_compares.len(), 1, "{a:?}");
        assert!(a.empty);
    }

    #[test]
    fn is_null_on_key_column_never_binds() {
        let a = analyze("SELECT * FROM hotel WHERE hotelid IS NULL");
        assert!(a.contradiction.is_some(), "{a:?}");
        assert_eq!(a.null_compares.len(), 1);
        let c = a.contradiction.unwrap();
        assert!(
            c.chain.iter().any(|s| s.contains("PRIMARY KEY")),
            "chain cites the DDL fact: {c:?}"
        );
    }

    #[test]
    fn ddl_fact_makes_not_null_check_redundant() {
        let a = analyze("SELECT * FROM hotel WHERE NOT hotelid IS NULL");
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        assert!(a.redundant[0].chain[0].contains("PRIMARY KEY"));
    }

    #[test]
    fn empty_exists_kills_the_query() {
        let a = analyze(
            "SELECT * FROM hotel WHERE EXISTS \
             (SELECT 1 FROM hotel WHERE starrating > 4 AND starrating < 3)",
        );
        assert!(a.empty, "{a:?}");
    }

    /// `SELECT * FROM hotel WHERE [NOT] EXISTS (SELECT 1)` — the empty-FROM
    /// subquery NEST generates for literal branch nodes (only constructible
    /// through the AST; the text parser requires FROM).
    fn exists_select1(negate: bool) -> SelectQuery {
        let sub = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
        let pred = ScalarExpr::Exists(Box::new(sub));
        let pred = if negate {
            ScalarExpr::Not(Box::new(pred))
        } else {
            pred
        };
        let mut q = parse_query("SELECT * FROM hotel").unwrap();
        q.and_where(pred);
        q
    }

    #[test]
    fn tautological_exists_is_redundant() {
        // NEST's literal-branch guard: SELECT 1 with empty FROM.
        let mut q = exists_select1(false);
        let a = analyze_query(&q, &catalog(), &FactSet::new());
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        assert!(a.redundant[0].tautological_exists);
        assert_eq!(drop_redundant_conjuncts(&mut q, &a), 1);
        assert!(q.where_clause.is_none());

        // An implicit aggregation always yields one row.
        let a = analyze("SELECT * FROM hotel WHERE EXISTS (SELECT SUM(starrating) FROM hotel)");
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        assert!(a.redundant[0].tautological_exists);
    }

    #[test]
    fn not_exists_inverts() {
        let a = analyze(
            "SELECT * FROM hotel WHERE NOT EXISTS \
             (SELECT 1 FROM hotel WHERE starrating > 4 AND starrating < 3)",
        );
        assert_eq!(a.redundant.len(), 1, "{a:?}");
        let q = exists_select1(true);
        let a = analyze_query(&q, &catalog(), &FactSet::new());
        assert!(a.contradiction.is_some(), "{a:?}");
        assert!(a.empty, "{a:?}");
    }

    #[test]
    fn empty_derived_table_empties_the_outer_query() {
        let a = analyze(
            "SELECT * FROM (SELECT * FROM hotel WHERE starrating > 4 AND starrating < 3) AS t",
        );
        assert!(a.empty, "{a:?}");
        assert!(a.empty_chain[0].contains("derived table"), "{a:?}");
    }

    #[test]
    fn dup_join_candidate_detected() {
        let mut c = catalog();
        c.add(TableSchema::new("h2", vec![ColumnDef::new("x", ColumnType::Int)]).unwrap());
        let q =
            parse_query("SELECT a.city FROM hotel AS a, hotel AS b WHERE a.hotelid = b.hotelid")
                .unwrap();
        let a = analyze_query(&q, &c, &FactSet::new());
        assert_eq!(a.dup_joins.len(), 1, "{a:?}");
    }

    #[test]
    fn out_facts_cover_stars_aliases_and_literals() {
        let a = analyze("SELECT *, 7 AS seven FROM hotel WHERE starrating > 4");
        let sr = a.out_facts.get("starrating").expect("starrating fact");
        assert!(sr.domain.lo.is_some() && sr.domain.non_null);
        assert!(a.out_facts.get("hotelid").unwrap().domain.non_null);
        assert_eq!(
            a.out_facts.get("seven").unwrap().domain.eq,
            Some(Value::Int(7))
        );
        let a = analyze("SELECT starrating AS stars FROM hotel WHERE starrating = 5");
        assert_eq!(
            a.out_facts.get("stars").unwrap().domain.eq,
            Some(Value::Int(5))
        );
    }

    fn card_of(sql: &str) -> QueryCardinality {
        query_cardinality(&parse_query(sql).unwrap(), &catalog(), &FactSet::new())
    }

    #[test]
    fn pk_equality_pins_to_at_most_one() {
        let c = card_of("SELECT * FROM hotel WHERE hotelid = 7");
        assert_eq!(c.total.card, Card::AtMostOne);
        assert!(
            c.total.chain.iter().any(|s| s.contains("PRIMARY KEY")),
            "{:?}",
            c.total.chain
        );
        let c = card_of("SELECT * FROM hotel WHERE hotelid = $m.hid");
        assert_eq!(c.total.card, Card::AtMostOne);
        // Non-key equality does not pin.
        let c = card_of("SELECT * FROM hotel WHERE metro_id = 3");
        assert_eq!(c.total.card, Card::Unbounded);
    }

    #[test]
    fn joins_compose_multiplicatively() {
        // Both sides key-pinned (one via the other's column): <= 1 row.
        let c = card_of(
            "SELECT * FROM hotel AS a, hotel AS b \
             WHERE a.hotelid = 3 AND b.hotelid = a.hotelid",
        );
        assert_eq!(c.total.card, Card::AtMostOne);
        assert_eq!(c.per_item, vec![Card::AtMostOne, Card::AtMostOne]);
        assert!(c.cross_joins.is_empty());
        // Unpinned join partner: unbounded, but linked (not a cross join).
        let c = card_of("SELECT * FROM hotel AS a, hotel AS b WHERE a.hotelid = b.metro_id");
        assert_eq!(c.total.card, Card::Unbounded);
        assert!(c.cross_joins.is_empty());
    }

    #[test]
    fn cross_product_without_key_is_flagged() {
        let c = card_of("SELECT * FROM hotel AS a, hotel AS b");
        assert_eq!(c.total.card, Card::Unbounded);
        assert_eq!(c.cross_joins, vec!["b".to_owned()]);
        // A pinned second side is a cheap nested loop, not a blowup.
        let c = card_of("SELECT * FROM hotel AS a, hotel AS b WHERE b.hotelid = 1");
        assert!(c.cross_joins.is_empty(), "{:?}", c.cross_joins);
    }

    #[test]
    fn aggregates_empties_and_probes_are_exact() {
        let c = card_of("SELECT SUM(starrating) FROM hotel");
        assert_eq!(c.total.card, Card::AtMostOne);
        assert!(c.total.chain[0].contains("implicit aggregation"));
        // Provably empty beats everything.
        let c = card_of("SELECT city FROM hotel WHERE 1 = 2 GROUP BY city");
        assert_eq!(c.total.card, Card::Zero);
        assert!(!c.total.chain.is_empty());
        // Guard probes: empty FROM yields exactly one pseudo-row.
        let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
        probe.where_clause = Some(ScalarExpr::binary(
            BinOp::Gt,
            ScalarExpr::param("m", "pop"),
            ScalarExpr::int(10),
        ));
        let c = query_cardinality(&probe, &catalog(), &FactSet::new());
        assert_eq!(c.total.card, Card::AtMostOne);
    }

    #[test]
    fn derived_tables_recurse() {
        let c = card_of("SELECT * FROM (SELECT SUM(starrating) AS s FROM hotel) AS t");
        assert_eq!(c.total.card, Card::AtMostOne);
        assert!(
            c.total
                .chain
                .iter()
                .any(|s| s.contains("derived table `t`")),
            "{:?}",
            c.total.chain
        );
        let c = card_of("SELECT * FROM (SELECT * FROM hotel) AS t");
        assert_eq!(c.total.card, Card::Unbounded);
    }
}
