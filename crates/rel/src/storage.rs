//! Paged row storage: slotted pages, pluggable page stores, and a buffer
//! pool with pin/unpin accounting and clock eviction.
//!
//! The layout follows the classic textbook (and simpledb-style) stack the
//! paper's middleware assumes underneath the relational engine:
//!
//! * a [`Page`] is a fixed-size **slotted page** — a small header, a slot
//!   directory growing forward, and variable-length row cells packed from
//!   the tail;
//! * a [`PageStore`] persists pages by [`PageId`] — in memory
//!   ([`MemPageStore`]) or in a real file ([`FilePageStore`]), so the
//!   same table code is file-backable without being file-bound;
//! * a [`BufferPool`] caches a bounded number of frames over a store,
//!   with pin/unpin discipline, dirty-page write-back, and second-chance
//!   (clock) eviction; [`PoolStats`] counts hits, misses and evictions.
//!
//! Rows are serialized with a tiny tagged [`Value`] codec
//! ([`encode_row`]/[`decode_row`]); `xvc_rel::Table` builds its paged
//! backend out of these pieces.

use std::collections::HashMap;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{Error, Result};
use crate::value::Value;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Page header bytes: slot count (u16) + free-end offset (u16).
const HEADER: usize = 4;
/// Slot-directory entry bytes: cell offset (u16) + cell length (u16).
const SLOT: usize = 4;

/// Identifies a page within one [`PageStore`].
pub type PageId = u32;

fn io_err(context: &str, e: &std::io::Error) -> Error {
    Error::Storage {
        reason: format!("{context}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Slotted page
// ---------------------------------------------------------------------------

/// One fixed-size slotted page.
///
/// Layout: `[slot count: u16][free end: u16][slot dir: (off,len) u16 pairs…]`
/// growing forward, with cells packed backward from `free end` (initially
/// [`PAGE_SIZE`]). Cells are immutable once inserted — the engine is
/// append-only, like the paper's publishing workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// An empty page (no slots, all space free).
    pub fn new() -> Self {
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        write_u16(&mut data, 2, PAGE_SIZE as u16);
        Page { data }
    }

    /// Wraps raw page bytes (must be exactly [`PAGE_SIZE`] long).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(Error::Storage {
                reason: format!("page must be {PAGE_SIZE} bytes, got {}", bytes.len()),
            });
        }
        Ok(Page {
            data: bytes.to_vec().into_boxed_slice(),
        })
    }

    /// The raw page bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn free_end(&self) -> usize {
        let v = read_u16(&self.data, 2) as usize;
        // A zero free-end only occurs on a zero-filled (never initialized)
        // page; treat it as fully free so stores may allocate zeroed pages.
        if v == 0 {
            PAGE_SIZE
        } else {
            v
        }
    }

    /// Number of cells stored in this page.
    pub fn slot_count(&self) -> usize {
        read_u16(&self.data, 0) as usize
    }

    /// Bytes still available for one more cell (directory entry included).
    pub fn free_space(&self) -> usize {
        self.free_end()
            .saturating_sub(HEADER + SLOT * self.slot_count() + SLOT)
    }

    /// Appends a cell, returning its slot number, or `None` if it does not
    /// fit.
    pub fn insert(&mut self, cell: &[u8]) -> Option<usize> {
        if cell.len() > self.free_space() {
            return None;
        }
        let n = self.slot_count();
        let off = self.free_end() - cell.len();
        self.data[off..off + cell.len()].copy_from_slice(cell);
        write_u16(&mut self.data, HEADER + SLOT * n, off as u16);
        write_u16(&mut self.data, HEADER + SLOT * n + 2, cell.len() as u16);
        write_u16(&mut self.data, 0, (n + 1) as u16);
        write_u16(&mut self.data, 2, off as u16);
        Some(n)
    }

    /// The cell stored at `slot`.
    pub fn cell(&self, slot: usize) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(Error::Storage {
                reason: format!("slot {slot} out of range (page has {})", self.slot_count()),
            });
        }
        let off = read_u16(&self.data, HEADER + SLOT * slot) as usize;
        let len = read_u16(&self.data, HEADER + SLOT * slot + 2) as usize;
        if off + len > PAGE_SIZE {
            return Err(Error::Storage {
                reason: format!("corrupt slot {slot}: cell [{off}..{}]", off + len),
            });
        }
        Ok(&self.data[off..off + len])
    }

    /// Largest cell an empty page can hold.
    pub fn max_cell() -> usize {
        PAGE_SIZE - HEADER - SLOT
    }
}

fn read_u16(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn write_u16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Serializes one row into `out` (cleared first): a `u16` value count, then
/// one tagged value each — `0` NULL, `1` i64, `2` f64 bits, `3` u32-length
/// UTF-8, `4` one-byte bool. All integers little-endian.
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
        }
    }
}

/// Deserializes a cell produced by [`encode_row`].
pub fn decode_row(cell: &[u8]) -> Result<Vec<Value>> {
    let corrupt = || Error::Storage {
        reason: "corrupt row cell".to_owned(),
    };
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
        let end = at.checked_add(n).ok_or_else(corrupt)?;
        if end > cell.len() {
            return Err(corrupt());
        }
        let s = &cell[*at..end];
        *at = end;
        Ok(s)
    };
    let count = u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap()) as usize;
    let mut row = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(&mut at, 1)?[0];
        row.push(match tag {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(i64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap())),
            TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(
                take(&mut at, 8)?.try_into().unwrap(),
            ))),
            TAG_STR => {
                let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
                let bytes = take(&mut at, len)?;
                Value::Str(String::from_utf8(bytes.to_vec()).map_err(|_| corrupt())?)
            }
            TAG_BOOL => Value::Bool(take(&mut at, 1)?[0] != 0),
            _ => return Err(corrupt()),
        });
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Page stores
// ---------------------------------------------------------------------------

/// Persists pages by id. Implementations must be `Send` so a table (and
/// the publisher sharing it across worker threads) stays `Sync` through
/// its pool mutex.
pub trait PageStore: Send + std::fmt::Debug {
    /// Creates a new, empty page and returns its id.
    fn allocate(&mut self) -> Result<PageId>;
    /// Reads page `id` into `page`.
    fn read_page(&mut self, id: PageId, page: &mut Page) -> Result<()>;
    /// Writes `page` back as page `id`.
    fn write_page(&mut self, id: PageId, page: &Page) -> Result<()>;
    /// Number of allocated pages.
    fn page_count(&self) -> u32;
}

/// A [`PageStore`] kept entirely in memory — the file-*backable* default
/// used when durability is not requested.
#[derive(Debug, Default)]
pub struct MemPageStore {
    pages: Vec<Page>,
}

impl MemPageStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemPageStore::default()
    }
}

impl PageStore for MemPageStore {
    fn allocate(&mut self) -> Result<PageId> {
        self.pages.push(Page::new());
        Ok((self.pages.len() - 1) as PageId)
    }

    fn read_page(&mut self, id: PageId, page: &mut Page) -> Result<()> {
        match self.pages.get(id as usize) {
            Some(p) => {
                page.data.copy_from_slice(&p.data);
                Ok(())
            }
            None => Err(Error::Storage {
                reason: format!("page {id} not allocated"),
            }),
        }
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        match self.pages.get_mut(id as usize) {
            Some(p) => {
                p.data.copy_from_slice(&page.data);
                Ok(())
            }
            None => Err(Error::Storage {
                reason: format!("page {id} not allocated"),
            }),
        }
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }
}

static FILE_STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A [`PageStore`] over a real file. [`FilePageStore::temp`] creates the
/// backing file in the system temp directory and deletes it on drop.
#[derive(Debug)]
pub struct FilePageStore {
    file: std::fs::File,
    path: PathBuf,
    pages: u32,
    delete_on_drop: bool,
}

impl FilePageStore {
    /// Creates a store backed by a fresh temporary file (deleted on drop).
    pub fn temp() -> Result<Self> {
        let dir = std::env::temp_dir();
        let seq = FILE_STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("xvc-pages-{}-{}.db", std::process::id(), seq));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("creating page file", &e))?;
        Ok(FilePageStore {
            file,
            path,
            pages: 0,
            delete_on_drop: true,
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for FilePageStore {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl PageStore for FilePageStore {
    fn allocate(&mut self) -> Result<PageId> {
        let id = self.pages;
        self.write_page(id, &Page::new())?;
        self.pages += 1;
        Ok(id)
    }

    fn read_page(&mut self, id: PageId, page: &mut Page) -> Result<()> {
        if id >= self.pages {
            return Err(Error::Storage {
                reason: format!("page {id} not allocated"),
            });
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .map_err(|e| io_err("seeking page", &e))?;
        self.file
            .read_exact(&mut page.data)
            .map_err(|e| io_err("reading page", &e))?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .map_err(|e| io_err("seeking page", &e))?;
        self.file
            .write_all(&page.data)
            .map_err(|e| io_err("writing page", &e))?;
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// Buffer-pool work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins served from a resident frame.
    pub hits: u64,
    /// Pins that had to read the page from the store.
    pub misses: u64,
    /// Resident pages evicted to make room (dirty ones written back).
    pub evictions: u64,
}

impl PoolStats {
    /// Adds `other`'s counters into `self`.
    pub fn absorb(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

#[derive(Debug)]
struct Frame {
    id: PageId,
    page: Page,
    pins: u32,
    dirty: bool,
    /// Second-chance bit for the clock sweep.
    referenced: bool,
}

/// A bounded cache of page frames over a [`PageStore`].
///
/// Pages are accessed through pin/unpin: [`BufferPool::pin`] makes the
/// page resident and protects its frame from eviction until the matching
/// [`BufferPool::unpin`]; eviction is second-chance (clock) over unpinned
/// frames, writing dirty victims back. Pinning with every frame pinned is
/// an [`Error::Storage`], not a deadlock.
#[derive(Debug)]
pub struct BufferPool {
    store: Box<dyn PageStore>,
    frames: Vec<Frame>,
    capacity: usize,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of at most `capacity` frames (minimum 1) over `store`.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            store,
            frames: Vec::new(),
            capacity: capacity.max(1),
            map: HashMap::new(),
            hand: 0,
            stats: PoolStats::default(),
        }
    }

    /// Allocates a fresh page in the underlying store.
    pub fn allocate(&mut self) -> Result<PageId> {
        self.store.allocate()
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> u32 {
        self.store.page_count()
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Currently pinned frames (for pin-discipline assertions in tests).
    pub fn pinned_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pins > 0).count()
    }

    /// Pins page `id` into a frame and returns the frame handle. Every
    /// successful pin must be paired with an [`BufferPool::unpin`].
    pub fn pin(&mut self, id: PageId) -> Result<usize> {
        if let Some(&fi) = self.map.get(&id) {
            self.stats.hits += 1;
            self.frames[fi].pins += 1;
            self.frames[fi].referenced = true;
            return Ok(fi);
        }
        self.stats.misses += 1;
        let fi = self.free_frame()?;
        self.store.read_page(id, &mut self.frames[fi].page)?;
        self.frames[fi].id = id;
        self.frames[fi].pins = 1;
        self.frames[fi].dirty = false;
        self.frames[fi].referenced = true;
        self.map.insert(id, fi);
        Ok(fi)
    }

    /// Releases one pin on `frame`; `dirty` marks the page as modified so
    /// eviction (or [`BufferPool::flush`]) writes it back.
    pub fn unpin(&mut self, frame: usize, dirty: bool) {
        let f = &mut self.frames[frame];
        debug_assert!(f.pins > 0, "unpin without matching pin");
        f.pins = f.pins.saturating_sub(1);
        f.dirty |= dirty;
    }

    /// Read access to a pinned frame's page.
    pub fn page(&self, frame: usize) -> &Page {
        &self.frames[frame].page
    }

    /// Write access to a pinned frame's page. The caller still marks the
    /// frame dirty through [`BufferPool::unpin`].
    pub fn page_mut(&mut self, frame: usize) -> &mut Page {
        &mut self.frames[frame].page
    }

    /// Writes every dirty frame back to the store.
    pub fn flush(&mut self) -> Result<()> {
        for f in &mut self.frames {
            if f.dirty {
                self.store.write_page(f.id, &f.page)?;
                f.dirty = false;
            }
        }
        Ok(())
    }

    /// A frame to load into: grow up to capacity, else clock-evict.
    fn free_frame(&mut self) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                id: 0,
                page: Page::new(),
                pins: 0,
                dirty: false,
                referenced: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Second-chance sweep: one pass clears referenced bits, the second
        // takes the first unpinned frame; all-pinned means exhaustion.
        for _ in 0..2 * self.frames.len() {
            let fi = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[fi];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            if f.dirty {
                self.store.write_page(f.id, &f.page)?;
                f.dirty = false;
            }
            self.map.remove(&f.id);
            self.stats.evictions += 1;
            return Ok(fi);
        }
        Err(Error::Storage {
            reason: format!("buffer pool exhausted: all {} frames pinned", self.capacity),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(row: &[Value]) {
        let mut cell = Vec::new();
        encode_row(row, &mut cell);
        assert_eq!(decode_row(&cell).unwrap(), row);
    }

    #[test]
    fn row_codec_roundtrips_every_value_kind() {
        roundtrip(&[
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo \"quoted\"".into()),
            Value::Bool(true),
        ]);
        roundtrip(&[]);
        // NaN bits survive (compared by bits — NaN != NaN under `=`).
        let mut cell = Vec::new();
        encode_row(&[Value::Float(f64::NAN)], &mut cell);
        match &decode_row(&cell).unwrap()[..] {
            [Value::Float(f)] => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected one float, got {other:?}"),
        }
    }

    #[test]
    fn row_codec_rejects_truncated_cells() {
        let mut cell = Vec::new();
        encode_row(&[Value::Str("abcdef".into())], &mut cell);
        assert!(decode_row(&cell[..cell.len() - 2]).is_err());
        assert!(decode_row(&[9, 9]).is_err());
    }

    #[test]
    fn page_inserts_until_full_and_reads_back() {
        let mut p = Page::new();
        let cell = vec![7u8; 100];
        let mut slots = Vec::new();
        while let Some(s) = p.insert(&cell) {
            slots.push(s);
        }
        // 8192 - 4 header, 104 bytes per cell (100 + 4 directory).
        assert_eq!(slots.len(), (PAGE_SIZE - HEADER) / (100 + SLOT));
        for s in slots {
            assert_eq!(p.cell(s).unwrap(), &cell[..]);
        }
        assert!(p.cell(p.slot_count()).is_err());
    }

    #[test]
    fn file_store_persists_and_cleans_up() {
        let mut store = FilePageStore::temp().unwrap();
        let path = store.path().to_path_buf();
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        let mut page = Page::new();
        page.insert(b"hello").unwrap();
        store.write_page(b, &page).unwrap();
        let mut back = Page::new();
        store.read_page(b, &mut back).unwrap();
        assert_eq!(back.cell(0).unwrap(), b"hello");
        let mut empty = Page::new();
        store.read_page(a, &mut empty).unwrap();
        assert_eq!(empty.slot_count(), 0);
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "temp page file must be removed on drop");
    }

    #[test]
    fn pool_pins_hit_after_first_read() {
        let mut store = MemPageStore::new();
        let id = store.allocate().unwrap();
        let mut pool = BufferPool::new(Box::new(store), 4);
        let f = pool.pin(id).unwrap();
        pool.unpin(f, false);
        let f = pool.pin(id).unwrap();
        pool.unpin(f, false);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn pool_evicts_unpinned_and_writes_back_dirty() {
        let mut store = MemPageStore::new();
        let ids: Vec<PageId> = (0..4).map(|_| store.allocate().unwrap()).collect();
        let mut pool = BufferPool::new(Box::new(store), 2);
        // Dirty page 0, then push it out through a 2-frame pool.
        let f = pool.pin(ids[0]).unwrap();
        pool.page_mut(f).insert(b"persisted").unwrap();
        pool.unpin(f, true);
        for &id in &ids[1..] {
            let f = pool.pin(id).unwrap();
            pool.unpin(f, false);
        }
        assert!(pool.stats().evictions >= 2);
        // Re-pinning page 0 must re-read the written-back bytes.
        let f = pool.pin(ids[0]).unwrap();
        assert_eq!(pool.page(f).cell(0).unwrap(), b"persisted");
        pool.unpin(f, false);
    }

    #[test]
    fn pool_errors_when_every_frame_is_pinned() {
        let mut store = MemPageStore::new();
        let ids: Vec<PageId> = (0..3).map(|_| store.allocate().unwrap()).collect();
        let mut pool = BufferPool::new(Box::new(store), 2);
        let a = pool.pin(ids[0]).unwrap();
        let b = pool.pin(ids[1]).unwrap();
        assert_eq!(pool.pinned_frames(), 2);
        let err = pool.pin(ids[2]).unwrap_err();
        assert!(matches!(err, Error::Storage { .. }), "got {err:?}");
        // Unpinning one frame makes the pin succeed again.
        pool.unpin(a, false);
        let c = pool.pin(ids[2]).unwrap();
        pool.unpin(c, false);
        pool.unpin(b, false);
    }
}
