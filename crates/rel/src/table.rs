//! Row storage: tables and the database (catalog + data).

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::schema::{Catalog, TableSchema};
use crate::value::Value;

/// A table: schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends one row after validating it against the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A database instance `I`: a catalog and the table contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table from a schema (empty).
    pub fn create_table(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), Table::new(schema));
    }

    /// Inserts a row into the named table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        match self.tables.get_mut(table) {
            Some(t) => t.insert(row),
            None => Err(Error::UnknownTable {
                name: table.to_owned(),
            }),
        }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| Error::UnknownTable {
            name: name.to_owned(),
        })
    }

    /// The catalog view of this database (schemas only).
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add(t.schema.clone());
        }
        c
    }

    /// Iterates tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn insert_and_read_back() {
        let mut db = db();
        db.insert(
            "metroarea",
            vec![Value::Int(1), Value::Str("chicago".into())],
        )
        .unwrap();
        let t = db.table("metroarea").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][1], Value::Str("chicago".into()));
    }

    #[test]
    fn insert_validates_schema() {
        let mut db = db();
        assert!(db
            .insert("metroarea", vec![Value::Str("x".into()), Value::Int(1)])
            .is_err());
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn catalog_reflects_tables() {
        let db = db();
        let c = db.catalog();
        assert!(c.contains("metroarea"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn total_rows_sums_tables() {
        let mut db = db();
        db.insert("metroarea", vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        db.insert("metroarea", vec![Value::Int(2), Value::Str("b".into())])
            .unwrap();
        assert_eq!(db.total_rows(), 2);
    }
}
