//! Row storage: tables and the database (catalog + data).
//!
//! A [`Table`] stores rows either in memory (`Vec<Vec<Value>>`, the
//! default) or in slotted pages behind a [`BufferPool`]
//! ([`Backend::Paged`], optionally file-backed). Both backends expose the
//! same append/scan/fetch surface and produce identical row orders, so
//! the engine — and therefore published documents — cannot tell them
//! apart. Tables also own their [`SecondaryIndex`]es, maintained on every
//! insert and described by the schema's [`IndexDef`]s so prepared plans
//! can select index access paths from the catalog alone.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::error::{Error, Result};
use crate::index::SecondaryIndex;
use crate::schema::{Catalog, IndexDef, IndexKind, TableSchema};
use crate::storage::{
    decode_row, encode_row, BufferPool, FilePageStore, MemPageStore, Page, PageId, PoolStats,
};
use crate::value::Value;

/// Storage backend for the tables of a [`Database`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Rows in a plain in-memory vector (the default).
    #[default]
    Memory,
    /// Rows in slotted pages behind a buffer pool.
    Paged {
        /// Buffer-pool capacity in frames (pages), per table. Minimum 1.
        pool_pages: usize,
        /// Keep pages in a real temporary file instead of memory.
        file_backed: bool,
    },
}

impl Backend {
    /// A paged backend with a default-sized pool, in memory.
    pub fn paged() -> Self {
        Backend::Paged {
            pool_pages: 64,
            file_backed: false,
        }
    }

    /// A paged backend with a default-sized pool over a temp file.
    pub fn paged_file() -> Self {
        Backend::Paged {
            pool_pages: 64,
            file_backed: true,
        }
    }
}

/// Rows in slotted pages: the page list, one `(page, slot)` location per
/// row id, and the buffer pool guarding resident frames. The pool sits
/// behind a mutex so `&Table` scans stay safe across publisher threads.
#[derive(Debug)]
struct PagedRows {
    pool: Mutex<BufferPool>,
    pages: Vec<PageId>,
    locs: Vec<(u32, u16)>,
    pool_pages: usize,
    file_backed: bool,
}

impl PagedRows {
    fn new(pool_pages: usize, file_backed: bool) -> Result<Self> {
        let store: Box<dyn crate::storage::PageStore> = if file_backed {
            Box::new(FilePageStore::temp()?)
        } else {
            Box::new(MemPageStore::new())
        };
        Ok(PagedRows {
            pool: Mutex::new(BufferPool::new(store, pool_pages)),
            pages: Vec::new(),
            locs: Vec::new(),
            pool_pages,
            file_backed,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BufferPool> {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn insert(&mut self, row: &[Value]) -> Result<()> {
        let mut cell = Vec::new();
        encode_row(row, &mut cell);
        if cell.len() > Page::max_cell() {
            return Err(Error::Storage {
                reason: format!(
                    "row of {} bytes exceeds page capacity of {}",
                    cell.len(),
                    Page::max_cell()
                ),
            });
        }
        let pool = self
            .pool
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&pid) = self.pages.last() {
            let f = pool.pin(pid)?;
            let slot = pool.page_mut(f).insert(&cell);
            pool.unpin(f, slot.is_some());
            if let Some(slot) = slot {
                self.locs.push((self.pages.len() as u32 - 1, slot as u16));
                return Ok(());
            }
        }
        let pid = pool.allocate()?;
        let f = pool.pin(pid)?;
        let slot = pool
            .page_mut(f)
            .insert(&cell)
            .expect("row fits in an empty page");
        pool.unpin(f, true);
        self.pages.push(pid);
        self.locs.push((self.pages.len() as u32 - 1, slot as u16));
        Ok(())
    }

    /// Decodes every row of one page (in slot order = insertion order).
    fn page_rows(&self, page_idx: usize) -> Result<Vec<Vec<Value>>> {
        let mut pool = self.lock();
        let f = pool.pin(self.pages[page_idx])?;
        let page = pool.page(f);
        let mut rows = Vec::with_capacity(page.slot_count());
        let mut err = None;
        for s in 0..page.slot_count() {
            match page.cell(s).and_then(decode_row) {
                Ok(row) => rows.push(row),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        pool.unpin(f, false);
        match err {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }

    fn fetch(&self, rid: usize) -> Result<Vec<Value>> {
        let (page_idx, slot) = self.locs[rid];
        let mut pool = self.lock();
        let f = pool.pin(self.pages[page_idx as usize])?;
        let row = pool.page(f).cell(slot as usize).and_then(decode_row);
        pool.unpin(f, false);
        row
    }
}

#[derive(Debug)]
enum RowStore {
    Mem(Vec<Vec<Value>>),
    Paged(PagedRows),
}

/// A table: schema, rows, and secondary indexes.
#[derive(Debug)]
pub struct Table {
    /// The table's schema (including its [`IndexDef`]s).
    pub schema: TableSchema,
    store: RowStore,
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty in-memory table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table::with_backend(schema, Backend::Memory).expect("memory backend is infallible")
    }

    /// Creates an empty table on `backend`. Index structures are built for
    /// every [`IndexDef`] already declared on the schema.
    pub fn with_backend(schema: TableSchema, backend: Backend) -> Result<Self> {
        let store = match backend {
            Backend::Memory => RowStore::Mem(Vec::new()),
            Backend::Paged {
                pool_pages,
                file_backed,
            } => RowStore::Paged(PagedRows::new(pool_pages, file_backed)?),
        };
        let mut indexes = Vec::new();
        for def in &schema.indexes {
            let column = schema
                .column_index(&def.column)
                .ok_or_else(|| Error::Storage {
                    reason: format!(
                        "index on unknown column {:?} of table {:?}",
                        def.column, schema.name
                    ),
                })?;
            indexes.push(SecondaryIndex::new(column, def.kind));
        }
        Ok(Table {
            schema,
            store,
            indexes,
        })
    }

    /// The backend this table stores rows on.
    pub fn backend(&self) -> Backend {
        match &self.store {
            RowStore::Mem(_) => Backend::Memory,
            RowStore::Paged(p) => Backend::Paged {
                pool_pages: p.pool_pages,
                file_backed: p.file_backed,
            },
        }
    }

    /// Appends one row after validating it against the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        let rid = self.len();
        for idx in &mut self.indexes {
            idx.insert(&row, rid);
        }
        match &mut self.store {
            RowStore::Mem(rows) => {
                rows.push(row);
                Ok(())
            }
            RowStore::Paged(p) => p.insert(&row),
        }
    }

    /// Declares and builds a secondary index over `column`.
    pub fn create_index(&mut self, column: &str, kind: IndexKind) -> Result<()> {
        let pos = self
            .schema
            .column_index(column)
            .ok_or_else(|| Error::UnknownColumn {
                reference: format!("{}.{column}", self.schema.name),
            })?;
        if self.schema.index_on(column).is_some() {
            return Err(Error::Storage {
                reason: format!(
                    "table {:?} already has an index on {column:?}",
                    self.schema.name
                ),
            });
        }
        let mut idx = SecondaryIndex::new(pos, kind);
        for (rid, row) in self.rows().iter().enumerate() {
            idx.insert(row, rid);
        }
        self.schema.indexes.push(IndexDef {
            column: column.to_owned(),
            kind,
        });
        self.indexes.push(idx);
        Ok(())
    }

    /// The index over schema column position `column`, if one exists.
    pub fn index_for(&self, column: usize) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|i| i.column() == column)
    }

    /// The stored rows, materialized if paged.
    ///
    /// # Panics
    /// Panics if the paged store is corrupted (a storage-layer bug, not a
    /// data error). The streaming [`Table::scan`] is the engine's path.
    pub fn rows(&self) -> std::borrow::Cow<'_, [Vec<Value>]> {
        match &self.store {
            RowStore::Mem(rows) => std::borrow::Cow::Borrowed(rows),
            RowStore::Paged(p) => {
                let mut all = Vec::with_capacity(p.locs.len());
                for i in 0..p.pages.len() {
                    all.extend(p.page_rows(i).expect("paged store corrupted"));
                }
                std::borrow::Cow::Owned(all)
            }
        }
    }

    /// Streams rows in insertion order without materializing the whole
    /// table: paged backends decode one page at a time through the buffer
    /// pool, memory backends borrow.
    ///
    /// # Panics
    /// Panics if the paged store is corrupted.
    pub fn scan(&self) -> RowScan<'_> {
        RowScan {
            inner: match &self.store {
                RowStore::Mem(rows) => ScanInner::Mem(rows.iter()),
                RowStore::Paged(p) => ScanInner::Paged {
                    rows: p,
                    next_page: 0,
                    buf: Vec::new().into_iter(),
                },
            },
        }
    }

    /// Fetches one row by id (an index-lookup candidate).
    ///
    /// # Panics
    /// Panics on an out-of-range id or a corrupted paged store.
    pub fn fetch_row(&self, rid: usize) -> Vec<Value> {
        match &self.store {
            RowStore::Mem(rows) => rows[rid].clone(),
            RowStore::Paged(p) => p.fetch(rid).expect("paged store corrupted"),
        }
    }

    /// Buffer-pool counters (`None` for the memory backend).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match &self.store {
            RowStore::Mem(_) => None,
            RowStore::Paged(p) => Some(p.lock().stats()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.store {
            RowStore::Mem(rows) => rows.len(),
            RowStore::Paged(p) => p.locs.len(),
        }
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for Table {
    /// Memory tables clone their vector; paged tables are rebuilt on an
    /// identical backend by re-inserting every row (clones must not share
    /// mutable page storage).
    fn clone(&self) -> Self {
        match &self.store {
            RowStore::Mem(rows) => Table {
                schema: self.schema.clone(),
                store: RowStore::Mem(rows.clone()),
                indexes: self.indexes.clone(),
            },
            RowStore::Paged(_) => {
                let mut t = Table::with_backend(self.schema.clone(), self.backend())
                    .expect("rebuilding an existing paged table");
                for row in self.rows().iter() {
                    t.insert(row.clone()).expect("row was already valid");
                }
                t
            }
        }
    }
}

impl PartialEq for Table {
    /// Schema (including index declarations) and row contents; the storage
    /// backend is deliberately *not* part of equality — that is the whole
    /// bit-identical-across-backends contract.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows() == other.rows()
    }
}

/// Streaming row cursor returned by [`Table::scan`]. Yields borrowed rows
/// for the memory backend and page-at-a-time decoded rows for the paged
/// one.
pub struct RowScan<'a> {
    inner: ScanInner<'a>,
}

enum ScanInner<'a> {
    Mem(std::slice::Iter<'a, Vec<Value>>),
    Paged {
        rows: &'a PagedRows,
        next_page: usize,
        buf: std::vec::IntoIter<Vec<Value>>,
    },
}

impl<'a> Iterator for RowScan<'a> {
    type Item = std::borrow::Cow<'a, [Value]>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            ScanInner::Mem(it) => it.next().map(|r| std::borrow::Cow::Borrowed(r.as_slice())),
            ScanInner::Paged {
                rows,
                next_page,
                buf,
            } => loop {
                if let Some(row) = buf.next() {
                    return Some(std::borrow::Cow::Owned(row));
                }
                if *next_page >= rows.pages.len() {
                    return None;
                }
                *buf = rows
                    .page_rows(*next_page)
                    .expect("paged store corrupted")
                    .into_iter();
                *next_page += 1;
            },
        }
    }
}

/// A database instance `I`: a catalog and the table contents.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    backend: Backend,
    /// Cached [`Database::catalog_fingerprint`]; schema mutations all go
    /// through `&mut self` methods, which keep it current.
    fingerprint: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database::with_backend(Backend::Memory)
    }
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
    }
}

impl Database {
    /// Creates an empty database on the in-memory backend.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates an empty database whose tables use `backend`.
    pub fn with_backend(backend: Backend) -> Self {
        let mut db = Database {
            tables: BTreeMap::new(),
            backend,
            fingerprint: 0,
        };
        db.refresh_fingerprint();
        db
    }

    /// The backend new tables are created on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Creates a table from a schema (empty).
    pub fn create_table(&mut self, schema: TableSchema) {
        let table = Table::with_backend(schema.clone(), self.backend)
            .or_else(|_| -> Result<Table> {
                // Backend setup failure (e.g. temp file creation) falls
                // back to memory rather than losing the table; storage
                // errors resurface on the next paged operation.
                Ok(Table::new(schema))
            })
            .expect("memory fallback is infallible");
        self.tables.insert(table.schema.name.clone(), table);
        self.refresh_fingerprint();
    }

    /// Declares and builds a secondary index on `table.column`, recording
    /// it in the table's schema (and therefore in the catalog and the
    /// database fingerprint).
    pub fn create_index(&mut self, table: &str, column: &str, kind: IndexKind) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::UnknownTable {
                name: table.to_owned(),
            })?;
        t.create_index(column, kind)?;
        self.refresh_fingerprint();
        Ok(())
    }

    /// Inserts a row into the named table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        match self.tables.get_mut(table) {
            Some(t) => t.insert(row),
            None => Err(Error::UnknownTable {
                name: table.to_owned(),
            }),
        }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| Error::UnknownTable {
            name: name.to_owned(),
        })
    }

    /// The catalog view of this database (schemas only).
    pub fn catalog(&self) -> Catalog {
        let mut c = Catalog::new();
        for t in self.tables.values() {
            c.add(t.schema.clone());
        }
        c
    }

    /// A cheap fingerprint of the catalog (schemas + index declarations).
    /// Two databases with equal catalogs have equal fingerprints, and any
    /// `create_table`/`create_index` changes it with overwhelming
    /// probability — the publisher's plan cache keys its invalidation on
    /// this instead of rebuilding and comparing whole [`Catalog`]s.
    pub fn catalog_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn refresh_fingerprint(&mut self) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for t in self.tables.values() {
            t.schema.hash(&mut h);
        }
        self.fingerprint = h.finish();
    }

    /// Rebuilds this database (schemas, rows, and index declarations) on a
    /// different storage backend — the backend-comparison harness of the
    /// scale benchmarks.
    pub fn to_backend(&self, backend: Backend) -> Result<Database> {
        let mut db = Database::with_backend(backend);
        for t in self.tables.values() {
            let mut schema = t.schema.clone();
            let indexes = std::mem::take(&mut schema.indexes);
            db.create_table(schema);
            for row in t.rows().iter() {
                db.insert(&t.schema.name, row.clone())?;
            }
            for def in indexes {
                db.create_index(&t.schema.name, &def.column, def.kind)?;
            }
        }
        Ok(db)
    }

    /// Replaces the named table's row contents wholesale, rebuilding the
    /// row store and every secondary index on the same backend. The schema
    /// is untouched, so the catalog fingerprint — and therefore any plan
    /// cache keyed on it — stays valid (the DML path depends on this).
    pub(crate) fn replace_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::UnknownTable {
                name: table.to_owned(),
            })?;
        let mut fresh = Table::with_backend(t.schema.clone(), t.backend())?;
        for row in rows {
            fresh.insert(row)?;
        }
        *t = fresh;
        Ok(())
    }

    /// Iterates tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Aggregated buffer-pool counters over every paged table (`None`
    /// when no table is paged).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        let mut agg: Option<PoolStats> = None;
        for t in self.tables.values() {
            if let Some(s) = t.pool_stats() {
                agg.get_or_insert_with(PoolStats::default).absorb(&s);
            }
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn insert_and_read_back() {
        let mut db = db();
        db.insert(
            "metroarea",
            vec![Value::Int(1), Value::Str("chicago".into())],
        )
        .unwrap();
        let t = db.table("metroarea").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][1], Value::Str("chicago".into()));
    }

    #[test]
    fn insert_validates_schema() {
        let mut db = db();
        assert!(db
            .insert("metroarea", vec![Value::Str("x".into()), Value::Int(1)])
            .is_err());
        assert!(matches!(
            db.insert("nope", vec![]),
            Err(Error::UnknownTable { .. })
        ));
    }

    #[test]
    fn catalog_reflects_tables() {
        let db = db();
        let c = db.catalog();
        assert!(c.contains("metroarea"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn total_rows_sums_tables() {
        let mut db = db();
        db.insert("metroarea", vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        db.insert("metroarea", vec![Value::Int(2), Value::Str("b".into())])
            .unwrap();
        assert_eq!(db.total_rows(), 2);
    }

    fn paged_backends() -> Vec<Backend> {
        vec![
            Backend::Paged {
                pool_pages: 2,
                file_backed: false,
            },
            Backend::Paged {
                pool_pages: 2,
                file_backed: true,
            },
        ]
    }

    #[test]
    fn paged_backends_agree_with_memory_row_for_row() {
        for backend in paged_backends() {
            let mut mem = db();
            let mut paged = mem.to_backend(backend).unwrap();
            for i in 0..2000 {
                let row = vec![Value::Int(i), Value::Str(format!("name-{i}"))];
                mem.insert("metroarea", row.clone()).unwrap();
                paged.insert("metroarea", row).unwrap();
            }
            let (m, p) = (
                mem.table("metroarea").unwrap(),
                paged.table("metroarea").unwrap(),
            );
            assert_eq!(p.len(), 2000);
            assert_eq!(m.rows(), p.rows());
            // Streaming scan agrees with materialization.
            let scanned: Vec<Vec<Value>> = p.scan().map(std::borrow::Cow::into_owned).collect();
            assert_eq!(scanned, p.rows().into_owned());
            assert_eq!(p.fetch_row(1234), m.fetch_row(1234));
            // A 2-frame pool over many pages must have evicted.
            let stats = p.pool_stats().unwrap();
            assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
            assert_eq!(mem, paged, "equality ignores the backend");
        }
    }

    #[test]
    fn create_index_builds_and_maintains() {
        let mut db = db();
        for i in 0..10 {
            db.insert(
                "metroarea",
                vec![Value::Int(i % 3), Value::Str(format!("m{i}"))],
            )
            .unwrap();
        }
        db.create_index("metroarea", "metroid", IndexKind::Hash)
            .unwrap();
        // Maintained on later inserts too.
        db.insert("metroarea", vec![Value::Int(1), Value::Str("late".into())])
            .unwrap();
        let t = db.table("metroarea").unwrap();
        let idx = t.index_for(0).unwrap();
        assert_eq!(idx.lookup(&Value::Int(1)), &[1, 4, 7, 10]);
        assert!(t.schema.index_on("metroid").is_some());
        assert!(db
            .create_index("metroarea", "metroid", IndexKind::Hash)
            .is_err());
        assert!(db
            .create_index("metroarea", "nope", IndexKind::Hash)
            .is_err());
        assert!(db.create_index("nope", "metroid", IndexKind::Hash).is_err());
    }

    #[test]
    fn fingerprint_tracks_schema_changes_only() {
        let mut db = db();
        let fp0 = db.catalog_fingerprint();
        db.insert("metroarea", vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        assert_eq!(
            db.catalog_fingerprint(),
            fp0,
            "data does not change the catalog"
        );
        db.create_index("metroarea", "metroid", IndexKind::Hash)
            .unwrap();
        let fp1 = db.catalog_fingerprint();
        assert_ne!(fp0, fp1, "index declarations are part of the catalog");
        db.create_table(
            TableSchema::new("extra", vec![ColumnDef::new("x", ColumnType::Int)]).unwrap(),
        );
        assert_ne!(db.catalog_fingerprint(), fp1);
        // Equal catalogs (built the same way) fingerprint equally.
        let mut twin = Database::new();
        twin.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        twin.create_index("metroarea", "metroid", IndexKind::Hash)
            .unwrap();
        twin.create_table(
            TableSchema::new("extra", vec![ColumnDef::new("x", ColumnType::Int)]).unwrap(),
        );
        assert_eq!(db.catalog_fingerprint(), twin.catalog_fingerprint());
    }

    #[test]
    fn paged_table_clone_is_independent() {
        let mut db = db().to_backend(Backend::paged()).unwrap();
        db.insert("metroarea", vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        let mut copy = db.clone();
        copy.insert("metroarea", vec![Value::Int(2), Value::Str("b".into())])
            .unwrap();
        assert_eq!(db.table("metroarea").unwrap().len(), 1);
        assert_eq!(copy.table("metroarea").unwrap().len(), 2);
    }
}
