//! Secondary indexes over table columns.
//!
//! A [`SecondaryIndex`] maps a normalized key of one column's value to the
//! list of row ids carrying it, **in insertion order** — so an equality
//! lookup yields exactly the rows a full scan filtered by `col = key`
//! would, in the same order. That order-preservation is what lets
//! `plan::prepare` swap a scan for an index lookup without perturbing
//! published documents.
//!
//! Two shapes are provided ([`IndexKind`]): a hash index (the equality
//! workhorse the publisher's parameterized tag queries need) and a B-tree
//! index (ordered keys, kept for future range access paths). NULLs are
//! never indexed: `col = NULL` matches nothing under SQL semantics, and
//! the planner's post-lookup recheck keeps NaN/zero-sign edge cases exact.

use std::collections::{BTreeMap, HashMap};

use crate::eval::{key_of, Key};
use crate::schema::IndexKind;
use crate::value::Value;

/// Normalized lookup key: `-0.0` folds onto `0.0` (SQL `=` treats them as
/// equal) and Int/Float unify through `f64` bits, exactly like the batch
/// executor's binding hash-join keys.
pub(crate) fn index_key_of(v: &Value) -> Key {
    match v {
        Value::Float(f) if *f == 0.0 => Key::Num(0f64.to_bits()),
        _ => key_of(v),
    }
}

/// Total order over normalized keys for the B-tree shape: kind first, then
/// numeric value (`f64::total_cmp`), string, or bool. Equality must agree
/// with `Key`'s so both index kinds return identical candidate sets.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrdKey(Key);

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(k: &Key) -> u8 {
            match k {
                Key::Null => 0,
                Key::Num(_) => 1,
                Key::Str(_) => 2,
                Key::Bool(_) => 3,
            }
        }
        match (&self.0, &other.0) {
            // `total_cmp` returns Equal exactly on identical bits, which
            // is exactly `Key` equality — Ord and Eq stay consistent.
            (Key::Num(a), Key::Num(b)) => f64::from_bits(*a).total_cmp(&f64::from_bits(*b)),
            (Key::Str(a), Key::Str(b)) => a.cmp(b),
            (Key::Bool(a), Key::Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
enum IndexMap {
    Hash(HashMap<Key, Vec<usize>>),
    BTree(BTreeMap<OrdKey, Vec<usize>>),
}

/// One secondary index: column position plus the key → row-id map.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    column: usize,
    map: IndexMap,
    entries: usize,
}

impl SecondaryIndex {
    /// An empty index over column position `column`.
    pub fn new(column: usize, kind: IndexKind) -> Self {
        SecondaryIndex {
            column,
            map: match kind {
                IndexKind::Hash => IndexMap::Hash(HashMap::new()),
                IndexKind::BTree => IndexMap::BTree(BTreeMap::new()),
            },
            entries: 0,
        }
    }

    /// The indexed column's position in the table schema.
    pub fn column(&self) -> usize {
        self.column
    }

    /// The index shape.
    pub fn kind(&self) -> IndexKind {
        match self.map {
            IndexMap::Hash(_) => IndexKind::Hash,
            IndexMap::BTree(_) => IndexKind::BTree,
        }
    }

    /// Indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if nothing is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Records that row `rid` carries `row` (NULL key values are skipped).
    /// Must be called in ascending `rid` order — inserts append, which is
    /// what keeps candidate lists in scan order.
    pub fn insert(&mut self, row: &[Value], rid: usize) {
        let v = &row[self.column];
        if v.is_null() {
            return;
        }
        let key = index_key_of(v);
        let bucket = match &mut self.map {
            IndexMap::Hash(m) => m.entry(key).or_default(),
            IndexMap::BTree(m) => m.entry(OrdKey(key)).or_default(),
        };
        debug_assert!(bucket.last().is_none_or(|&last| last < rid));
        bucket.push(rid);
        self.entries += 1;
    }

    /// Row ids whose column equals `v` (insertion order). NULL probes
    /// match nothing. Candidates still need an exact `=` recheck — the
    /// normalized key unifies `3` with `3.0` (correct) but also buckets
    /// NaN with itself (which SQL `=` rejects).
    pub fn lookup(&self, v: &Value) -> &[usize] {
        if v.is_null() {
            return &[];
        }
        let key = index_key_of(v);
        let bucket = match &self.map {
            IndexMap::Hash(m) => m.get(&key),
            IndexMap::BTree(m) => m.get(&OrdKey(key)),
        };
        bucket.map_or(&[], |b| b.as_slice())
    }

    /// Number of distinct indexed keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.map {
            IndexMap::Hash(m) => m.len(),
            IndexMap::BTree(m) => m.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: IndexKind) -> SecondaryIndex {
        let mut idx = SecondaryIndex::new(1, kind);
        let rows = [
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(3), Value::Str("a".into())],
            vec![Value::Int(4), Value::Null],
        ];
        for (rid, row) in rows.iter().enumerate() {
            idx.insert(row, rid);
        }
        idx
    }

    #[test]
    fn lookup_preserves_insertion_order_and_skips_nulls() {
        for kind in [IndexKind::Hash, IndexKind::BTree] {
            let idx = sample(kind);
            assert_eq!(idx.lookup(&Value::Str("a".into())), &[0, 2]);
            assert_eq!(idx.lookup(&Value::Str("b".into())), &[1]);
            assert_eq!(idx.lookup(&Value::Str("zzz".into())), &[] as &[usize]);
            assert_eq!(idx.lookup(&Value::Null), &[] as &[usize]);
            assert_eq!(idx.len(), 3, "NULL key not indexed");
            assert_eq!(idx.distinct_keys(), 2);
        }
    }

    #[test]
    fn numeric_keys_unify_int_float_and_fold_negative_zero() {
        for kind in [IndexKind::Hash, IndexKind::BTree] {
            let mut idx = SecondaryIndex::new(0, kind);
            idx.insert(&[Value::Int(3)], 0);
            idx.insert(&[Value::Float(3.0)], 1);
            idx.insert(&[Value::Float(0.0)], 2);
            idx.insert(&[Value::Float(-0.0)], 3);
            assert_eq!(idx.lookup(&Value::Float(3.0)), &[0, 1]);
            assert_eq!(idx.lookup(&Value::Int(3)), &[0, 1]);
            assert_eq!(idx.lookup(&Value::Int(0)), &[2, 3]);
            assert_eq!(idx.lookup(&Value::Float(-0.0)), &[2, 3]);
        }
    }

    #[test]
    fn btree_orders_mixed_keys_totally() {
        let mut idx = SecondaryIndex::new(0, IndexKind::BTree);
        for (rid, v) in [
            Value::Str("m".into()),
            Value::Int(-5),
            Value::Bool(true),
            Value::Float(2.25),
            Value::Str("a".into()),
        ]
        .iter()
        .enumerate()
        {
            idx.insert(std::slice::from_ref(v), rid);
        }
        assert_eq!(idx.distinct_keys(), 5);
        for v in [Value::Int(-5), Value::Float(2.25), Value::Bool(true)] {
            assert_eq!(idx.lookup(&v).len(), 1);
        }
    }
}
