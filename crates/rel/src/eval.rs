//! SQL evaluation.
//!
//! A deliberately small but real query engine:
//!
//! * **scans** apply single-table predicates eagerly, so selective filters
//!   (e.g. `starrating > 4`) never build large intermediates;
//! * **joins** are hash equi-joins when the WHERE clause provides an
//!   equality conjunct linking the new FROM item to the already-joined
//!   prefix, nested-loop cross products otherwise;
//! * **grouping** is hash-based; aggregates follow SQL semantics (NULLs
//!   skipped, `SUM` over the empty set is NULL, implicit single group when
//!   aggregates appear without `GROUP BY`);
//! * **EXISTS** conjuncts are applied last; a tripwire on the row scope
//!   detects uncorrelated subqueries so they are evaluated once per query
//!   rather than once per row;
//! * **parameters** (`$var.column`) resolve against a [`ParamEnv`] binding
//!   each binding variable to a named tuple — exactly the mechanism
//!   schema-tree tag queries use (Definition 1).

use std::cell::Cell;
use std::collections::HashMap;

use crate::ast::{AggFunc, BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::error::{Error, Result};
use crate::schema::Catalog;
use crate::table::Database;
use crate::value::Value;

/// A named tuple: what a binding variable ranges over.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTuple {
    /// Column names.
    pub columns: Vec<String>,
    /// Values, parallel to `columns`.
    pub values: Vec<Value>,
}

impl NamedTuple {
    /// Looks up a column value by name.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.columns
            .iter()
            .position(|c| c == column)
            .map(|i| &self.values[i])
    }
}

/// Binding-variable environment: `$var` → tuple.
pub type ParamEnv = HashMap<String, NamedTuple>;

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output column names, in select-list order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Extracts row `i` as a [`NamedTuple`].
    pub fn tuple(&self, i: usize) -> NamedTuple {
        NamedTuple {
            columns: self.columns.clone(),
            values: self.rows[i].clone(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Evaluation tuning knobs (for ablation studies; the defaults are what
/// `eval_query` uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Use hash equi-joins when the WHERE clause provides a key; when
    /// disabled every join is a nested-loop cross product filtered
    /// afterwards.
    pub hash_joins: bool,
    /// Evaluate row-independent EXISTS subqueries once per query instead
    /// of once per row (the tripwire-scope optimization).
    pub cache_uncorrelated_exists: bool,
    /// Let prepared plans serve an equality pushdown from a declared
    /// secondary index (fetching only candidate rows) instead of scanning
    /// the table. Rows and row order are unchanged — indexes preserve
    /// insertion order and the equality is still rechecked exactly. The
    /// one observable difference: pushdown predicates are never evaluated
    /// on non-candidate rows, so a predicate that would only *type-error*
    /// on rows the index skips no longer surfaces that error.
    pub use_indexes: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            hash_joins: true,
            cache_uncorrelated_exists: true,
            use_indexes: true,
        }
    }
}

/// Work counters for one (or several accumulated) query evaluations.
///
/// These expose what the engine actually did — the paper's efficiency
/// argument ("the composed view does not generate the unnecessary nodes")
/// becomes measurable: how many base rows were touched, which joins got a
/// hash key and which fell back to nested loops, how often EXISTS
/// subqueries ran versus being served from the uncorrelated cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Query blocks evaluated (top-level, derived tables and EXISTS
    /// subqueries each count once per evaluation).
    pub queries: u64,
    /// Top-level invocations carrying a non-empty [`ParamEnv`] — i.e.
    /// parameterized tag-query executions in the Definition 1 sense.
    pub param_queries: u64,
    /// Base-table rows read into working relations.
    pub rows_scanned: u64,
    /// Hash tables built for equi-joins.
    pub hash_join_builds: u64,
    /// Rows inserted into hash-join build sides.
    pub hash_join_build_rows: u64,
    /// Rows probed against hash-join tables.
    pub hash_join_probe_rows: u64,
    /// Joins that fell back to a nested-loop cross product (no usable
    /// equality key).
    pub nested_loop_joins: u64,
    /// Rows emitted by nested-loop cross products.
    pub nested_loop_rows: u64,
    /// EXISTS subquery evaluations actually performed.
    pub exists_evals: u64,
    /// Rows whose residual predicate was served from the cached result of
    /// an uncorrelated evaluation instead of re-running it.
    pub exists_cache_hits: u64,
    /// GROUP BY buckets created (implicit single groups included).
    pub group_buckets: u64,
    /// Equality pushdowns served by a secondary-index lookup instead of a
    /// table scan (prepared plans only; `rows_scanned` then counts the
    /// candidate rows fetched, not the table size).
    pub index_lookups: u64,
}

impl EvalStats {
    /// Accumulates counters from another run (e.g. per tag query during
    /// publishing).
    pub fn absorb(&mut self, other: &EvalStats) {
        self.queries += other.queries;
        self.param_queries += other.param_queries;
        self.rows_scanned += other.rows_scanned;
        self.hash_join_builds += other.hash_join_builds;
        self.hash_join_build_rows += other.hash_join_build_rows;
        self.hash_join_probe_rows += other.hash_join_probe_rows;
        self.nested_loop_joins += other.nested_loop_joins;
        self.nested_loop_rows += other.nested_loop_rows;
        self.exists_evals += other.exists_evals;
        self.exists_cache_hits += other.exists_cache_hits;
        self.group_buckets += other.group_buckets;
        self.index_lookups += other.index_lookups;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "queries evaluated     {}", self.queries)?;
        writeln!(f, "  parameterized       {}", self.param_queries)?;
        writeln!(f, "rows scanned          {}", self.rows_scanned)?;
        writeln!(
            f,
            "hash joins            {} ({} build rows, {} probe rows)",
            self.hash_join_builds, self.hash_join_build_rows, self.hash_join_probe_rows
        )?;
        writeln!(
            f,
            "nested-loop fallbacks {} ({} rows emitted)",
            self.nested_loop_joins, self.nested_loop_rows
        )?;
        writeln!(
            f,
            "EXISTS evaluations    {} ({} cache hits)",
            self.exists_evals, self.exists_cache_hits
        )?;
        writeln!(f, "group-by buckets      {}", self.group_buckets)?;
        write!(f, "index lookups         {}", self.index_lookups)
    }
}

/// Evaluates a query against a database with the given parameter bindings.
pub fn eval_query(db: &Database, q: &SelectQuery, params: &ParamEnv) -> Result<Relation> {
    eval_query_with(db, q, params, EvalOptions::default())
}

/// [`eval_query`] with explicit [`EvalOptions`].
pub fn eval_query_with(
    db: &Database,
    q: &SelectQuery,
    params: &ParamEnv,
    options: EvalOptions,
) -> Result<Relation> {
    let stats = Cell::new(EvalStats::default());
    eval_scoped_opt(db, q, params, None, options, &stats)
}

/// [`eval_query_with`] that additionally accumulates [`EvalStats`] counters
/// into `stats` (counters are added, never reset, so one `EvalStats` can
/// aggregate a whole publish run).
pub fn eval_query_stats(
    db: &Database,
    q: &SelectQuery,
    params: &ParamEnv,
    options: EvalOptions,
    stats: &mut EvalStats,
) -> Result<Relation> {
    let cell = Cell::new(EvalStats::default());
    let rel = eval_scoped_opt(db, q, params, None, options, &cell)?;
    let mut run = cell.get();
    if !params.is_empty() {
        run.param_queries += 1;
    }
    stats.absorb(&run);
    Ok(rel)
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// Column layout of a working relation: `(qualifier, name)` per slot.
/// Shared with the EXPLAIN planner simulation (`crate::explain`).
pub(crate) type Layout = Vec<(String, String)>;

pub(crate) struct Scope<'a> {
    pub(crate) layout: &'a Layout,
    pub(crate) row: &'a [Value],
    pub(crate) parent: Option<&'a Scope<'a>>,
    /// Tripwire: set when a lookup matches in *this* scope level. Used to
    /// detect whether an EXISTS subquery is correlated with the row.
    pub(crate) probe: Option<&'a Cell<bool>>,
}

impl<'a> Scope<'a> {
    pub(crate) fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Value> {
        let mut found: Option<&Value> = None;
        match qualifier {
            Some(q) => {
                for (i, (cq, cn)) in self.layout.iter().enumerate() {
                    if cq == q && cn == name {
                        found = Some(&self.row[i]);
                        break;
                    }
                }
            }
            None => {
                for (i, (_, cn)) in self.layout.iter().enumerate() {
                    if cn == name {
                        if found.is_some() {
                            return Err(Error::AmbiguousColumn {
                                name: name.to_owned(),
                            });
                        }
                        found = Some(&self.row[i]);
                    }
                }
            }
        }
        if let Some(v) = found {
            if let Some(p) = self.probe {
                p.set(true);
            }
            return Ok(v.clone());
        }
        match self.parent {
            Some(p) => p.resolve(qualifier, name),
            None => Err(Error::UnknownColumn {
                reference: match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_owned(),
                },
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar evaluation
// ---------------------------------------------------------------------------

struct EvalCtx<'a> {
    db: &'a Database,
    params: &'a ParamEnv,
    options: EvalOptions,
    stats: &'a Cell<EvalStats>,
}

impl EvalCtx<'_> {
    /// Updates the run's counters. `EvalStats` is `Copy`, so a `Cell`
    /// suffices — no `RefCell` borrow bookkeeping in the recursion.
    fn bump(&self, f: impl FnOnce(&mut EvalStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

fn eval_scalar(ctx: &EvalCtx<'_>, e: &ScalarExpr, scope: &Scope<'_>) -> Result<Value> {
    match e {
        ScalarExpr::Column { qualifier, name } => scope.resolve(qualifier.as_deref(), name),
        ScalarExpr::Param { var, column } => resolve_param(ctx.params, var, column),
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Binary { op, lhs, rhs } => {
            let l = eval_scalar(ctx, lhs, scope)?;
            match op {
                BinOp::And => {
                    if !l.is_truthy() {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_scalar(ctx, rhs, scope)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                BinOp::Or => {
                    if l.is_truthy() {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_scalar(ctx, rhs, scope)?;
                    Ok(Value::Bool(r.is_truthy()))
                }
                _ => {
                    let r = eval_scalar(ctx, rhs, scope)?;
                    eval_binop(*op, &l, &r)
                }
            }
        }
        ScalarExpr::Not(inner) => {
            let v = eval_scalar(ctx, inner, scope)?;
            // NOT unknown is unknown → filters treat as false.
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        ScalarExpr::IsNull(inner) => {
            let v = eval_scalar(ctx, inner, scope)?;
            Ok(Value::Bool(v.is_null()))
        }
        ScalarExpr::Exists(q) => {
            ctx.bump(|s| s.exists_evals += 1);
            let rel = eval_scoped_opt(ctx.db, q, ctx.params, Some(scope), ctx.options, ctx.stats)?;
            Ok(Value::Bool(!rel.is_empty()))
        }
        ScalarExpr::Aggregate { .. } => Err(Error::MisplacedAggregate),
    }
}

pub(crate) fn resolve_param(params: &ParamEnv, var: &str, column: &str) -> Result<Value> {
    let tuple = params.get(var).ok_or_else(|| Error::UnboundParameter {
        var: var.to_owned(),
    })?;
    tuple
        .get(column)
        .cloned()
        .ok_or_else(|| Error::ParameterColumn {
            var: var.to_owned(),
            column: column.to_owned(),
        })
}

pub(crate) fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if op.is_comparison() {
        let cmp = l.sql_cmp(r);
        return Ok(match cmp {
            None => Value::Null, // unknown
            Some(ord) => Value::Bool(match op {
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                BinOp::Ne => ord != std::cmp::Ordering::Equal,
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::Le => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }),
        });
    }
    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            _ => unreachable!("non-arithmetic op"),
        }),
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(Error::Type {
                    reason: format!("arithmetic on non-numeric values {l} and {r}"),
                });
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                _ => unreachable!("non-arithmetic op"),
            };
            Ok(Value::Float(v))
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregate evaluation (per group)
// ---------------------------------------------------------------------------

/// Evaluates an expression that may contain aggregates over a group of rows.
/// Non-aggregate subexpressions are evaluated on the group's first row (the
/// composed queries always GROUP BY every projected column, so all rows of a
/// group agree on them). An empty group (implicit aggregation over an empty
/// input) uses NULLs for bare column references.
fn eval_agg_expr(
    ctx: &EvalCtx<'_>,
    e: &ScalarExpr,
    layout: &Layout,
    group: &[&Vec<Value>],
    parent: Option<&Scope<'_>>,
) -> Result<Value> {
    match e {
        ScalarExpr::Aggregate { func, arg } => {
            let mut acc = AggAcc::new(*func);
            for row in group {
                let scope = Scope {
                    layout,
                    row,
                    parent,
                    probe: None,
                };
                let v = match arg {
                    Some(a) => eval_scalar(ctx, a, &scope)?,
                    None => Value::Int(1), // COUNT(*)
                };
                acc.feed(&v)?;
            }
            Ok(acc.finish())
        }
        ScalarExpr::Binary { op, lhs, rhs } => {
            let l = eval_agg_expr(ctx, lhs, layout, group, parent)?;
            let r = eval_agg_expr(ctx, rhs, layout, group, parent)?;
            match op {
                BinOp::And => Ok(Value::Bool(l.is_truthy() && r.is_truthy())),
                BinOp::Or => Ok(Value::Bool(l.is_truthy() || r.is_truthy())),
                _ => eval_binop(*op, &l, &r),
            }
        }
        ScalarExpr::Not(inner) => {
            let v = eval_agg_expr(ctx, inner, layout, group, parent)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(!v.is_truthy()))
            }
        }
        ScalarExpr::IsNull(inner) => {
            let v = eval_agg_expr(ctx, inner, layout, group, parent)?;
            Ok(Value::Bool(v.is_null()))
        }
        other => match group.first() {
            Some(row) => {
                let scope = Scope {
                    layout,
                    row,
                    parent,
                    probe: None,
                };
                eval_scalar(ctx, other, &scope)
            }
            None => match other {
                // Empty implicit group: columns are NULL, constants are
                // themselves.
                ScalarExpr::Column { .. } => Ok(Value::Null),
                _ => {
                    let empty_layout = Layout::new();
                    let empty_row: Vec<Value> = Vec::new();
                    let scope = Scope {
                        layout: &empty_layout,
                        row: &empty_row,
                        parent,
                        probe: None,
                    };
                    eval_scalar(ctx, other, &scope)
                }
            },
        },
    }
}

pub(crate) struct AggAcc {
    func: AggFunc,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    best: Option<Value>,
}

impl AggAcc {
    pub(crate) fn new(func: AggFunc) -> Self {
        AggAcc {
            func,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            best: None,
        }
    }

    pub(crate) fn feed(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // SQL aggregates skip NULLs
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.sum_i += i;
                    self.sum_f += *i as f64;
                }
                Value::Float(f) => {
                    self.saw_float = true;
                    self.sum_f += f;
                }
                other => {
                    return Err(Error::Type {
                        reason: format!("SUM/AVG over non-numeric value {other}"),
                    })
                }
            },
            AggFunc::Min => {
                if self.best.as_ref().and_then(|b| v.sql_cmp(b)) != Some(std::cmp::Ordering::Less)
                    && self.best.is_some()
                {
                } else {
                    self.best = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.best.as_ref().and_then(|b| v.sql_cmp(b))
                    == Some(std::cmp::Ordering::Greater)
                    || self.best.is_none()
                {
                    self.best = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float(self.sum_f)
                } else {
                    Value::Int(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.best.unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// Grouping keys
// ---------------------------------------------------------------------------

/// Owned, hashable key for grouping and hash joins. NULLs group together in
/// GROUP BY; join code filters NULL keys out beforehand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    Null,
    Num(u64),
    Str(String),
    Bool(bool),
}

pub(crate) fn key_of(v: &Value) -> Key {
    match v {
        Value::Null => Key::Null,
        Value::Int(i) => Key::Num((*i as f64).to_bits()),
        Value::Float(f) => Key::Num(f.to_bits()),
        Value::Str(s) => Key::Str(s.clone()),
        Value::Bool(b) => Key::Bool(*b),
    }
}

// ---------------------------------------------------------------------------
// The main pipeline
// ---------------------------------------------------------------------------

struct WorkRel {
    layout: Layout,
    rows: Vec<Vec<Value>>,
}

fn eval_scoped_opt(
    db: &Database,
    q: &SelectQuery,
    params: &ParamEnv,
    parent: Option<&Scope<'_>>,
    options: EvalOptions,
    stats: &Cell<EvalStats>,
) -> Result<Relation> {
    // Preserved-side derived tables (left-outer semantics): baseline rows
    // to pad back in after joins and residual filters.
    struct Preserved {
        offset: usize,
        width: usize,
        baseline: Vec<Vec<Value>>,
    }

    let ctx = EvalCtx {
        db,
        params,
        options,
        stats,
    };
    ctx.bump(|s| s.queries += 1);

    // Alias uniqueness.
    {
        let mut seen = std::collections::HashSet::new();
        for t in &q.from {
            if !seen.insert(t.binding_name().to_owned()) {
                return Err(Error::DuplicateAlias {
                    alias: t.binding_name().to_owned(),
                });
            }
        }
    }

    // Reject ambiguous unqualified column references at this level before
    // any pushdown can silently mis-scope them (SQL treats them as errors).
    check_level_ambiguity(db, q, params, parent)?;

    // Split the WHERE clause into conjuncts.
    let mut conjuncts: Vec<&ScalarExpr> = Vec::new();
    if let Some(w) = &q.where_clause {
        split_and(w, &mut conjuncts);
    }
    let mut applied = vec![false; conjuncts.len()];

    // Join FROM items left to right.
    let mut work: Option<WorkRel> = None;
    let mut seen_aliases: Vec<String> = Vec::new();
    let mut seen_columns: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut preserved_list: Vec<Preserved> = Vec::new();

    for t in &q.from {
        let alias = t.binding_name().to_owned();
        let (cols, rows) = match t {
            TableRef::Named { name, .. } => {
                let table = db.table(name)?;
                let rows = table.rows().to_vec();
                ctx.bump(|s| s.rows_scanned += rows.len() as u64);
                (table.schema.column_names(), rows)
            }
            TableRef::Derived { query, .. } => {
                let rel = eval_scoped_opt(db, query, params, parent, options, stats)?;
                (rel.columns, rel.rows)
            }
        };
        let layout: Layout = cols.iter().map(|c| (alias.clone(), c.clone())).collect();
        let mut new_rel = WorkRel { layout, rows };

        // Eagerly apply conjuncts that reference only this FROM item
        // (plus params/literals) — classic predicate pushdown.
        for (i, c) in conjuncts.iter().enumerate() {
            if applied[i] || contains_exists(c) || c.contains_aggregate() {
                continue;
            }
            if resolvable_within(c, std::slice::from_ref(&alias), &cols_set(&new_rel.layout)) {
                filter_rows(&ctx, &mut new_rel, c, parent)?;
                applied[i] = true;
            }
        }

        if let TableRef::Derived {
            preserved: true, ..
        } = t
        {
            preserved_list.push(Preserved {
                offset: work.as_ref().map(|w| w.layout.len()).unwrap_or(0),
                width: new_rel.layout.len(),
                baseline: new_rel.rows.clone(),
            });
        }

        work = Some(match work {
            None => new_rel,
            Some(prev) => {
                // Find equi-join conjuncts between `prev` and `new_rel`.
                let mut join_pairs: Vec<(ScalarExpr, ScalarExpr)> = Vec::new();
                if options.hash_joins {
                    for (i, c) in conjuncts.iter().enumerate() {
                        if applied[i] {
                            continue;
                        }
                        if let Some((l, r)) = equi_pair(c, &prev, &new_rel) {
                            join_pairs.push((l, r));
                            applied[i] = true;
                        }
                    }
                }
                hash_join(&ctx, &prev, &new_rel, &join_pairs, parent)?
            }
        });
        seen_aliases.push(alias);
        if let Some(w) = &work {
            seen_columns = cols_set(&w.layout);
        }

        // Apply conjuncts that became resolvable over the joined prefix.
        if let Some(w) = work.as_mut() {
            for (i, c) in conjuncts.iter().enumerate() {
                if applied[i] || contains_exists(c) || c.contains_aggregate() {
                    continue;
                }
                if resolvable_within(c, &seen_aliases, &seen_columns) {
                    filter_rows(&ctx, w, c, parent)?;
                    applied[i] = true;
                }
            }
        }
    }

    let mut work = work.unwrap_or(WorkRel {
        layout: Layout::new(),
        rows: vec![Vec::new()], // SELECT without FROM is not in the dialect,
                                // but an empty FROM list yields one empty row
    });

    // Remaining conjuncts: EXISTS and anything referencing outer scopes.
    for (i, c) in conjuncts.iter().enumerate() {
        if applied[i] {
            continue;
        }
        if c.contains_aggregate() {
            return Err(Error::MisplacedAggregate);
        }
        apply_residual_filter(&ctx, &mut work, c, parent)?;
        applied[i] = true;
    }

    // Pad preserved-side rows back in (left-outer semantics): baseline
    // rows with no surviving join partner appear once, other columns NULL.
    for p in &preserved_list {
        let present: std::collections::HashSet<Vec<Key>> = work
            .rows
            .iter()
            .map(|r| r[p.offset..p.offset + p.width].iter().map(key_of).collect())
            .collect();
        for b in &p.baseline {
            let key: Vec<Key> = b.iter().map(key_of).collect();
            if !present.contains(&key) {
                let mut row = vec![Value::Null; work.layout.len()];
                row[p.offset..p.offset + p.width].clone_from_slice(b);
                work.rows.push(row);
            }
        }
    }

    // Grouping / projection.
    let mut rel = if q.is_aggregating() {
        project_grouped(&ctx, q, &work, parent)?
    } else {
        project_plain(&ctx, q, &work, parent)?
    };

    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept = Vec::new();
        for row in rel.rows.drain(..) {
            let key: Vec<Key> = row.iter().map(key_of).collect();
            if seen.insert(key) {
                kept.push(row);
            }
        }
        rel.rows = kept;
    }
    Ok(rel)
}

/// Column names a FROM item provides, without evaluating derived tables.
fn from_item_columns(db: &Database, t: &TableRef) -> Result<Vec<String>> {
    match t {
        TableRef::Named { name, .. } => Ok(db.table(name)?.schema.column_names()),
        TableRef::Derived { query, .. } => {
            // Static layout of the derived table.
            let mut layout: Vec<(String, String)> = Vec::new();
            for sub in &query.from {
                let alias = sub.binding_name().to_owned();
                for c in from_item_columns(db, sub)? {
                    layout.push((alias.clone(), c));
                }
            }
            let mut out = Vec::new();
            for (i, item) in query.select.iter().enumerate() {
                out.extend(item_names(item, &layout, i)?);
            }
            Ok(out)
        }
    }
}

/// Errors when an unqualified column referenced at this query level is
/// provided by more than one FROM item.
fn check_level_ambiguity(
    db: &Database,
    q: &SelectQuery,
    _params: &ParamEnv,
    _parent: Option<&Scope<'_>>,
) -> Result<()> {
    let mut sets: Vec<std::collections::HashSet<String>> = Vec::new();
    for t in &q.from {
        sets.push(from_item_columns(db, t)?.into_iter().collect());
    }
    ambiguity_from_sets(q, &sets)
}

/// Unqualified column names referenced at this query level (select list,
/// WHERE, GROUP BY, HAVING — EXISTS subqueries excluded, they have their
/// own level). Shared between the interpreter's per-evaluation check and
/// the prepared-plan compiler so both reject exactly the same queries.
pub(crate) fn unqualified_names(q: &SelectQuery) -> Vec<String> {
    fn walk(e: &ScalarExpr, names: &mut Vec<String>) {
        match e {
            ScalarExpr::Column {
                qualifier: None,
                name,
            } if !names.contains(name) => names.push(name.clone()),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, names);
                walk(rhs, names);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, names),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, names),
            _ => {}
        }
    }

    let mut names: Vec<String> = Vec::new();
    for item in &q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut names);
        }
    }
    if let Some(w) = &q.where_clause {
        walk(w, &mut names);
    }
    for g in &q.group_by {
        walk(g, &mut names);
    }
    if let Some(h) = &q.having {
        walk(h, &mut names);
    }
    names
}

/// The ambiguity rule itself, over precomputed per-FROM-item column sets.
pub(crate) fn ambiguity_from_sets(
    q: &SelectQuery,
    sets: &[std::collections::HashSet<String>],
) -> Result<()> {
    for n in unqualified_names(q) {
        if sets.iter().filter(|s| s.contains(&n)).count() > 1 {
            return Err(Error::AmbiguousColumn { name: n });
        }
    }
    Ok(())
}

pub(crate) fn cols_set(layout: &Layout) -> std::collections::HashSet<String> {
    layout.iter().map(|(_, n)| n.clone()).collect()
}

pub(crate) fn split_and<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
    match e {
        ScalarExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other),
    }
}

pub(crate) fn contains_exists(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Exists(_) => true,
        ScalarExpr::Binary { lhs, rhs, .. } => contains_exists(lhs) || contains_exists(rhs),
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => contains_exists(i),
        _ => false,
    }
}

/// True if every column reference in `e` resolves within the given aliases /
/// column-name set (conservative: unqualified names must be member columns).
pub(crate) fn resolvable_within(
    e: &ScalarExpr,
    aliases: &[String],
    columns: &std::collections::HashSet<String>,
) -> bool {
    match e {
        ScalarExpr::Column { qualifier, name } => match qualifier {
            Some(q) => aliases.iter().any(|a| a == q),
            None => columns.contains(name),
        },
        ScalarExpr::Param { .. } | ScalarExpr::Literal(_) => true,
        ScalarExpr::Binary { lhs, rhs, .. } => {
            resolvable_within(lhs, aliases, columns) && resolvable_within(rhs, aliases, columns)
        }
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => resolvable_within(i, aliases, columns),
        ScalarExpr::Exists(_) | ScalarExpr::Aggregate { .. } => false,
    }
}

/// If `c` is `lhs = rhs` with one side resolvable only in `prev` and the
/// other only in `next`, returns the pair ordered (prev-side, next-side).
fn equi_pair(c: &ScalarExpr, prev: &WorkRel, next: &WorkRel) -> Option<(ScalarExpr, ScalarExpr)> {
    equi_pair_layouts(c, &prev.layout, &next.layout)
}

/// Layout-based form of [`equi_pair`], usable without materialized rows —
/// this is how the EXPLAIN printer re-derives join-strategy decisions.
pub(crate) fn equi_pair_layouts(
    c: &ScalarExpr,
    prev: &Layout,
    next: &Layout,
) -> Option<(ScalarExpr, ScalarExpr)> {
    let ScalarExpr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = c
    else {
        return None;
    };
    let prev_aliases: Vec<String> = distinct_aliases(prev);
    let next_aliases: Vec<String> = distinct_aliases(next);
    let prev_cols = cols_set(prev);
    let next_cols = cols_set(next);
    let l_prev = resolvable_within(lhs, &prev_aliases, &prev_cols);
    let l_next = resolvable_within(lhs, &next_aliases, &next_cols);
    let r_prev = resolvable_within(rhs, &prev_aliases, &prev_cols);
    let r_next = resolvable_within(rhs, &next_aliases, &next_cols);
    // Require an unambiguous split; a side resolvable in both (e.g. a
    // parameter-only expression) is not a join key.
    if l_prev && !l_next && r_next && !r_prev {
        Some((*lhs.clone(), *rhs.clone()))
    } else if r_prev && !r_next && l_next && !l_prev {
        Some((*rhs.clone(), *lhs.clone()))
    } else {
        None
    }
}

pub(crate) fn distinct_aliases(layout: &Layout) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for (q, _) in layout {
        if !out.contains(q) {
            out.push(q.clone());
        }
    }
    out
}

fn filter_rows(
    ctx: &EvalCtx<'_>,
    rel: &mut WorkRel,
    pred: &ScalarExpr,
    parent: Option<&Scope<'_>>,
) -> Result<()> {
    let mut kept = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        let scope = Scope {
            layout: &rel.layout,
            row: &row,
            parent,
            probe: None,
        };
        if eval_scalar(ctx, pred, &scope)?.is_truthy() {
            kept.push(row);
        }
    }
    rel.rows = kept;
    Ok(())
}

/// Applies a residual conjunct (typically containing EXISTS). Uses a probe
/// cell to detect row-correlation: if the first row's evaluation never read
/// a column from the row scope, the predicate is row-independent and its
/// result is reused for all rows.
fn apply_residual_filter(
    ctx: &EvalCtx<'_>,
    rel: &mut WorkRel,
    pred: &ScalarExpr,
    parent: Option<&Scope<'_>>,
) -> Result<()> {
    let mut kept = Vec::with_capacity(rel.rows.len());
    let mut cached: Option<bool> = None;
    let probe = Cell::new(false);
    for (i, row) in rel.rows.drain(..).enumerate() {
        let keep = match cached {
            Some(b) => {
                ctx.bump(|s| s.exists_cache_hits += 1);
                b
            }
            None => {
                let scope = Scope {
                    layout: &rel.layout,
                    row: &row,
                    parent,
                    probe: Some(&probe),
                };
                let b = eval_scalar(ctx, pred, &scope)?.is_truthy();
                if i == 0 && !probe.get() && ctx.options.cache_uncorrelated_exists {
                    // Never touched the row: constant for this evaluation.
                    cached = Some(b);
                }
                b
            }
        };
        if keep {
            kept.push(row);
        }
    }
    rel.rows = kept;
    Ok(())
}

fn hash_join(
    ctx: &EvalCtx<'_>,
    prev: &WorkRel,
    next: &WorkRel,
    pairs: &[(ScalarExpr, ScalarExpr)],
    parent: Option<&Scope<'_>>,
) -> Result<WorkRel> {
    let mut layout = prev.layout.clone();
    layout.extend(next.layout.iter().cloned());

    if pairs.is_empty() {
        // Cross product.
        let mut rows = Vec::with_capacity(prev.rows.len() * next.rows.len());
        for a in &prev.rows {
            for b in &next.rows {
                let mut row = a.clone();
                row.extend(b.iter().cloned());
                rows.push(row);
            }
        }
        ctx.bump(|s| {
            s.nested_loop_joins += 1;
            s.nested_loop_rows += rows.len() as u64;
        });
        return Ok(WorkRel { layout, rows });
    }

    ctx.bump(|s| {
        s.hash_join_builds += 1;
        s.hash_join_build_rows += next.rows.len() as u64;
        s.hash_join_probe_rows += prev.rows.len() as u64;
    });

    // Build hash table on the next side.
    let mut index: HashMap<Vec<Key>, Vec<usize>> = HashMap::new();
    'build: for (i, row) in next.rows.iter().enumerate() {
        let mut key = Vec::with_capacity(pairs.len());
        for (_, nexpr) in pairs {
            let scope = Scope {
                layout: &next.layout,
                row,
                parent,
                probe: None,
            };
            let v = eval_scalar(ctx, nexpr, &scope)?;
            if v.is_null() {
                continue 'build; // NULL never equi-joins
            }
            key.push(key_of(&v));
        }
        index.entry(key).or_default().push(i);
    }

    // Probe with the prev side.
    let mut rows = Vec::new();
    'probe: for a in &prev.rows {
        let mut key = Vec::with_capacity(pairs.len());
        for (pexpr, _) in pairs {
            let scope = Scope {
                layout: &prev.layout,
                row: a,
                parent,
                probe: None,
            };
            let v = eval_scalar(ctx, pexpr, &scope)?;
            if v.is_null() {
                continue 'probe;
            }
            key.push(key_of(&v));
        }
        if let Some(matches) = index.get(&key) {
            for &i in matches {
                let mut row = a.clone();
                row.extend(next.rows[i].iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(WorkRel { layout, rows })
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

/// Output column name for one select item (see [`output_columns`]).
pub(crate) fn item_names(item: &SelectItem, layout: &Layout, idx: usize) -> Result<Vec<String>> {
    Ok(match item {
        SelectItem::Star => layout.iter().map(|(_, n)| n.clone()).collect(),
        SelectItem::QualifiedStar(q) => {
            let names: Vec<String> = layout
                .iter()
                .filter(|(cq, _)| cq == q)
                .map(|(_, n)| n.clone())
                .collect();
            if names.is_empty() {
                return Err(Error::UnknownTable { name: q.clone() });
            }
            names
        }
        SelectItem::Expr { expr, alias } => vec![match alias {
            Some(a) => a.clone(),
            None => derived_name(expr, idx),
        }],
    })
}

fn derived_name(expr: &ScalarExpr, idx: usize) -> String {
    match expr {
        ScalarExpr::Column { name, .. } => name.clone(),
        ScalarExpr::Param { column, .. } => column.clone(),
        ScalarExpr::Aggregate { func, .. } => func.default_column_name().to_owned(),
        _ => format!("col{idx}"),
    }
}

fn project_plain(
    ctx: &EvalCtx<'_>,
    q: &SelectQuery,
    work: &WorkRel,
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    let mut columns = Vec::new();
    for (i, item) in q.select.iter().enumerate() {
        columns.extend(item_names(item, &work.layout, i)?);
    }
    let mut rows = Vec::with_capacity(work.rows.len());
    for row in &work.rows {
        let scope = Scope {
            layout: &work.layout,
            row,
            parent,
            probe: None,
        };
        let mut out = Vec::with_capacity(columns.len());
        for item in &q.select {
            match item {
                SelectItem::Star => out.extend(row.iter().cloned()),
                SelectItem::QualifiedStar(qal) => {
                    for (i, (cq, _)) in work.layout.iter().enumerate() {
                        if cq == qal {
                            out.push(row[i].clone());
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(eval_scalar(ctx, expr, &scope)?),
            }
        }
        rows.push(out);
    }
    Ok(Relation { columns, rows })
}

fn project_grouped(
    ctx: &EvalCtx<'_>,
    q: &SelectQuery,
    work: &WorkRel,
    parent: Option<&Scope<'_>>,
) -> Result<Relation> {
    let mut columns = Vec::new();
    for (i, item) in q.select.iter().enumerate() {
        columns.extend(item_names(item, &work.layout, i)?);
    }

    // Build groups.
    let mut group_order: Vec<Vec<Key>> = Vec::new();
    let mut groups: HashMap<Vec<Key>, Vec<&Vec<Value>>> = HashMap::new();
    if q.group_by.is_empty() {
        // Implicit single group, present even over empty input.
        groups.insert(Vec::new(), work.rows.iter().collect());
        group_order.push(Vec::new());
    } else {
        for row in &work.rows {
            let scope = Scope {
                layout: &work.layout,
                row,
                parent,
                probe: None,
            };
            let mut key = Vec::with_capacity(q.group_by.len());
            for g in &q.group_by {
                key.push(key_of(&eval_scalar(ctx, g, &scope)?));
            }
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(row);
        }
    }

    ctx.bump(|s| s.group_buckets += groups.len() as u64);

    let mut rows = Vec::with_capacity(groups.len());
    for key in &group_order {
        let group = &groups[key];
        // HAVING.
        if let Some(h) = &q.having {
            let v = eval_agg_expr(ctx, h, &work.layout, group, parent)?;
            if !v.is_truthy() {
                continue;
            }
        }
        let mut out = Vec::with_capacity(columns.len());
        for item in &q.select {
            match item {
                SelectItem::Star => {
                    let rep = group.first();
                    match rep {
                        Some(r) => out.extend(r.iter().cloned()),
                        None => out.extend(work.layout.iter().map(|_| Value::Null)),
                    }
                }
                SelectItem::QualifiedStar(qal) => {
                    for (i, (cq, _)) in work.layout.iter().enumerate() {
                        if cq == qal {
                            match group.first() {
                                Some(r) => out.push(r[i].clone()),
                                None => out.push(Value::Null),
                            }
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    out.push(eval_agg_expr(ctx, expr, &work.layout, group, parent)?);
                }
            }
        }
        rows.push(out);
    }
    Ok(Relation { columns, rows })
}

// ---------------------------------------------------------------------------
// Static output-column computation
// ---------------------------------------------------------------------------

/// Computes a query's output column names without evaluating it. Needed by
/// the composition algorithm (to expand `GROUP BY TEMP.*` over a derived
/// table's columns) and by schema-tree validation.
pub fn output_columns(q: &SelectQuery, catalog: &Catalog) -> Result<Vec<String>> {
    // Layout of the FROM clause.
    let mut layout: Vec<(String, String)> = Vec::new();
    for t in &q.from {
        let alias = t.binding_name().to_owned();
        match t {
            TableRef::Named { name, .. } => {
                let schema = catalog.get(name)?;
                for c in &schema.columns {
                    layout.push((alias.clone(), c.name.clone()));
                }
            }
            TableRef::Derived { query, .. } => {
                for c in output_columns(query, catalog)? {
                    layout.push((alias.clone(), c));
                }
            }
        }
    }
    let mut out = Vec::new();
    for (i, item) in q.select.iter().enumerate() {
        out.extend(item_names(item, &layout, i)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn hotel_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "confroom",
                vec![
                    ColumnDef::new("c_id", ColumnType::Int),
                    ColumnDef::new("chotel_id", ColumnType::Int),
                    ColumnDef::new("capacity", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        for (id, hotel, cap) in [(100, 10, 300), (101, 10, 150), (102, 12, 500)] {
            db.insert(
                "confroom",
                vec![Value::Int(id), Value::Int(hotel), Value::Int(cap)],
            )
            .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> Relation {
        eval_query(db, &parse_query(sql).unwrap(), &ParamEnv::new()).unwrap()
    }

    fn run_with(db: &Database, sql: &str, params: &ParamEnv) -> Relation {
        eval_query(db, &parse_query(sql).unwrap(), params).unwrap()
    }

    fn metro_param(id: i64, name: &str) -> ParamEnv {
        let mut env = ParamEnv::new();
        env.insert(
            "m".into(),
            NamedTuple {
                columns: vec!["metroid".into(), "metroname".into()],
                values: vec![Value::Int(id), Value::Str(name.into())],
            },
        );
        env
    }

    #[test]
    fn simple_scan() {
        let db = hotel_db();
        let r = run(&db, "SELECT metroid, metroname FROM metroarea");
        assert_eq!(r.columns, vec!["metroid", "metroname"]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn where_filters() {
        let db = hotel_db();
        let r = run(&db, "SELECT hotelname FROM hotel WHERE starrating > 4");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parameterized_query() {
        let db = hotel_db();
        let env = metro_param(1, "chicago");
        let r = run_with(
            &db,
            "SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4",
            &env,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::Str("palmer".into()));
    }

    #[test]
    fn unbound_param_errors() {
        let db = hotel_db();
        let q = parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap();
        assert!(matches!(
            eval_query(&db, &q, &ParamEnv::new()),
            Err(Error::UnboundParameter { .. })
        ));
    }

    #[test]
    fn param_missing_column_errors() {
        let db = hotel_db();
        let mut env = ParamEnv::new();
        env.insert(
            "m".into(),
            NamedTuple {
                columns: vec!["other".into()],
                values: vec![Value::Int(1)],
            },
        );
        let q = parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap();
        assert!(matches!(
            eval_query(&db, &q, &env),
            Err(Error::ParameterColumn { .. })
        ));
    }

    #[test]
    fn hash_join_two_tables() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn cross_product_without_join_key() {
        let db = hotel_db();
        let r = run(&db, "SELECT hotelname, metroname FROM hotel, metroarea");
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn aggregates_with_group_by() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT chotel_id, SUM(capacity), COUNT(*) FROM confroom GROUP BY chotel_id",
        );
        assert_eq!(r.columns, vec!["chotel_id", "sum", "count"]);
        assert_eq!(r.len(), 2);
        let palmer = r.rows.iter().find(|r| r[0] == Value::Int(10)).unwrap();
        assert_eq!(palmer[1], Value::Int(450));
        assert_eq!(palmer[2], Value::Int(2));
    }

    #[test]
    fn implicit_single_group() {
        let db = hotel_db();
        let r = run(&db, "SELECT SUM(capacity) FROM confroom");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(950));
        // Empty input still yields one row with NULL sum / 0 count.
        let r = run(
            &db,
            "SELECT SUM(capacity), COUNT(*) FROM confroom WHERE capacity > 9999",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Null);
        assert_eq!(r.rows[0][1], Value::Int(0));
    }

    #[test]
    fn having_filters_groups() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT chotel_id FROM confroom GROUP BY chotel_id HAVING SUM(capacity) > 400",
        );
        assert_eq!(r.len(), 2);
        let r = run(
            &db,
            "SELECT chotel_id FROM confroom GROUP BY chotel_id HAVING SUM(capacity) > 460",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(12));
    }

    #[test]
    fn derived_table_with_params() {
        let db = hotel_db();
        let env = metro_param(1, "chicago");
        // The paper's Qs_new (Figure 7a) shape.
        let r = run_with(
            &db,
            "SELECT SUM(capacity), TEMP.* \
             FROM confroom, (SELECT * FROM hotel \
                             WHERE metro_id=$m.metroid AND starrating > 4) AS TEMP \
             WHERE chotel_id=TEMP.hotelid \
             GROUP BY TEMP.hotelid, TEMP.hotelname, TEMP.starrating, TEMP.metro_id",
            &env,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(450)); // palmer's two rooms
        assert_eq!(r.columns[0], "sum");
        assert_eq!(
            r.columns[1..],
            ["hotelid", "hotelname", "starrating", "metro_id"]
        );
    }

    #[test]
    fn exists_uncorrelated_cached() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT * FROM hotel WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 1)",
        );
        assert_eq!(r.len(), 3);
        let r = run(
            &db,
            "SELECT * FROM hotel WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 99)",
        );
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn exists_correlated_by_column() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM confroom WHERE chotel_id = hotelid)",
        );
        assert_eq!(r.len(), 2); // palmer and plaza have conference rooms
    }

    #[test]
    fn exists_correlated_by_param() {
        let db = hotel_db();
        let mut env = ParamEnv::new();
        env.insert(
            "h".into(),
            NamedTuple {
                columns: vec!["hotelid".into()],
                values: vec![Value::Int(10)],
            },
        );
        let r = run_with(
            &db,
            "SELECT * FROM metroarea \
             WHERE EXISTS (SELECT * FROM confroom WHERE chotel_id = $h.hotelid)",
            &env,
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn null_never_equijoins() {
        let mut db = hotel_db();
        db.insert(
            "hotel",
            vec![
                Value::Int(99),
                Value::Str("ghost".into()),
                Value::Int(5),
                Value::Null,
            ],
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT hotelname FROM hotel, metroarea WHERE metro_id = metroid",
        );
        assert_eq!(r.len(), 3); // ghost's NULL metro_id joins nothing
    }

    #[test]
    fn three_way_join() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT metroname, hotelname, capacity \
             FROM metroarea, hotel, confroom \
             WHERE metro_id = metroid AND chotel_id = hotelid",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ambiguous_column_errors() {
        let mut db = hotel_db();
        db.create_table(
            TableSchema::new("other", vec![ColumnDef::new("hotelid", ColumnType::Int)]).unwrap(),
        );
        db.insert("other", vec![Value::Int(10)]).unwrap();
        let q = parse_query("SELECT hotelid FROM hotel, other WHERE starrating > 0").unwrap();
        assert!(matches!(
            eval_query(&db, &q, &ParamEnv::new()),
            Err(Error::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn distinct_dedups() {
        let db = hotel_db();
        let r = run(&db, "SELECT DISTINCT starrating FROM hotel");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arithmetic_in_select() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT capacity * 2 AS double FROM confroom WHERE c_id = 100",
        );
        assert_eq!(r.columns, vec!["double"]);
        assert_eq!(r.rows[0][0], Value::Int(600));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let db = hotel_db();
        let q = parse_query("SELECT * FROM confroom WHERE SUM(capacity) > 1").unwrap();
        assert!(matches!(
            eval_query(&db, &q, &ParamEnv::new()),
            Err(Error::MisplacedAggregate)
        ));
    }

    #[test]
    fn min_max_avg() {
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT MIN(capacity), MAX(capacity), AVG(capacity) FROM confroom",
        );
        assert_eq!(r.rows[0][0], Value::Int(150));
        assert_eq!(r.rows[0][1], Value::Int(500));
        assert_eq!(r.rows[0][2], Value::Float(950.0 / 3.0));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let db = hotel_db();
        let q = parse_query("SELECT * FROM hotel, hotel").unwrap();
        assert!(matches!(
            eval_query(&db, &q, &ParamEnv::new()),
            Err(Error::DuplicateAlias { .. })
        ));
        // Self-join with aliases is fine.
        let r = run(
            &db,
            "SELECT a.hotelid FROM hotel a, hotel b WHERE a.hotelid = b.hotelid",
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn output_columns_static() {
        let db = hotel_db();
        let cat = db.catalog();
        let q = parse_query(
            "SELECT SUM(capacity), TEMP.* FROM confroom, \
             (SELECT * FROM hotel) AS TEMP WHERE chotel_id = TEMP.hotelid",
        )
        .unwrap();
        assert_eq!(
            output_columns(&q, &cat).unwrap(),
            vec!["sum", "hotelid", "hotelname", "starrating", "metro_id"]
        );
        let q = parse_query("SELECT COUNT(a_id), startdate FROM availability").unwrap();
        assert!(output_columns(&q, &cat).is_err()); // unknown table
    }

    #[test]
    fn preserved_derived_table_keeps_unmatched_rows() {
        // `OUTER (…) AS TEMP` — every TEMP row survives; hotels with no
        // conference rooms get NULL aggregates (the empty-group case the
        // composition depends on).
        let db = hotel_db(); // hotel 11 (drake) has a confroom; 13 none
        let r = run(
            &db,
            "SELECT SUM(capacity), TEMP.hotelid \
             FROM confroom, OUTER (SELECT * FROM hotel) AS TEMP \
             WHERE chotel_id = TEMP.hotelid \
             GROUP BY TEMP.hotelid",
        );
        assert_eq!(r.len(), 3); // all three hotels
        let drake_less = r.rows.iter().find(|row| row[1] == Value::Int(11)).unwrap();
        assert_eq!(drake_less[0], Value::Null); // no rooms ⇒ SUM over NULL
        let palmer = r.rows.iter().find(|row| row[1] == Value::Int(10)).unwrap();
        assert_eq!(palmer[0], Value::Int(450));
    }

    #[test]
    fn preserved_respects_own_filters() {
        // Filters on the preserved side apply before padding: filtered-out
        // rows are NOT resurrected.
        let db = hotel_db();
        let r = run(
            &db,
            "SELECT COUNT(c_id), TEMP.hotelid \
             FROM confroom, OUTER (SELECT * FROM hotel WHERE starrating > 4) AS TEMP \
             WHERE chotel_id = TEMP.hotelid \
             GROUP BY TEMP.hotelid",
        );
        // Only the two five-star hotels appear.
        assert_eq!(r.len(), 2);
        let plaza = r.rows.iter().find(|row| row[1] == Value::Int(12)).unwrap();
        assert_eq!(plaza[0], Value::Int(1));
    }

    #[test]
    fn preserved_roundtrips_through_sql_text() {
        let q = parse_query(
            "SELECT * FROM confroom, OUTER (SELECT * FROM hotel) AS TEMP \
             WHERE chotel_id = TEMP.hotelid",
        )
        .unwrap();
        assert!(matches!(
            q.from[1],
            crate::ast::TableRef::Derived {
                preserved: true,
                ..
            }
        ));
        let reparsed = parse_query(&q.to_sql()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn null_arithmetic_and_comparisons() {
        let mut db = hotel_db();
        db.insert(
            "confroom",
            vec![Value::Int(103), Value::Int(10), Value::Null],
        )
        .unwrap();
        // NULL capacity: filtered by comparison, skipped by SUM, kept by
        // IS NULL.
        let r = run(&db, "SELECT * FROM confroom WHERE capacity > 0");
        assert_eq!(r.len(), 3);
        let r = run(&db, "SELECT SUM(capacity) FROM confroom");
        assert_eq!(r.rows[0][0], Value::Int(950));
        let r = run(&db, "SELECT c_id FROM confroom WHERE capacity IS NULL");
        assert_eq!(r.len(), 1);
        let r = run(
            &db,
            "SELECT c_id, capacity + 1 AS inc FROM confroom WHERE c_id = 103",
        );
        assert_eq!(r.rows[0][1], Value::Null);
    }

    fn stats_for(db: &Database, sql: &str, params: &ParamEnv) -> EvalStats {
        let mut stats = EvalStats::default();
        eval_query_stats(
            db,
            &parse_query(sql).unwrap(),
            params,
            EvalOptions::default(),
            &mut stats,
        )
        .unwrap();
        stats
    }

    #[test]
    fn stats_count_scans_and_hash_join() {
        let db = hotel_db();
        let s = stats_for(
            &db,
            "SELECT hotelname, metroname FROM hotel, metroarea WHERE metro_id = metroid",
            &ParamEnv::new(),
        );
        // One query block; 3 hotel rows + 2 metroarea rows scanned; one
        // hash join building on metroarea (2 rows) probed by hotel (3).
        assert_eq!(s.queries, 1);
        assert_eq!(s.rows_scanned, 5);
        assert_eq!(s.hash_join_builds, 1);
        assert_eq!(s.hash_join_build_rows, 2);
        assert_eq!(s.hash_join_probe_rows, 3);
        assert_eq!(s.nested_loop_joins, 0);
        assert_eq!(s.param_queries, 0);
    }

    #[test]
    fn stats_count_nested_loop_fallback() {
        let db = hotel_db();
        let s = stats_for(
            &db,
            "SELECT hotelname, metroname FROM hotel, metroarea",
            &ParamEnv::new(),
        );
        assert_eq!(s.hash_join_builds, 0);
        assert_eq!(s.nested_loop_joins, 1);
        assert_eq!(s.nested_loop_rows, 6); // 3 × 2 cross product
    }

    #[test]
    fn stats_count_group_buckets() {
        let db = hotel_db();
        let s = stats_for(
            &db,
            "SELECT chotel_id, SUM(capacity) FROM confroom GROUP BY chotel_id",
            &ParamEnv::new(),
        );
        assert_eq!(s.group_buckets, 2); // hotels 10 and 12
                                        // Bare aggregate: the implicit single group is still a bucket.
        let s = stats_for(&db, "SELECT SUM(capacity) FROM confroom", &ParamEnv::new());
        assert_eq!(s.group_buckets, 1);
    }

    #[test]
    fn stats_count_correlated_exists_per_row() {
        let db = hotel_db();
        let s = stats_for(
            &db,
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM confroom WHERE chotel_id = hotelid)",
            &ParamEnv::new(),
        );
        // Correlated: one EXISTS evaluation per hotel row, each scanning
        // the 3 confroom rows (plus the 3 hotel rows themselves).
        assert_eq!(s.exists_evals, 3);
        assert_eq!(s.exists_cache_hits, 0);
        assert_eq!(s.rows_scanned, 3 + 3 * 3);
        assert_eq!(s.queries, 1 + 3);
    }

    #[test]
    fn stats_count_uncorrelated_exists_cached() {
        let db = hotel_db();
        let s = stats_for(
            &db,
            "SELECT hotelname FROM hotel \
             WHERE EXISTS (SELECT * FROM metroarea WHERE metroid = 1)",
            &ParamEnv::new(),
        );
        // Uncorrelated: evaluated for the first row only, the other two
        // hotel rows are served from the cache.
        assert_eq!(s.exists_evals, 1);
        assert_eq!(s.exists_cache_hits, 2);
        assert_eq!(s.rows_scanned, 3 + 2);
    }

    #[test]
    fn stats_count_param_queries_and_accumulate() {
        let db = hotel_db();
        let mut stats = EvalStats::default();
        let q = parse_query("SELECT * FROM hotel WHERE metro_id = $m.metroid").unwrap();
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            let env = metro_param(id, name);
            eval_query_stats(&db, &q, &env, EvalOptions::default(), &mut stats).unwrap();
        }
        assert_eq!(stats.param_queries, 2);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rows_scanned, 6); // 3 hotel rows per invocation
    }

    #[test]
    fn group_by_null_groups_together() {
        let mut db = hotel_db();
        db.insert(
            "hotel",
            vec![
                Value::Int(98),
                Value::Str("a".into()),
                Value::Int(1),
                Value::Null,
            ],
        )
        .unwrap();
        db.insert(
            "hotel",
            vec![
                Value::Int(97),
                Value::Str("b".into()),
                Value::Int(1),
                Value::Null,
            ],
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT metro_id, COUNT(*) FROM hotel GROUP BY metro_id",
        );
        let null_group = r.rows.iter().find(|r| r[0] == Value::Null).unwrap();
        assert_eq!(null_group[1], Value::Int(2));
    }
}
