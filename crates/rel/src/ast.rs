//! SQL abstract syntax for the fragment emitted by view composition.
//!
//! This covers every query appearing in the paper's figures: select lists
//! with aggregates and qualified stars (`TEMP.*`), derived tables
//! (`(SELECT ...) AS TEMP`), parameters on binding variables
//! (`$m.metroid`), `GROUP BY` / `HAVING`, and `EXISTS` subqueries.

use crate::value::Value;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// SQL keyword for this function.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Default output-column name when the aggregate has no alias. The
    /// publisher turns result columns into XML attributes, and the paper's
    /// stylesheets reference them as `@sum` / `@count` (Figures 17, 25).
    pub fn default_column_name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Binary operators in scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` (also parsed from `!=`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// The operator in SQL source syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// True for `= <> < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference, optionally qualified: `hotelid` / `TEMP.hotelid`.
    Column {
        /// FROM-item alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Parameter on a binding variable: `$m.metroid` (§2.1: tag queries are
    /// parameterized by the binding variables of ancestor view nodes).
    Param {
        /// Binding-variable name (without `$`).
        var: String,
        /// Column of the bound tuple.
        column: String,
    },
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// `NOT expr`.
    Not(Box<ScalarExpr>),
    /// `expr IS NULL`.
    IsNull(Box<ScalarExpr>),
    /// `EXISTS (subquery)`.
    Exists(Box<SelectQuery>),
    /// Aggregate call: `SUM(capacity)`, `COUNT(*)` (arg `None`).
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Argument; `None` means `*` (only valid for COUNT).
        arg: Option<Box<ScalarExpr>>,
    },
}

impl ScalarExpr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Parameter reference `$var.column`.
    pub fn param(var: impl Into<String>, column: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Param {
            var: var.into(),
            column: column.into(),
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Literal(Value::Int(v))
    }

    /// String literal.
    pub fn str(v: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Literal(Value::Str(v.into()))
    }

    /// Binary operation helper.
    pub fn binary(op: BinOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::binary(BinOp::Eq, lhs, rhs)
    }

    /// True if this expression (not descending into subqueries) contains an
    /// aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ScalarExpr::Aggregate { .. } => true,
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.contains_aggregate(),
            _ => false,
        }
    }

    /// Collects the binding variables referenced by `$var.column` params,
    /// descending into subqueries.
    pub fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            ScalarExpr::Param { var, .. } if !out.contains(var) => out.push(var.clone()),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_params(out);
                rhs.collect_params(out);
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.collect_params(out),
            ScalarExpr::Exists(q) => q.collect_params_into(out),
            ScalarExpr::Aggregate { arg: Some(a), .. } => a.collect_params(out),
            _ => {}
        }
    }
}

/// One item of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: ScalarExpr,
        /// Optional output name.
        alias: Option<String>,
    },
    /// `*` — all columns of all FROM items.
    Star,
    /// `alias.*` — all columns of one FROM item (the paper's `TEMP.*`).
    QualifiedStar(
        /// The FROM-item alias.
        String,
    ),
}

impl SelectItem {
    /// Unaliased expression item.
    pub fn expr(e: ScalarExpr) -> SelectItem {
        SelectItem::Expr {
            expr: e,
            alias: None,
        }
    }

    /// Aliased expression item.
    pub fn aliased(e: ScalarExpr, alias: impl Into<String>) -> SelectItem {
        SelectItem::Expr {
            expr: e,
            alias: Some(alias.into()),
        }
    }
}

/// One FROM item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, optionally aliased.
    Named {
        /// Table name in the catalog.
        name: String,
        /// Optional alias; the table is referenced by `alias` if present,
        /// by `name` otherwise.
        alias: Option<String>,
    },
    /// Derived table `(SELECT ...) AS alias`.
    Derived {
        /// The subquery.
        query: Box<SelectQuery>,
        /// Mandatory alias.
        alias: String,
        /// Preserved-side (left-outer) semantics: every row of this derived
        /// table appears in the result at least once; when no combination
        /// of the remaining FROM items joins with it, their columns are
        /// NULL. Needed when unbinding implicitly aggregating tag queries
        /// (`SELECT SUM(...)` with no GROUP BY returns a row even over an
        /// empty input, so the composed per-group query must not lose the
        /// group). Rendered as `OUTER (…) AS alias`; in a production SQL
        /// dialect this is `alias LEFT JOIN (rest of FROM)`.
        preserved: bool,
    },
}

impl TableRef {
    /// Base-table reference without alias.
    pub fn table(name: impl Into<String>) -> TableRef {
        TableRef::Named {
            name: name.into(),
            alias: None,
        }
    }

    /// Derived-table reference (inner-join semantics).
    pub fn derived(query: SelectQuery, alias: impl Into<String>) -> TableRef {
        TableRef::Derived {
            query: Box::new(query),
            alias: alias.into(),
            preserved: false,
        }
    }

    /// The name this FROM item is referenced by.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Select list (non-empty).
    pub select: Vec<SelectItem>,
    /// FROM items (comma join).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<ScalarExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<ScalarExpr>,
    /// HAVING predicate.
    pub having: Option<ScalarExpr>,
}

impl SelectQuery {
    /// A `SELECT <items> FROM <table>` skeleton.
    pub fn new(select: Vec<SelectItem>, from: Vec<TableRef>) -> Self {
        SelectQuery {
            distinct: false,
            select,
            from,
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        }
    }

    /// Adds a conjunct to the WHERE clause.
    pub fn and_where(&mut self, pred: ScalarExpr) {
        self.where_clause = Some(match self.where_clause.take() {
            None => pred,
            Some(w) => ScalarExpr::binary(BinOp::And, w, pred),
        });
    }

    /// Adds a conjunct to the HAVING clause.
    pub fn and_having(&mut self, pred: ScalarExpr) {
        self.having = Some(match self.having.take() {
            None => pred,
            Some(h) => ScalarExpr::binary(BinOp::And, h, pred),
        });
    }

    /// True if the query computes aggregates (grouped or implicit group).
    pub fn is_aggregating(&self) -> bool {
        !self.group_by.is_empty()
            || self.having.is_some()
            || self.select.iter().any(
                |item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()),
            )
    }

    /// The binding variables referenced by this query (its *parameters* in
    /// the sense of Definition 1), in first-occurrence order.
    pub fn parameters(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_params_into(&mut out);
        out
    }

    pub(crate) fn collect_params_into(&self, out: &mut Vec<String>) {
        for item in &self.select {
            if let SelectItem::Expr { expr, .. } = item {
                expr.collect_params(out);
            }
        }
        for t in &self.from {
            if let TableRef::Derived { query, .. } = t {
                query.collect_params_into(out);
            }
        }
        if let Some(w) = &self.where_clause {
            w.collect_params(out);
        }
        for g in &self.group_by {
            g.collect_params(out);
        }
        if let Some(h) = &self.having {
            h.collect_params(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_where_builds_conjunctions() {
        let mut q = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("hotel")]);
        assert!(q.where_clause.is_none());
        q.and_where(ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::int(1)));
        q.and_where(ScalarExpr::eq(ScalarExpr::col("b"), ScalarExpr::int(2)));
        let Some(ScalarExpr::Binary { op: BinOp::And, .. }) = q.where_clause else {
            panic!("expected AND");
        };
    }

    #[test]
    fn aggregation_detection() {
        let mut q = SelectQuery::new(
            vec![SelectItem::expr(ScalarExpr::Aggregate {
                func: AggFunc::Sum,
                arg: Some(Box::new(ScalarExpr::col("capacity"))),
            })],
            vec![TableRef::table("confroom")],
        );
        assert!(q.is_aggregating());
        q.select = vec![SelectItem::Star];
        assert!(!q.is_aggregating());
        q.group_by = vec![ScalarExpr::col("x")];
        assert!(q.is_aggregating());
    }

    #[test]
    fn parameters_collected_recursively() {
        let inner = {
            let mut q = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("hotel")]);
            q.and_where(ScalarExpr::eq(
                ScalarExpr::col("metro_id"),
                ScalarExpr::param("m", "metroid"),
            ));
            q
        };
        let mut q = SelectQuery::new(
            vec![SelectItem::Star],
            vec![TableRef::derived(inner, "TEMP")],
        );
        q.and_where(ScalarExpr::eq(
            ScalarExpr::col("x"),
            ScalarExpr::param("h", "hotelid"),
        ));
        assert_eq!(q.parameters(), vec!["m".to_owned(), "h".to_owned()]);
    }

    #[test]
    fn binding_names() {
        assert_eq!(TableRef::table("hotel").binding_name(), "hotel");
        let aliased = TableRef::Named {
            name: "hotel".into(),
            alias: Some("h".into()),
        };
        assert_eq!(aliased.binding_name(), "h");
    }
}
