//! Deterministic SQL pretty-printing.
//!
//! Two renderings are provided:
//! * [`SelectQuery::to_sql`] — multi-line, paper-figure style: one clause
//!   per line, `AND` conjuncts stacked, derived tables indented. Golden
//!   tests compare this form.
//! * [`SelectQuery::to_sql_inline`] — single-line (diagnostics, labels).

use std::fmt;

use crate::ast::{BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};

impl SelectQuery {
    /// Multi-line rendering (see module docs).
    pub fn to_sql(&self) -> String {
        let mut out = String::new();
        write_query(self, 0, &mut out);
        out
    }

    /// Single-line rendering.
    pub fn to_sql_inline(&self) -> String {
        self.to_sql()
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

/// Single-line rendering of a scalar expression (EXPLAIN output, labels).
pub(crate) fn expr_to_sql_inline(e: &ScalarExpr) -> String {
    render_expr(e, 0)
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

fn pad(indent: usize) -> String {
    " ".repeat(indent)
}

fn write_query(q: &SelectQuery, indent: usize, out: &mut String) {
    let p = pad(indent);
    out.push_str(&p);
    out.push_str("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = q.select.iter().map(render_item).collect();
    out.push_str(&items.join(", "));
    out.push('\n');
    out.push_str(&p);
    out.push_str("FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match t {
            TableRef::Named { name, alias } => {
                out.push_str(name);
                if let Some(a) = alias {
                    out.push_str(" AS ");
                    out.push_str(a);
                }
            }
            TableRef::Derived {
                query,
                alias,
                preserved,
            } => {
                if *preserved {
                    out.push_str("OUTER ");
                }
                out.push('(');
                out.push('\n');
                write_query(query, indent + 4, out);
                out.push('\n');
                out.push_str(&pad(indent + 2));
                out.push_str(") AS ");
                out.push_str(alias);
            }
        }
    }
    if let Some(w) = &q.where_clause {
        out.push('\n');
        write_predicate(w, "WHERE", indent, out);
    }
    if !q.group_by.is_empty() {
        out.push('\n');
        out.push_str(&p);
        out.push_str("GROUP BY ");
        let cols: Vec<String> = q.group_by.iter().map(|e| render_expr(e, 0)).collect();
        out.push_str(&cols.join(", "));
    }
    if let Some(h) = &q.having {
        out.push('\n');
        write_predicate(h, "HAVING", indent, out);
    }
}

/// Writes `WHERE c1\n  AND c2\n  AND c3` by flattening top-level ANDs.
fn write_predicate(pred: &ScalarExpr, keyword: &str, indent: usize, out: &mut String) {
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let p = pad(indent);
    // When several conjuncts are stacked, each is rendered as an AND
    // operand, so lower-precedence operators (OR) need parentheses.
    let operand_prec = if conjuncts.len() > 1 {
        prec(BinOp::And) + 1
    } else {
        0
    };
    for (i, c) in conjuncts.iter().enumerate() {
        if i == 0 {
            out.push_str(&p);
            out.push_str(keyword);
            out.push(' ');
        } else {
            out.push('\n');
            out.push_str(&p);
            out.push_str("  AND ");
        }
        out.push_str(&render_expr_indented(c, operand_prec, indent));
    }
}

fn flatten_and<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
    match e {
        ScalarExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            flatten_and(lhs, out);
            flatten_and(rhs, out);
        }
        other => out.push(other),
    }
}

fn render_item(item: &SelectItem) -> String {
    match item {
        SelectItem::Star => "*".to_owned(),
        SelectItem::QualifiedStar(q) => format!("{q}.*"),
        SelectItem::Expr { expr, alias } => match alias {
            Some(a) => format!("{} AS {a}", render_expr(expr, 0)),
            None => render_expr(expr, 0),
        },
    }
}

/// Operator precedence for parenthesization.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn render_expr(e: &ScalarExpr, parent_prec: u8) -> String {
    render_expr_indented(e, parent_prec, 0)
}

fn render_expr_indented(e: &ScalarExpr, parent_prec: u8, indent: usize) -> String {
    match e {
        ScalarExpr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        ScalarExpr::Param { var, column } => format!("${var}.{column}"),
        ScalarExpr::Literal(v) => v.to_string(),
        ScalarExpr::Binary { op, lhs, rhs } => {
            let my = prec(*op);
            let l = render_expr_indented(lhs, my, indent);
            let r = render_expr_indented(rhs, my + 1, indent);
            let s = format!("{l} {} {r}", op.symbol());
            if my < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        ScalarExpr::Not(inner) => {
            format!("NOT ({})", render_expr_indented(inner, 0, indent))
        }
        ScalarExpr::IsNull(inner) => {
            format!("{} IS NULL", render_expr_indented(inner, 6, indent))
        }
        ScalarExpr::Exists(q) => {
            let mut sub = String::new();
            write_query(q, indent + 4, &mut sub);
            format!("EXISTS (\n{sub})")
        }
        ScalarExpr::Aggregate { func, arg } => match arg {
            Some(a) => format!("{}({})", func.keyword(), render_expr_indented(a, 0, indent)),
            None => format!("{}(*)", func.keyword()),
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::*;

    fn sample() -> SelectQuery {
        // SELECT SUM(capacity), TEMP.* FROM confroom, (SELECT * FROM hotel
        // WHERE metro_id = $m.metroid AND starrating > 4) AS TEMP
        // WHERE chotel_id = TEMP.hotelid GROUP BY TEMP.hotelid
        let mut inner = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("hotel")]);
        inner.and_where(ScalarExpr::eq(
            ScalarExpr::col("metro_id"),
            ScalarExpr::param("m", "metroid"),
        ));
        inner.and_where(ScalarExpr::binary(
            BinOp::Gt,
            ScalarExpr::col("starrating"),
            ScalarExpr::int(4),
        ));
        let mut q = SelectQuery::new(
            vec![
                SelectItem::expr(ScalarExpr::Aggregate {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(ScalarExpr::col("capacity"))),
                }),
                SelectItem::QualifiedStar("TEMP".into()),
            ],
            vec![
                TableRef::table("confroom"),
                TableRef::derived(inner, "TEMP"),
            ],
        );
        q.and_where(ScalarExpr::eq(
            ScalarExpr::col("chotel_id"),
            ScalarExpr::qcol("TEMP", "hotelid"),
        ));
        q.group_by = vec![ScalarExpr::qcol("TEMP", "hotelid")];
        q
    }

    #[test]
    fn pretty_prints_paper_style() {
        let sql = sample().to_sql();
        assert!(sql.starts_with("SELECT SUM(capacity), TEMP.*\nFROM confroom, (\n"));
        assert!(sql.contains("WHERE metro_id = $m.metroid\n      AND starrating > 4"));
        assert!(sql.contains(") AS TEMP"));
        assert!(sql.ends_with("GROUP BY TEMP.hotelid"));
    }

    #[test]
    fn inline_collapses_whitespace() {
        let sql = sample().to_sql_inline();
        assert!(!sql.contains('\n'));
        assert!(sql.contains("SELECT SUM(capacity), TEMP.* FROM confroom, ( SELECT *"));
    }

    #[test]
    fn parenthesizes_by_precedence() {
        // (a = 1 OR b = 2) AND c = 3 must keep its parens.
        let e = ScalarExpr::binary(
            BinOp::And,
            ScalarExpr::binary(
                BinOp::Or,
                ScalarExpr::eq(ScalarExpr::col("a"), ScalarExpr::int(1)),
                ScalarExpr::eq(ScalarExpr::col("b"), ScalarExpr::int(2)),
            ),
            ScalarExpr::eq(ScalarExpr::col("c"), ScalarExpr::int(3)),
        );
        let mut q = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("t")]);
        q.where_clause = Some(e);
        let sql = q.to_sql();
        assert!(
            sql.contains("WHERE (a = 1 OR b = 2)\n  AND c = 3"),
            "got:\n{sql}"
        );
    }

    #[test]
    fn renders_not_and_is_null() {
        let mut q = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("t")]);
        q.and_where(ScalarExpr::Not(Box::new(ScalarExpr::IsNull(Box::new(
            ScalarExpr::col("x"),
        )))));
        assert!(q.to_sql().contains("NOT (x IS NULL)"));
    }

    #[test]
    fn renders_count_star_and_aliases() {
        let q = SelectQuery::new(
            vec![
                SelectItem::aliased(
                    ScalarExpr::Aggregate {
                        func: AggFunc::Count,
                        arg: None,
                    },
                    "n",
                ),
                SelectItem::expr(ScalarExpr::col("startdate")),
            ],
            vec![TableRef::table("availability")],
        );
        assert_eq!(
            q.to_sql(),
            "SELECT COUNT(*) AS n, startdate\nFROM availability"
        );
    }
}
