//! A small CSV loader for populating tables from files (used by the `xvc`
//! CLI). Supports double-quoted fields with `""` escapes; the header row
//! must name a subset-ordering of the table's columns; values are coerced
//! to the column types, with empty fields becoming NULL.

use crate::error::{Error, Result};
use crate::schema::ColumnType;
use crate::table::Database;
use crate::value::Value;

/// Loads CSV text into the named table of `db`.
///
/// The first line is a header of column names; each subsequent line is a
/// row. Columns missing from the header are filled with NULL.
pub fn load_csv(db: &mut Database, table: &str, csv: &str) -> Result<usize> {
    let schema = db.table(table)?.schema.clone();
    let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(Error::UnexpectedEnd {
        expected: "a CSV header row",
    })?;
    let header_fields = split_csv_line(header)?;
    let mut indices = Vec::with_capacity(header_fields.len());
    for h in &header_fields {
        let idx = schema
            .column_index(h.trim())
            .ok_or_else(|| Error::UnknownColumn {
                reference: format!("{table}.{h}"),
            })?;
        indices.push(idx);
    }
    let mut count = 0;
    for line in lines {
        let fields = split_csv_line(line)?;
        if fields.len() != indices.len() {
            return Err(Error::SchemaMismatch {
                reason: format!(
                    "CSV row has {} fields, header has {} ({line:?})",
                    fields.len(),
                    indices.len()
                ),
            });
        }
        let mut row = vec![Value::Null; schema.columns.len()];
        for (field, &idx) in fields.iter().zip(&indices) {
            row[idx] = coerce(
                field,
                schema.columns[idx].ty,
                table,
                &schema.columns[idx].name,
            )?;
        }
        db.insert(table, row)?;
        count += 1;
    }
    Ok(count)
}

fn coerce(field: &str, ty: ColumnType, table: &str, column: &str) -> Result<Value> {
    let trimmed = field.trim();
    if trimmed.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        ColumnType::Int => {
            Value::Int(trimmed.parse::<i64>().map_err(|_| Error::SchemaMismatch {
                reason: format!("{table}.{column}: {trimmed:?} is not an integer"),
            })?)
        }
        ColumnType::Float => {
            Value::Float(trimmed.parse::<f64>().map_err(|_| Error::SchemaMismatch {
                reason: format!("{table}.{column}: {trimmed:?} is not a number"),
            })?)
        }
        ColumnType::Str => Value::Str(field.to_owned()),
    })
}

/// Splits one CSV line, honouring double quotes with `""` escapes.
fn split_csv_line(line: &str) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.is_empty() && !in_quotes => in_quotes = true,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut field));
            }
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(Error::UnexpectedEnd {
            expected: "a closing quote in the CSV row",
        });
    }
    out.push(field);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::database_from_ddl;

    fn db() -> Database {
        database_from_ddl("CREATE TABLE city (id INT, name TEXT, area FLOAT)").unwrap()
    }

    #[test]
    fn loads_basic_rows() {
        let mut db = db();
        let n = load_csv(
            &mut db,
            "city",
            "id,name,area\n1,chicago,234.0\n2,nyc,302.6\n",
        )
        .unwrap();
        assert_eq!(n, 2);
        let t = db.table("city").unwrap();
        assert_eq!(t.rows()[0][1], Value::Str("chicago".into()));
        assert_eq!(t.rows()[1][2], Value::Float(302.6));
    }

    #[test]
    fn header_subset_and_reordering() {
        let mut db = db();
        load_csv(&mut db, "city", "name,id\nchicago,1\n").unwrap();
        let t = db.table("city").unwrap();
        assert_eq!(t.rows()[0][0], Value::Int(1));
        assert_eq!(t.rows()[0][2], Value::Null); // area missing → NULL
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let mut db = db();
        load_csv(
            &mut db,
            "city",
            "id,name\n1,\"St. Louis, MO\"\n2,\"the \"\"Loop\"\"\"\n",
        )
        .unwrap();
        let t = db.table("city").unwrap();
        assert_eq!(t.rows()[0][1], Value::Str("St. Louis, MO".into()));
        assert_eq!(t.rows()[1][1], Value::Str("the \"Loop\"".into()));
    }

    #[test]
    fn empty_fields_are_null() {
        let mut db = db();
        load_csv(&mut db, "city", "id,name,area\n1,,\n").unwrap();
        let t = db.table("city").unwrap();
        assert_eq!(t.rows()[0][1], Value::Null);
        assert_eq!(t.rows()[0][2], Value::Null);
    }

    #[test]
    fn type_errors_are_reported() {
        let mut db = db();
        let err = load_csv(&mut db, "city", "id\nnot_a_number\n").unwrap_err();
        assert!(err.to_string().contains("not an integer"), "{err}");
        assert!(load_csv(&mut db, "city", "nope\n1\n").is_err());
        assert!(load_csv(&mut db, "city", "id,name\n1\n").is_err());
        assert!(load_csv(&mut db, "city", "id,name\n1,\"unterminated\n").is_err());
    }
}
