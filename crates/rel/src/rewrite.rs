//! Query-surgery helpers used by the composition algorithm's `UNBIND` and
//! `NEST` functions (Figures 10–13 of the paper).
//!
//! * [`unbind_param`] — replace references to a binding variable
//!   (`$h.col`) with column references into a derived table that computes
//!   the binding query (the core of `UNBIND`);
//! * [`preserve_aggregation`] — when unbinding introduces a derived table
//!   under an aggregating query, add `GROUP BY` over all of the derived
//!   table's columns so the per-tuple aggregate semantics are preserved
//!   (the paper's `GROUP BY TEMP.hotelid, ..., TEMP.gym`);
//! * [`rename_params`] — rename binding variables according to a
//!   `bvmap` (Figure 9 lines 21–22);
//! * [`fresh_alias`] — allocate `TEMP`, `TEMP1`, `TEMP2`, … aliases that do
//!   not collide with any alias already in the query (the renaming `NEST`
//!   "must take care of", §4.2.1).

use std::collections::HashMap;

use crate::ast::{ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::error::Result;
use crate::eval::output_columns;
use crate::schema::Catalog;

/// Replaces every `$var.col` reference in `q` (including inside derived
/// tables and EXISTS subqueries) with `alias.col`, and appends
/// `(binding_query) AS alias` to the FROM clause. Returns `true` if any
/// reference was replaced (if not, the FROM clause is left untouched).
pub fn unbind_param(
    q: &mut SelectQuery,
    var: &str,
    alias: &str,
    binding_query: SelectQuery,
) -> bool {
    let mut replaced = false;
    visit_exprs(q, &mut |e| {
        if let ScalarExpr::Param { var: v, column } = e {
            if v == var {
                *e = ScalarExpr::Column {
                    qualifier: Some(alias.to_owned()),
                    name: column.clone(),
                };
                replaced = true;
            }
        }
    });
    if replaced {
        q.from.push(TableRef::Derived {
            query: Box::new(binding_query),
            alias: alias.to_owned(),
            preserved: false,
        });
    }
    replaced
}

/// If `q` aggregates, appends `GROUP BY alias.c` for every output column `c`
/// of the derived table `alias`, and adds `alias.*` to the select list so
/// the unbound tuple's attributes survive (the paper's
/// `SELECT SUM(capacity), TEMP.* ... GROUP BY TEMP.hotelid, ..., TEMP.gym`).
/// No-op for non-aggregating queries.
pub fn preserve_aggregation(q: &mut SelectQuery, alias: &str, catalog: &Catalog) -> Result<()> {
    if !q.is_aggregating() {
        // Non-aggregating: project the derived columns through — unless a
        // bare `*` already covers every FROM item including the new one.
        if !q.select.contains(&SelectItem::Star) {
            q.select.push(SelectItem::QualifiedStar(alias.to_owned()));
        }
        return Ok(());
    }
    let derived = q
        .from
        .iter()
        .find(|t| t.binding_name() == alias)
        .expect("alias was just added by unbind_param");
    let cols = match derived {
        TableRef::Derived { query, .. } => output_columns(query, catalog)?,
        TableRef::Named { name, .. } => catalog.get(name)?.column_names(),
    };
    q.select.push(SelectItem::QualifiedStar(alias.to_owned()));
    for c in cols {
        q.group_by.push(ScalarExpr::qcol(alias, c));
    }
    Ok(())
}

/// Qualifies every unqualified column reference at this query level with
/// the FROM item that provides it. Called before a new derived table joins
/// the FROM clause: previously unambiguous names (e.g. `startdate` from
/// `availability`) may collide with the derived table's output columns
/// (the paper's Figure 26 contains exactly this ambiguity). References
/// that no current FROM item provides are left alone (they may resolve in
/// an enclosing scope); names provided by several FROM items error.
pub fn qualify_level_columns(
    q: &mut SelectQuery,
    catalog: &Catalog,
    colliding: &[String],
) -> Result<()> {
    use crate::error::Error;
    // Column sets per FROM item.
    let mut sets: Vec<(String, Vec<String>)> = Vec::new();
    for t in &q.from {
        let cols = match t {
            TableRef::Named { name, .. } => catalog.get(name)?.column_names(),
            TableRef::Derived { query, .. } => output_columns(query, catalog)?,
        };
        sets.push((t.binding_name().to_owned(), cols));
    }
    let mut result: Result<()> = Ok(());
    visit_level_columns(q, &mut |qualifier, name| {
        if qualifier.is_some() || !colliding.iter().any(|c| c == name) {
            return;
        }
        let providers: Vec<&String> = sets
            .iter()
            .filter(|(_, cols)| cols.iter().any(|c| c == name))
            .map(|(a, _)| a)
            .collect();
        match providers.as_slice() {
            [] => {}
            [one] => *qualifier = Some((*one).clone()),
            _ => {
                if result.is_ok() {
                    result = Err(Error::AmbiguousColumn {
                        name: name.to_owned(),
                    });
                }
            }
        }
    });
    result
}

/// Visits `(qualifier, name)` of every column reference at this query level
/// (not descending into derived tables or EXISTS subqueries).
fn visit_level_columns(q: &mut SelectQuery, f: &mut impl FnMut(&mut Option<String>, &str)) {
    fn walk(e: &mut ScalarExpr, f: &mut impl FnMut(&mut Option<String>, &str)) {
        match e {
            ScalarExpr::Column { qualifier, name } => f(qualifier, name),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, f);
                walk(rhs, f);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, f),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, f),
            _ => {}
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, f);
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, f);
    }
    for g in &mut q.group_by {
        walk(g, f);
    }
    if let Some(h) = &mut q.having {
        walk(h, f);
    }
}

/// Nested-aware unbinding: replaces `$var.col` references with columns of
/// a derived table computing `binding_query`, placing the derived table at
/// the *innermost* query level that references the variable (a derived
/// table cannot reference a sibling FROM item, so Figure 16's composed
/// query nests the metroarea subquery inside the hotel subquery).
///
/// Each referencing scope gets its own copy of the binding query under a
/// fresh alias. Aggregating scopes get `alias.*` projection and `GROUP BY`
/// extension; when an inner derived table's output widens, enclosing
/// group-by-all-columns lists over its alias are refreshed.
pub fn unbind_param_nested(
    q: &mut SelectQuery,
    var: &str,
    binding_query: &SelectQuery,
    catalog: &Catalog,
) -> Result<bool> {
    fn walk_exists(
        e: &mut ScalarExpr,
        var: &str,
        binding_query: &SelectQuery,
        catalog: &Catalog,
        any: &mut bool,
    ) -> Result<()> {
        match e {
            ScalarExpr::Exists(sub) => {
                *any |= unbind_param_nested(sub, var, binding_query, catalog)?;
            }
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk_exists(lhs, var, binding_query, catalog, any)?;
                walk_exists(rhs, var, binding_query, catalog, any)?;
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => {
                walk_exists(i, var, binding_query, catalog, any)?;
            }
            ScalarExpr::Aggregate { arg: Some(a), .. } => {
                walk_exists(a, var, binding_query, catalog, any)?;
            }
            _ => {}
        }
        Ok(())
    }

    let mut any = false;
    let mut widened_aliases: Vec<String> = Vec::new();

    // 1. Recurse into derived tables.
    for t in &mut q.from {
        if let TableRef::Derived { query, alias, .. } = t {
            if unbind_param_nested(query, var, binding_query, catalog)? {
                any = true;
                widened_aliases.push(alias.clone());
            }
        }
    }
    // 2. Recurse into EXISTS subqueries (WHERE and HAVING).
    if let Some(w) = &mut q.where_clause {
        walk_exists(w, var, binding_query, catalog, &mut any)?;
    }
    if let Some(h) = &mut q.having {
        walk_exists(h, var, binding_query, catalog, &mut any)?;
    }

    // 3. Direct references at this level (not inside subqueries).
    let mut direct = false;
    visit_level_params(q, &mut |v, _| {
        if v == var {
            direct = true;
        }
    });
    if direct {
        // Qualify existing references that the new FROM item would shadow.
        let new_cols = output_columns(binding_query, catalog)?;
        qualify_level_columns(q, catalog, &new_cols)?;
        let alias = fresh_alias(q);
        replace_level_params(q, var, &alias);
        q.from.push(TableRef::Derived {
            query: Box::new(binding_query.clone()),
            alias: alias.clone(),
            preserved: false,
        });
        preserve_aggregation(q, &alias, catalog)?;
        any = true;
    }

    // 4. Refresh stale group-by-all lists over widened inner aliases.
    if q.is_aggregating() {
        for alias in widened_aliases {
            refresh_group_by_all(q, &alias, catalog)?;
        }
    }
    Ok(any)
}

/// When a FROM item's output columns change, any `GROUP BY
/// alias.c1, alias.c2, …` list over it goes stale; this rebuilds it as
/// "group by every current output column of `alias`" (the only grouping
/// shape the composition generates). No-op when the query does not group
/// by that alias.
pub fn refresh_group_by_all(q: &mut SelectQuery, alias: &str, catalog: &Catalog) -> Result<()> {
    let grouped: bool = q
        .group_by
        .iter()
        .any(|g| matches!(g, ScalarExpr::Column { qualifier: Some(x), .. } if x == alias));
    if !grouped {
        return Ok(());
    }
    let cols = match q.from.iter().find(|t| t.binding_name() == alias) {
        Some(TableRef::Derived { query, .. }) => output_columns(query, catalog)?,
        Some(TableRef::Named { name, .. }) => catalog.get(name)?.column_names(),
        None => return Ok(()),
    };
    q.group_by
        .retain(|g| !matches!(g, ScalarExpr::Column { qualifier: Some(x), .. } if x == alias));
    for c in cols {
        q.group_by.push(ScalarExpr::qcol(alias, c));
    }
    Ok(())
}

/// Visits `$var.col` params at this query level only (no subqueries).
fn visit_level_params(q: &mut SelectQuery, f: &mut impl FnMut(&str, &str)) {
    fn walk(e: &mut ScalarExpr, f: &mut impl FnMut(&str, &str)) {
        match e {
            ScalarExpr::Param { var, column } => f(var, column),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, f);
                walk(rhs, f);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, f),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, f),
            _ => {}
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, f);
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, f);
    }
    for g in &mut q.group_by {
        walk(g, f);
    }
    if let Some(h) = &mut q.having {
        walk(h, f);
    }
}

fn replace_level_params(q: &mut SelectQuery, var: &str, alias: &str) {
    fn walk(e: &mut ScalarExpr, var: &str, alias: &str) {
        match e {
            ScalarExpr::Param { var: v, column } if v == var => {
                *e = ScalarExpr::Column {
                    qualifier: Some(alias.to_owned()),
                    name: column.clone(),
                };
            }
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, var, alias);
                walk(rhs, var, alias);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, var, alias),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, var, alias),
            _ => {}
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, var, alias);
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, var, alias);
    }
    for g in &mut q.group_by {
        walk(g, var, alias);
    }
    if let Some(h) = &mut q.having {
        walk(h, var, alias);
    }
}

/// Renames binding-variable references throughout the query:
/// `$old.col` → `$new.col` for every `(old, new)` entry of `map`.
pub fn rename_params(q: &mut SelectQuery, map: &HashMap<String, String>) {
    visit_exprs(q, &mut |e| {
        if let ScalarExpr::Param { var, .. } = e {
            if let Some(new) = map.get(var) {
                *var = new.clone();
            }
        }
    });
}

/// Returns a derived-table alias (`TEMP`, `TEMP1`, `TEMP2`, …) unused by any
/// FROM item anywhere inside `q`.
pub fn fresh_alias(q: &SelectQuery) -> String {
    fresh_alias_among(&[q], "TEMP")
}

/// Like [`fresh_alias`], but with a custom prefix and avoiding collisions
/// across several queries at once (used when correlating EXISTS
/// subqueries, where the alias must be unique in both scopes).
pub fn fresh_alias_among(queries: &[&SelectQuery], prefix: &str) -> String {
    let mut used = std::collections::HashSet::new();
    for q in queries {
        collect_aliases(q, &mut used);
    }
    if !used.contains(prefix) {
        return prefix.to_owned();
    }
    let mut i = 1;
    loop {
        let cand = format!("{prefix}{i}");
        if !used.contains(cand.as_str()) {
            return cand;
        }
        i += 1;
    }
}

/// True if `name` is bound as a FROM alias anywhere inside `q`.
pub fn binds_alias(q: &SelectQuery, name: &str) -> bool {
    let mut used = std::collections::HashSet::new();
    collect_aliases(q, &mut used);
    used.contains(name)
}

fn collect_aliases(q: &SelectQuery, out: &mut std::collections::HashSet<String>) {
    for t in &q.from {
        out.insert(t.binding_name().to_owned());
        if let TableRef::Derived { query, .. } = t {
            collect_aliases(query, out);
        }
    }
    let mut visit = |e: &ScalarExpr| {
        if let ScalarExpr::Exists(sub) = e {
            collect_aliases(sub, out);
        }
    };
    for item in &q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut visit);
        }
    }
    if let Some(w) = &q.where_clause {
        walk(w, &mut visit);
    }
    if let Some(h) = &q.having {
        walk(h, &mut visit);
    }
}

fn walk(e: &ScalarExpr, f: &mut impl FnMut(&ScalarExpr)) {
    f(e);
    match e {
        ScalarExpr::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, f),
        ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, f),
        _ => {}
    }
}

/// Applies `f` to every scalar expression in the query, recursing into
/// derived tables and EXISTS subqueries.
pub fn visit_exprs(q: &mut SelectQuery, f: &mut impl FnMut(&mut ScalarExpr)) {
    fn walk_mut(e: &mut ScalarExpr, f: &mut impl FnMut(&mut ScalarExpr)) {
        f(e);
        match e {
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk_mut(lhs, f);
                walk_mut(rhs, f);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk_mut(i, f),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk_mut(a, f),
            ScalarExpr::Exists(sub) => visit_exprs(sub, f),
            _ => {}
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk_mut(expr, f);
        }
    }
    for t in &mut q.from {
        if let TableRef::Derived { query, .. } = t {
            visit_exprs(query, f);
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk_mut(w, f);
    }
    for g in &mut q.group_by {
        walk_mut(g, f);
    }
    if let Some(h) = &mut q.having {
        walk_mut(h, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::schema::{Catalog, ColumnDef, ColumnType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c.add(
            TableSchema::new(
                "confroom",
                vec![
                    ColumnDef::new("chotel_id", ColumnType::Int),
                    ColumnDef::new("capacity", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn unbind_replaces_params_and_adds_derived_table() {
        // The paper's running example: unbinding Qs(h) with Qh(m).
        let mut qs =
            parse_query("SELECT SUM(capacity) FROM confroom WHERE chotel_id=$h.hotelid").unwrap();
        let qh = parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4")
            .unwrap();
        assert!(unbind_param(&mut qs, "h", "TEMP", qh));
        let sql = qs.to_sql_inline();
        assert!(sql.contains("chotel_id = TEMP.hotelid"), "{sql}");
        assert!(sql.contains(") AS TEMP"), "{sql}");
        // $m is still a parameter (unbinding stops at the LCA).
        assert_eq!(qs.parameters(), vec!["m".to_owned()]);
    }

    #[test]
    fn unbind_noop_when_var_absent() {
        let mut q = parse_query("SELECT * FROM hotel").unwrap();
        let sub = parse_query("SELECT * FROM confroom").unwrap();
        assert!(!unbind_param(&mut q, "h", "TEMP", sub));
        assert_eq!(q.from.len(), 1);
    }

    #[test]
    fn preserve_aggregation_groups_by_all_derived_columns() {
        let mut qs =
            parse_query("SELECT SUM(capacity) FROM confroom WHERE chotel_id=$h.hotelid").unwrap();
        let qh = parse_query("SELECT * FROM hotel WHERE starrating > 4").unwrap();
        unbind_param(&mut qs, "h", "TEMP", qh);
        preserve_aggregation(&mut qs, "TEMP", &catalog()).unwrap();
        let sql = qs.to_sql();
        assert!(sql.contains("SELECT SUM(capacity), TEMP.*"), "{sql}");
        assert!(
            sql.contains("GROUP BY TEMP.hotelid, TEMP.starrating, TEMP.metro_id"),
            "{sql}"
        );
    }

    #[test]
    fn preserve_aggregation_noop_for_plain_queries() {
        let mut q = parse_query("SELECT * FROM confroom WHERE chotel_id=$h.hotelid").unwrap();
        let qh = parse_query("SELECT * FROM hotel").unwrap();
        unbind_param(&mut q, "h", "TEMP", qh);
        preserve_aggregation(&mut q, "TEMP", &catalog()).unwrap();
        assert!(q.group_by.is_empty());
        // `SELECT *` already spans the derived table; no TEMP.* is added.
        assert!(q.to_sql_inline().starts_with("SELECT * FROM confroom"));
    }

    #[test]
    fn rename_params_applies_map_recursively() {
        let mut q = parse_query(
            "SELECT * FROM confroom WHERE chotel_id=$h.hotelid \
             AND EXISTS (SELECT * FROM hotel WHERE metro_id=$m.metroid)",
        )
        .unwrap();
        let mut map = HashMap::new();
        map.insert("h".to_owned(), "s_new".to_owned());
        map.insert("m".to_owned(), "m_new".to_owned());
        rename_params(&mut q, &map);
        let sql = q.to_sql_inline();
        assert!(sql.contains("$s_new.hotelid"), "{sql}");
        assert!(sql.contains("$m_new.metroid"), "{sql}");
        assert_eq!(q.parameters(), vec!["s_new".to_owned(), "m_new".to_owned()]);
    }

    #[test]
    fn fresh_alias_avoids_collisions() {
        let q = parse_query("SELECT * FROM hotel").unwrap();
        assert_eq!(fresh_alias(&q), "TEMP");
        let q = parse_query(
            "SELECT * FROM (SELECT * FROM hotel) AS TEMP, \
             (SELECT * FROM confroom) AS TEMP1",
        )
        .unwrap();
        assert_eq!(fresh_alias(&q), "TEMP2");
    }

    #[test]
    fn fresh_alias_sees_exists_subqueries() {
        let q = parse_query(
            "SELECT * FROM hotel WHERE EXISTS \
             (SELECT * FROM (SELECT * FROM confroom) AS TEMP)",
        )
        .unwrap();
        assert_eq!(fresh_alias(&q), "TEMP1");
    }
}
