//! Table schemas and the catalog.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::value::Value;

/// Column type, used for validation and workload generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String (also dates, as ISO-8601 strings).
    Str,
}

impl ColumnType {
    /// True if `v` is storable in a column of this type (NULL always is).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema; column names must be unique.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(Error::SchemaMismatch {
                    reason: format!("duplicate column {:?} in table {:?}", c.name, name),
                });
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates one row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::SchemaMismatch {
                reason: format!(
                    "table {:?} expects {} columns, row has {}",
                    self.name,
                    self.columns.len(),
                    row.len()
                ),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !col.ty.admits(v) {
                return Err(Error::SchemaMismatch {
                    reason: format!(
                        "value {v} does not fit column {}.{} of type {:?}",
                        self.name, col.name, col.ty
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A catalog: the set of table schemas, keyed by name.
///
/// Uses a `BTreeMap` so iteration (and thus rendered artifacts) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a table schema.
    pub fn add(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    /// Looks up a table schema.
    pub fn get(&self, name: &str) -> Result<&TableSchema> {
        self.tables.get(name).ok_or_else(|| Error::UnknownTable {
            name: name.to_owned(),
        })
    }

    /// True if the catalog has a table of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterates schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are defined.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metro_schema() -> TableSchema {
        TableSchema::new(
            "metroarea",
            vec![
                ColumnDef::new("metroid", ColumnType::Int),
                ColumnDef::new("metroname", ColumnType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_columns() {
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Str),
            ],
        )
        .is_err());
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = metro_schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::Str("chi".into())])
            .is_ok());
        assert!(s.check_row(&[Value::Null, Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s
            .check_row(&[Value::Str("x".into()), Value::Str("chi".into())])
            .is_err());
    }

    #[test]
    fn float_columns_admit_ints() {
        let s = TableSchema::new("t", vec![ColumnDef::new("x", ColumnType::Float)]).unwrap();
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.add(metro_schema());
        assert!(c.get("metroarea").is_ok());
        assert!(matches!(c.get("nope"), Err(Error::UnknownTable { .. })));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn column_index_lookup() {
        let s = metro_schema();
        assert_eq!(s.column_index("metroname"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }
}
