//! Table schemas and the catalog.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::value::Value;

/// Column type, used for validation and workload generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// String (also dates, as ISO-8601 strings).
    Str,
}

impl ColumnType {
    /// True if `v` is storable in a column of this type (NULL always is).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// `NOT NULL` constraint (also implied by `primary_key`).
    pub not_null: bool,
    /// `PRIMARY KEY` constraint (implies uniqueness and NOT NULL).
    pub primary_key: bool,
}

impl ColumnDef {
    /// Convenience constructor (no constraints).
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
            primary_key: false,
        }
    }

    /// Marks the column `NOT NULL`.
    #[must_use]
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Marks the column `PRIMARY KEY` (which also implies NOT NULL).
    #[must_use]
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.not_null = true;
        self
    }

    /// True if NULL is rejected in this column (`NOT NULL` or key column).
    pub fn rejects_null(&self) -> bool {
        self.not_null || self.primary_key
    }
}

/// Shape of a secondary index ([`crate::index::SecondaryIndex`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Hash map from key to row ids — O(1) equality lookups.
    Hash,
    /// Ordered map — equality today, range access paths later.
    BTree,
}

/// Declares a secondary index over one column. Carried on the
/// [`TableSchema`] so the catalog (and therefore `plan::prepare`'s
/// access-path selection and the database fingerprint) sees it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexDef {
    /// The indexed column's name.
    pub column: String,
    /// The index shape.
    pub kind: IndexKind,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Secondary indexes in creation order.
    pub indexes: Vec<IndexDef>,
}

impl TableSchema {
    /// Creates a schema; column names must be unique.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name.as_str()) {
                return Err(Error::SchemaMismatch {
                    reason: format!("duplicate column {:?} in table {:?}", c.name, name),
                });
            }
        }
        Ok(TableSchema {
            name,
            columns,
            indexes: Vec::new(),
        })
    }

    /// The declared index over `column`, if any.
    pub fn index_on(&self, column: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.column == column)
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Names of the `PRIMARY KEY` columns, in declaration order.
    pub fn primary_key(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.primary_key)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Validates one row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::SchemaMismatch {
                reason: format!(
                    "table {:?} expects {} columns, row has {}",
                    self.name,
                    self.columns.len(),
                    row.len()
                ),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if col.rejects_null() && matches!(v, Value::Null) {
                return Err(Error::SchemaMismatch {
                    reason: format!("NULL value in NOT NULL column {}.{}", self.name, col.name),
                });
            }
            if !col.ty.admits(v) {
                return Err(Error::SchemaMismatch {
                    reason: format!(
                        "value {v} does not fit column {}.{} of type {:?}",
                        self.name, col.name, col.ty
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A catalog: the set of table schemas, keyed by name.
///
/// Uses a `BTreeMap` so iteration (and thus rendered artifacts) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds (or replaces) a table schema.
    pub fn add(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.clone(), schema);
    }

    /// Looks up a table schema.
    pub fn get(&self, name: &str) -> Result<&TableSchema> {
        self.tables.get(name).ok_or_else(|| Error::UnknownTable {
            name: name.to_owned(),
        })
    }

    /// True if the catalog has a table of this name.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterates schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are defined.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metro_schema() -> TableSchema {
        TableSchema::new(
            "metroarea",
            vec![
                ColumnDef::new("metroid", ColumnType::Int),
                ColumnDef::new("metroname", ColumnType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_columns() {
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Str),
            ],
        )
        .is_err());
    }

    #[test]
    fn check_row_validates_arity_and_types() {
        let s = metro_schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::Str("chi".into())])
            .is_ok());
        assert!(s.check_row(&[Value::Null, Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        assert!(s
            .check_row(&[Value::Str("x".into()), Value::Str("chi".into())])
            .is_err());
    }

    #[test]
    fn not_null_columns_reject_null() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int).primary_key(),
                ColumnDef::new("name", ColumnType::Str).not_null(),
                ColumnDef::new("note", ColumnType::Str),
            ],
        )
        .unwrap();
        assert!(s
            .check_row(&[Value::Int(1), Value::Str("a".into()), Value::Null])
            .is_ok());
        assert!(s
            .check_row(&[Value::Null, Value::Str("a".into()), Value::Null])
            .is_err());
        assert!(s
            .check_row(&[Value::Int(1), Value::Null, Value::Null])
            .is_err());
        assert_eq!(s.primary_key(), vec!["id"]);
    }

    #[test]
    fn float_columns_admit_ints() {
        let s = TableSchema::new("t", vec![ColumnDef::new("x", ColumnType::Float)]).unwrap();
        assert!(s.check_row(&[Value::Int(3)]).is_ok());
    }

    #[test]
    fn catalog_lookup() {
        let mut c = Catalog::new();
        c.add(metro_schema());
        assert!(c.get("metroarea").is_ok());
        assert!(matches!(c.get("nope"), Err(Error::UnknownTable { .. })));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn column_index_lookup() {
        let s = metro_schema();
        assert_eq!(s.column_index("metroname"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }
}
