//! DML write path: `INSERT INTO` / `DELETE FROM` statements that mutate a
//! [`Database`] and return the [`Delta`] of rows they touched.
//!
//! The composition paper treats the database as read-only input `I` to the
//! publishing function `v(I)`; this module is the first write path, built
//! so [`Delta`]s can be propagated through the static dependency map
//! (`xvc_core::deps`) into an incremental republish instead of a full one.
//! Deliberately tiny surface:
//!
//! * `INSERT INTO t VALUES (lit, ...), (lit, ...)` — literal rows only
//!   (integers, floats, single-quoted strings with `''` escaping, `NULL`,
//!   `TRUE`/`FALSE`), validated against the table schema on insert;
//! * `DELETE FROM t [WHERE pred]` — the predicate is the same scalar
//!   fragment tag queries use; it is parsed by wrapping it in
//!   `SELECT * FROM t WHERE pred` and reusing [`crate::parse_query`], then
//!   evaluated by the interpreter, so DELETE semantics are exactly "rows
//!   the SELECT would return".
//!
//! Data mutations never change the catalog fingerprint (schemas are
//! untouched), so the publisher's prepared-plan cache stays warm across a
//! DML statement — the property the delta-republish path relies on.

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::eval::{eval_query, ParamEnv};
use crate::parse::parse_query;
use crate::table::Database;
use crate::value::Value;

/// Rows inserted into / deleted from one table by a DML statement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableDelta {
    /// Rows appended, in insertion order.
    pub inserted: Vec<Vec<Value>>,
    /// Rows removed, in their former storage order.
    pub deleted: Vec<Vec<Value>>,
}

impl TableDelta {
    /// Total rows touched (inserted + deleted).
    pub fn row_count(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

/// The net effect of one or more DML statements: per-table inserted and
/// deleted rows. This is what `Session::republish_delta` maps through
/// the static dependency analysis to find the view nodes it must re-run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    /// Per-table deltas, keyed by table name (sorted for determinism).
    pub tables: BTreeMap<String, TableDelta>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Total rows touched across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.values().map(TableDelta::row_count).sum()
    }

    /// True if no rows were touched.
    pub fn is_empty(&self) -> bool {
        self.tables.values().all(|t| t.row_count() == 0)
    }

    /// Names of tables with at least one touched row, in sorted order.
    pub fn tables_changed(&self) -> Vec<&str> {
        self.tables
            .iter()
            .filter(|(_, d)| d.row_count() > 0)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Folds another delta into this one (later statements append).
    pub fn absorb(&mut self, other: Delta) {
        for (table, d) in other.tables {
            let e = self.tables.entry(table).or_default();
            e.inserted.extend(d.inserted);
            e.deleted.extend(d.deleted);
        }
    }

    fn record_inserts(&mut self, table: &str, rows: &[Vec<Value>]) {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .inserted
            .extend(rows.iter().cloned());
    }

    fn record_deletes(&mut self, table: &str, rows: Vec<Vec<Value>>) {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .deleted
            .extend(rows);
    }
}

impl Database {
    /// Executes one DML statement (`INSERT INTO ...` or `DELETE FROM ...`,
    /// optionally `;`-terminated) and returns the delta of touched rows.
    pub fn execute_dml(&mut self, sql: &str) -> Result<Delta> {
        let mut p = DmlParser::new(sql);
        p.skip_ws();
        let delta = if p.eat_keyword("INSERT") {
            p.expect_keyword("INTO")?;
            let table = p.ident()?;
            p.expect_keyword("VALUES")?;
            let rows = p.values_list()?;
            p.finish()?;
            let mut delta = Delta::new();
            for row in &rows {
                self.insert(&table, row.clone())?;
            }
            delta.record_inserts(&table, &rows);
            delta
        } else if p.eat_keyword("DELETE") {
            p.expect_keyword("FROM")?;
            let table = p.ident()?;
            let predicate = p.rest_after_optional_where()?;
            self.delete_from(&table, predicate.as_deref())?
        } else {
            return Err(Error::UnexpectedToken {
                found: p.next_word_for_error(),
                expected: "INSERT or DELETE",
            });
        };
        Ok(delta)
    }

    /// Deletes every row of `table` matching `predicate` (all rows when
    /// `None`), returning the delta. The predicate is evaluated by running
    /// `SELECT * FROM table WHERE predicate` through the interpreter;
    /// every stored row equal to a matched row is removed (equal rows
    /// satisfy a pure predicate identically, so this is exact DELETE
    /// semantics).
    pub fn delete_from(&mut self, table: &str, predicate: Option<&str>) -> Result<Delta> {
        let matched: Vec<Vec<Value>> = match predicate {
            None => self.table(table)?.rows().to_vec(),
            Some(pred) => {
                let q = parse_query(&format!("SELECT * FROM {table} WHERE {pred}"))?;
                eval_query(self, &q, &ParamEnv::new())?.rows
            }
        };
        let mut kept = Vec::new();
        let mut deleted = Vec::new();
        for row in self.table(table)?.rows().iter() {
            if matched.contains(row) {
                deleted.push(row.clone());
            } else {
                kept.push(row.clone());
            }
        }
        if !deleted.is_empty() {
            self.replace_rows(table, kept)?;
        }
        let mut delta = Delta::new();
        delta.record_deletes(table, deleted);
        Ok(delta)
    }
}

/// Character-level scanner for the DML fragment. The SELECT parser in
/// [`crate::parse`] is token-based; DML needs so little syntax that a
/// dedicated scanner is smaller than threading new statement kinds
/// through it.
struct DmlParser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> DmlParser<'a> {
    fn new(src: &'a str) -> Self {
        DmlParser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn next_word_for_error(&self) -> String {
        let w: String = self
            .rest()
            .chars()
            .take_while(|c| !c.is_whitespace())
            .take(16)
            .collect();
        if w.is_empty() {
            "<end of input>".to_owned()
        } else {
            w
        }
    }

    /// Consumes `kw` case-insensitively if it is the next word.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let boundary = rest[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::UnexpectedToken {
                found: self.next_word_for_error(),
                expected: kw,
            })
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let word: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if word.is_empty() || word.chars().next().is_some_and(char::is_numeric) {
            return Err(Error::UnexpectedToken {
                found: self.next_word_for_error(),
                expected: "identifier",
            });
        }
        self.pos += word.len();
        Ok(word)
    }

    fn eat_char(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(ch) {
            self.pos += ch.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect_char(&mut self, ch: char, expected: &'static str) -> Result<()> {
        if self.eat_char(ch) {
            Ok(())
        } else {
            Err(Error::UnexpectedToken {
                found: self.next_word_for_error(),
                expected,
            })
        }
    }

    /// `(lit, ...), (lit, ...)` — at least one row.
    fn values_list(&mut self) -> Result<Vec<Vec<Value>>> {
        let mut rows = Vec::new();
        loop {
            self.expect_char('(', "'(' starting a VALUES row")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_char(',') {
                    break;
                }
            }
            self.expect_char(')', "')' ending a VALUES row")?;
            rows.push(row);
            if !self.eat_char(',') {
                break;
            }
        }
        Ok(rows)
    }

    fn literal(&mut self) -> Result<Value> {
        self.skip_ws();
        if self.eat_keyword("NULL") {
            return Ok(Value::Null);
        }
        if self.eat_keyword("TRUE") {
            return Ok(Value::Bool(true));
        }
        if self.eat_keyword("FALSE") {
            return Ok(Value::Bool(false));
        }
        let rest = self.rest();
        let mut chars = rest.chars();
        match chars.next() {
            Some('\'') => {
                // Single-quoted string; '' escapes a quote.
                let mut s = String::new();
                let mut i = 1;
                let bytes = rest.as_bytes();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::UnexpectedEnd {
                                expected: "closing ' in string literal",
                            })
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let c = rest[i..].chars().next().expect("in-bounds char");
                            s.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                self.pos += i;
                Ok(Value::Str(s))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut len = c.len_utf8();
                let mut is_float = false;
                for c in chars {
                    if c.is_ascii_digit() {
                        len += 1;
                    } else if c == '.' && !is_float {
                        is_float = true;
                        len += 1;
                    } else {
                        break;
                    }
                }
                let text = &rest[..len];
                self.pos += len;
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| Error::UnexpectedToken {
                            found: text.to_owned(),
                            expected: "numeric literal",
                        })
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::UnexpectedToken {
                            found: text.to_owned(),
                            expected: "integer literal",
                        })
                }
            }
            _ => Err(Error::UnexpectedToken {
                found: self.next_word_for_error(),
                expected: "literal (number, 'string', NULL, TRUE, FALSE)",
            }),
        }
    }

    /// After `DELETE FROM t`: either end-of-statement (returns `None`) or
    /// `WHERE <predicate text>` (returns the raw predicate, semicolon
    /// stripped).
    fn rest_after_optional_where(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("WHERE") {
            let pred = self.rest().trim().trim_end_matches(';').trim();
            if pred.is_empty() {
                return Err(Error::UnexpectedEnd {
                    expected: "predicate after WHERE",
                });
            }
            self.pos = self.src.len();
            Ok(Some(pred.to_owned()))
        } else {
            self.finish()?;
            Ok(None)
        }
    }

    /// Accepts an optional trailing `;` then end of input.
    fn finish(&mut self) -> Result<()> {
        self.eat_char(';');
        self.skip_ws();
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(Error::TrailingTokens {
                found: self.next_word_for_error(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "city",
                vec![
                    ColumnDef::new("cityid", ColumnType::Int),
                    ColumnDef::new("cityname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db
    }

    #[test]
    fn insert_literal_rows() {
        let mut db = db();
        let delta = db
            .execute_dml("INSERT INTO city VALUES (1, 'naperville'), (2, 'o''hare')")
            .unwrap();
        assert_eq!(delta.row_count(), 2);
        assert_eq!(delta.tables_changed(), vec!["city"]);
        let t = db.table("city").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][1], Value::Str("o'hare".into()));
        assert_eq!(delta.tables["city"].inserted[0][0], Value::Int(1));
    }

    #[test]
    fn insert_validates_against_schema() {
        let mut db = db();
        assert!(db
            .execute_dml("INSERT INTO city VALUES ('backwards', 1)")
            .is_err());
        assert!(db.execute_dml("INSERT INTO nope VALUES (1, 'x')").is_err());
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = db();
        db.execute_dml("INSERT INTO city VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap();
        let delta = db
            .execute_dml("DELETE FROM city WHERE cityid >= 2")
            .unwrap();
        assert_eq!(delta.tables["city"].deleted.len(), 2);
        assert_eq!(db.table("city").unwrap().len(), 1);
        assert_eq!(db.table("city").unwrap().rows()[0][0], Value::Int(1));
    }

    #[test]
    fn delete_all_rows_without_where() {
        let mut db = db();
        db.execute_dml("INSERT INTO city VALUES (1, 'a')").unwrap();
        let delta = db.execute_dml("DELETE FROM city;").unwrap();
        assert_eq!(delta.row_count(), 1);
        assert!(db.table("city").unwrap().is_empty());
    }

    #[test]
    fn delete_preserves_indexes_and_fingerprint() {
        let mut db = db();
        db.create_index("city", "cityid", crate::schema::IndexKind::Hash)
            .unwrap();
        let before = db.catalog_fingerprint();
        db.execute_dml("INSERT INTO city VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        db.execute_dml("DELETE FROM city WHERE cityid = 1").unwrap();
        assert_eq!(db.catalog_fingerprint(), before);
        let t = db.table("city").unwrap();
        let idx = t.index_for(0).expect("index survives delete");
        assert_eq!(idx.lookup(&Value::Int(2)), &[0]);
        assert!(idx.lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn rejects_other_statements() {
        let mut db = db();
        assert!(db.execute_dml("UPDATE city SET cityname = 'x'").is_err());
        assert!(db
            .execute_dml("INSERT INTO city VALUES (1, 'a') garbage")
            .is_err());
    }

    #[test]
    fn delta_absorb_merges_per_table() {
        let mut db = db();
        let mut total = db.execute_dml("INSERT INTO city VALUES (1, 'a')").unwrap();
        total.absorb(db.execute_dml("DELETE FROM city WHERE cityid = 1").unwrap());
        assert_eq!(total.tables["city"].inserted.len(), 1);
        assert_eq!(total.tables["city"].deleted.len(), 1);
        assert!(!total.is_empty());
    }
}
