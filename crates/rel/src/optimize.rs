//! Post-composition query simplification.
//!
//! The paper remarks that "further query transformations like those
//! described in [Kim 82] can be applied" to the unbound queries (§4.2.1).
//! This module implements a conservative slice of that program:
//!
//! * [`merge_trivial_derived`] — Kim-style unnesting: a derived table
//!   `(SELECT * FROM t WHERE w) AS A` with no grouping/aggregation/
//!   DISTINCT and no preserved-side semantics is folded into the enclosing
//!   FROM as `t AS A`, its filter conjoined into the outer WHERE (with the
//!   filter's own columns qualified by `A` first so nothing changes
//!   meaning);
//! * [`dedupe_conjuncts`] — syntactically identical WHERE/HAVING conjuncts
//!   collapse to one (repeated EXISTS conditions arise naturally from
//!   overlapping select-match subtrees);
//! * [`optimize`] — both, applied bottom-up to a fixpoint.
//!
//! Every rewrite is semantics-preserving; `tests/prop_optimize.rs` checks
//! equivalence on randomized queries and the composition pipeline has an
//! opt-in flag (`ComposeOptions::optimize`) covered by the equivalence
//! suite.

use crate::ast::{BinOp, ScalarExpr, SelectItem, SelectQuery, TableRef};
use crate::error::Result;
use crate::rewrite::qualify_level_columns;
use crate::schema::Catalog;

/// Applies all simplifications bottom-up until nothing changes.
pub fn optimize(q: &mut SelectQuery, catalog: &Catalog) -> Result<()> {
    loop {
        let mut changed = false;
        optimize_once(q, catalog, &mut changed)?;
        if !changed {
            return Ok(());
        }
    }
}

fn optimize_once(q: &mut SelectQuery, catalog: &Catalog, changed: &mut bool) -> Result<()> {
    // Bottom-up: subqueries first.
    for t in &mut q.from {
        if let TableRef::Derived { query, .. } = t {
            optimize_once(query, catalog, changed)?;
        }
    }
    visit_exists_mut(q, &mut |sub| optimize_once(sub, catalog, changed))?;

    if merge_trivial_derived(q, catalog)? {
        *changed = true;
    }
    if dedupe_conjuncts(q) {
        *changed = true;
    }
    Ok(())
}

/// Folds trivial derived tables into the enclosing FROM (see module docs).
/// Returns true if anything merged.
pub fn merge_trivial_derived(q: &mut SelectQuery, catalog: &Catalog) -> Result<bool> {
    let mut merged = false;
    let mut i = 0;
    while i < q.from.len() {
        let TableRef::Derived {
            query: inner,
            alias,
            preserved,
        } = &q.from[i]
        else {
            i += 1;
            continue;
        };
        let mergeable = !*preserved
            && !inner.distinct
            && inner.group_by.is_empty()
            && inner.having.is_none()
            && inner.select == vec![SelectItem::Star]
            && inner.from.len() == 1
            && matches!(inner.from[0], TableRef::Named { .. })
            // The filter must not smuggle an EXISTS whose correlation
            // semantics could change with the scope.
            && inner
                .where_clause
                .as_ref()
                .map(|w| !contains_exists(w))
                .unwrap_or(true);
        if !mergeable {
            i += 1;
            continue;
        }
        let alias = alias.clone();
        let TableRef::Derived { query: inner, .. } = q.from.remove(i) else {
            unreachable!("matched above");
        };
        let mut inner = *inner;
        let TableRef::Named { name, .. } = inner.from.remove(0) else {
            unreachable!("matched above");
        };
        // Qualify the filter's own columns with the alias so they keep
        // resolving to this table after the merge.
        if inner.where_clause.is_some() {
            let cols = catalog.get(&name)?.column_names();
            // Reuse the level qualifier: build a throwaway query holding
            // just the filter over the aliased table.
            let mut probe = SelectQuery::new(
                vec![SelectItem::Star],
                vec![TableRef::Named {
                    name: name.clone(),
                    alias: Some(alias.clone()),
                }],
            );
            probe.where_clause = inner.where_clause.take();
            qualify_level_columns(&mut probe, catalog, &cols)?;
            if let Some(w) = probe.where_clause.take() {
                q.and_where(w);
            }
        }
        q.from.insert(
            i,
            TableRef::Named {
                name,
                alias: Some(alias),
            },
        );
        merged = true;
        i += 1;
    }
    Ok(merged)
}

/// Removes syntactically duplicate top-level conjuncts from WHERE and
/// HAVING. Returns true if anything was removed.
pub fn dedupe_conjuncts(q: &mut SelectQuery) -> bool {
    let mut changed = false;
    for clause in [&mut q.where_clause, &mut q.having] {
        let Some(pred) = clause.take() else { continue };
        let mut parts: Vec<ScalarExpr> = Vec::new();
        flatten(pred, &mut parts);
        let before = parts.len();
        let mut seen: Vec<ScalarExpr> = Vec::new();
        for p in parts {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        if seen.len() != before {
            changed = true;
        }
        let mut it = seen.into_iter();
        let first = it.next();
        *clause = first.map(|f| it.fold(f, |acc, c| ScalarExpr::binary(BinOp::And, acc, c)));
    }
    changed
}

fn flatten(e: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            flatten(*lhs, out);
            flatten(*rhs, out);
        }
        other => out.push(other),
    }
}

fn contains_exists(e: &ScalarExpr) -> bool {
    match e {
        ScalarExpr::Exists(_) => true,
        ScalarExpr::Binary { lhs, rhs, .. } => contains_exists(lhs) || contains_exists(rhs),
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => contains_exists(i),
        _ => false,
    }
}

/// Applies `f` to every EXISTS subquery at this level (WHERE/HAVING/select
/// items), without descending into FROM derived tables (the caller handles
/// those).
fn visit_exists_mut(
    q: &mut SelectQuery,
    f: &mut impl FnMut(&mut SelectQuery) -> Result<()>,
) -> Result<()> {
    fn walk(e: &mut ScalarExpr, f: &mut impl FnMut(&mut SelectQuery) -> Result<()>) -> Result<()> {
        match e {
            ScalarExpr::Exists(sub) => f(sub),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, f)?;
                walk(rhs, f)
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, f),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, f),
            _ => Ok(()),
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, f)?;
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, f)?;
    }
    if let Some(h) = &mut q.having {
        walk(h, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                    ColumnDef::new("starrating", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c.add(
            TableSchema::new(
                "confroom",
                vec![
                    ColumnDef::new("chotel_id", ColumnType::Int),
                    ColumnDef::new("capacity", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn merges_select_star_derived_tables() {
        let mut q = parse_query(
            "SELECT SUM(capacity), TEMP.* \
             FROM confroom, (SELECT * FROM hotel \
                             WHERE metro_id = $m.metroid AND starrating > 4) AS TEMP \
             WHERE chotel_id = TEMP.hotelid \
             GROUP BY TEMP.hotelid, TEMP.metro_id, TEMP.starrating",
        )
        .unwrap();
        optimize(&mut q, &catalog()).unwrap();
        let sql = q.to_sql();
        assert!(sql.contains("FROM confroom, hotel AS TEMP"), "{sql}");
        assert!(sql.contains("TEMP.metro_id = $m.metroid"), "{sql}");
        assert!(sql.contains("TEMP.starrating > 4"), "{sql}");
        assert!(!sql.contains("(\n"), "no derived tables left:\n{sql}");
    }

    #[test]
    fn preserved_and_aggregating_derived_tables_stay() {
        let mut q = parse_query(
            "SELECT * FROM confroom, OUTER (SELECT * FROM hotel) AS TEMP \
             WHERE chotel_id = TEMP.hotelid",
        )
        .unwrap();
        let before = q.clone();
        optimize(&mut q, &catalog()).unwrap();
        assert_eq!(q, before, "preserved tables must not merge");

        let mut q = parse_query(
            "SELECT * FROM (SELECT chotel_id, SUM(capacity) FROM confroom \
                            GROUP BY chotel_id) AS T",
        )
        .unwrap();
        let before = q.clone();
        optimize(&mut q, &catalog()).unwrap();
        assert_eq!(q, before, "aggregating tables must not merge");
    }

    #[test]
    fn projecting_derived_tables_stay() {
        // SELECT a subset of columns changes the output schema: not
        // mergeable under the conservative rule.
        let mut q =
            parse_query("SELECT T.capacity FROM (SELECT capacity FROM confroom) AS T").unwrap();
        let before = q.clone();
        optimize(&mut q, &catalog()).unwrap();
        assert_eq!(q, before);
    }

    #[test]
    fn merges_recursively() {
        let mut q = parse_query(
            "SELECT * FROM (SELECT * FROM (SELECT * FROM hotel WHERE starrating > 4) AS A) AS B",
        )
        .unwrap();
        optimize(&mut q, &catalog()).unwrap();
        let sql = q.to_sql();
        // Innermost merges into the middle, which becomes trivial and
        // merges into the top.
        assert!(sql.contains("FROM hotel AS"), "{sql}");
        assert!(!sql.contains("(\n"), "{sql}");
    }

    #[test]
    fn dedupes_identical_conjuncts() {
        let mut q = parse_query(
            "SELECT * FROM hotel WHERE starrating > 4 AND starrating > 4 AND hotelid = 1",
        )
        .unwrap();
        assert!(dedupe_conjuncts(&mut q));
        assert_eq!(
            q.to_sql(),
            "SELECT *\nFROM hotel\nWHERE starrating > 4\n  AND hotelid = 1"
        );
        assert!(!dedupe_conjuncts(&mut q), "idempotent");
    }

    #[test]
    fn optimizes_inside_exists() {
        let mut q = parse_query(
            "SELECT * FROM hotel WHERE EXISTS \
             (SELECT * FROM (SELECT * FROM confroom WHERE capacity > 10) AS T \
              WHERE T.chotel_id = hotelid)",
        )
        .unwrap();
        optimize(&mut q, &catalog()).unwrap();
        let sql = q.to_sql();
        assert!(sql.contains("FROM confroom AS T"), "{sql}");
    }

    #[test]
    fn merged_filters_do_not_capture_outer_names() {
        // The inner filter references `capacity`; after merging next to
        // another table it must stay qualified to the merged alias.
        let mut q = parse_query(
            "SELECT * FROM (SELECT * FROM confroom WHERE capacity > 10) AS T, hotel \
             WHERE T.chotel_id = hotelid",
        )
        .unwrap();
        optimize(&mut q, &catalog()).unwrap();
        let sql = q.to_sql();
        assert!(sql.contains("T.capacity > 10"), "{sql}");
    }
}
