//! Property tests for secondary-index access paths: on every generated
//! database and equality query, the index-lookup path must produce exactly
//! the same rows — in the same order — as the full scan it replaces, on
//! every backend. The only sanctioned differences are the access-path
//! counters themselves (`index_lookups` up, `rows_scanned` down).

use proptest::prelude::*;
use xvc_rel::{
    eval_query_stats, parse_query, prepare_with, Backend, BinOp, ColumnDef, ColumnType, Database,
    EvalOptions, EvalStats, IndexKind, NamedTuple, ParamEnv, ScalarExpr, SelectItem, SelectQuery,
    TableRef, Value,
};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

// ---------------------------------------------------------------------------
// Generators: r(a, b, k) with a hash index on k and a btree index on b,
// joined against s(c, k2) with a hash index on k2.
// ---------------------------------------------------------------------------

fn db_strategy() -> impl Strategy<Value = Database> {
    let row_r = (0i64..5, 0i64..5, 0i64..4);
    let row_s = (0i64..5, 0i64..4);
    (
        prop::collection::vec(row_r, 0..10),
        prop::collection::vec(row_s, 0..10),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_table(
                xvc_rel::TableSchema::new(
                    "r",
                    vec![
                        ColumnDef::new("a", ColumnType::Int),
                        ColumnDef::new("b", ColumnType::Int),
                        ColumnDef::new("k", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            db.create_table(
                xvc_rel::TableSchema::new(
                    "s",
                    vec![
                        ColumnDef::new("c", ColumnType::Int),
                        ColumnDef::new("k2", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            db.create_index("r", "k", IndexKind::Hash).unwrap();
            db.create_index("r", "b", IndexKind::BTree).unwrap();
            db.create_index("s", "k2", IndexKind::Hash).unwrap();
            for (a, b, k) in rs {
                db.insert("r", vec![Value::Int(a), Value::Int(b), Value::Int(k)])
                    .unwrap();
            }
            for (c, k) in ss {
                db.insert("s", vec![Value::Int(c), Value::Int(k)]).unwrap();
            }
            db
        })
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Single-table query over `r` whose WHERE always contains at least one
/// indexable equality (`k = …` or `b = …`, literal or `$p.v`) plus extra
/// conjuncts that must be rechecked on every index candidate.
fn query_strategy() -> impl Strategy<Value = SelectQuery> {
    let eq_col = prop_oneof![Just("k"), Just("b")];
    let extra = (
        prop_oneof![Just("a"), Just("b"), Just("k")],
        cmp_op(),
        0i64..5,
    )
        .prop_map(|(col, op, v)| ScalarExpr::binary(op, ScalarExpr::col(col), ScalarExpr::int(v)));
    (
        eq_col,
        0i64..5,
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(extra, 0..3),
    )
        .prop_map(|(col, v, param, flipped, extras)| {
            let bound = if param {
                ScalarExpr::Param {
                    var: "p".into(),
                    column: "v".into(),
                }
            } else {
                ScalarExpr::int(v)
            };
            // Both operand orders must select the index.
            let mut pred = if flipped {
                ScalarExpr::eq(bound, ScalarExpr::col(col))
            } else {
                ScalarExpr::eq(ScalarExpr::col(col), bound)
            };
            for e in extras {
                pred = ScalarExpr::binary(BinOp::And, pred, e);
            }
            let mut q = SelectQuery::new(vec![SelectItem::Star], vec![TableRef::table("r")]);
            q.where_clause = Some(pred);
            q
        })
}

fn env_strategy() -> impl Strategy<Value = ParamEnv> {
    (0i64..5).prop_map(|v| {
        let mut env = ParamEnv::new();
        env.insert(
            "p".into(),
            NamedTuple {
                columns: vec!["v".into()],
                values: vec![Value::Int(v)],
            },
        );
        env
    })
}

/// Runs `q` through the prepared plan with and without index selection and
/// through the interpreter; rows (and order) must agree three ways, and the
/// scan-path counters must equal the interpreter's exactly.
fn assert_access_path_parity(db: &Database, q: &SelectQuery, env: &ParamEnv) {
    let catalog = db.catalog();
    let indexed = prepare_with(q, &catalog, EvalOptions::default()).and_then(|plan| {
        let mut stats = EvalStats::default();
        let rel = plan.execute_stats(db, env, &mut stats)?;
        Ok((rel, stats))
    });
    let scan_opts = EvalOptions {
        use_indexes: false,
        ..EvalOptions::default()
    };
    let scanned = prepare_with(q, &catalog, scan_opts).and_then(|plan| {
        let mut stats = EvalStats::default();
        let rel = plan.execute_stats(db, env, &mut stats)?;
        Ok((rel, stats))
    });
    let mut interp_stats = EvalStats::default();
    let interp = eval_query_stats(db, q, env, scan_opts, &mut interp_stats);
    match (indexed, scanned, interp) {
        (Ok((irel, istats)), Ok((srel, sstats)), Ok(rel)) => {
            assert_eq!(irel, srel, "index vs scan rows for {}", q.to_sql());
            assert_eq!(srel, rel, "scan vs interpreter rows for {}", q.to_sql());
            assert_eq!(sstats, interp_stats, "scan stats for {}", q.to_sql());
            assert_eq!(sstats.index_lookups, 0);
            // The index path reads no more rows than the scan, and every
            // other counter is untouched by the access-path choice.
            assert!(
                istats.rows_scanned <= sstats.rows_scanned,
                "index path scanned more ({} > {}) for {}",
                istats.rows_scanned,
                sstats.rows_scanned,
                q.to_sql()
            );
            assert_eq!(
                EvalStats {
                    rows_scanned: 0,
                    index_lookups: 0,
                    ..istats
                },
                EvalStats {
                    rows_scanned: 0,
                    index_lookups: 0,
                    ..sstats
                },
                "non-access counters diverged for {}",
                q.to_sql()
            );
        }
        (Err(_), Err(_), Err(_)) => {} // unanimous rejection: agreement
        (i, s, e) => panic!(
            "access paths disagree on failure for {}: indexed={:?} scan={:?} interp={:?}",
            q.to_sql(),
            i.map(|(r, _)| r.len()),
            s.map(|(r, _)| r.len()),
            e.map(|r| r.len()),
        ),
    }
}

proptest! {
    #![proptest_config(cases(192))]

    /// Index-lookup execution ≡ full-scan execution ≡ interpreter on
    /// generated equality queries, row for row and in order.
    #[test]
    fn index_path_equals_scan_path(
        db in db_strategy(),
        q in query_strategy(),
        env in env_strategy(),
    ) {
        assert_access_path_parity(&db, &q, &env);
    }

    /// The same equivalence on the paged backends: documents-over-storage
    /// parity starts here, with the tables themselves agreeing row for row
    /// under buffer-pool pressure (tiny pools force eviction churn).
    #[test]
    fn index_path_equals_scan_path_on_paged_backend(
        db in db_strategy(),
        q in query_strategy(),
        env in env_strategy(),
        file_backed in any::<bool>(),
    ) {
        let backend = if file_backed {
            Backend::paged_file()
        } else {
            Backend::paged()
        };
        let paged = db.to_backend(backend).unwrap();
        prop_assert_eq!(&paged, &db);
        assert_access_path_parity(&paged, &q, &env);
    }

    /// One plan executed over a batch of environments through the
    /// index-nested-loop path returns exactly the per-environment scalar
    /// results, in order — the publisher's set-oriented contract.
    #[test]
    fn index_nested_loop_batch_equals_scalar_loop(
        db in db_strategy(),
        vs in prop::collection::vec(0i64..5, 1..6),
    ) {
        let q = parse_query("SELECT a, b FROM r WHERE k = $p.v").unwrap();
        let plan = prepare_with(&q, &db.catalog(), EvalOptions::default()).unwrap();
        let envs: Vec<ParamEnv> = vs
            .iter()
            .map(|&v| {
                let mut env = ParamEnv::new();
                env.insert(
                    "p".into(),
                    NamedTuple { columns: vec!["v".into()], values: vec![Value::Int(v)] },
                );
                env
            })
            .collect();
        let mut batch_stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &envs, &mut batch_stats).unwrap();
        let rels = batch.into_relations();
        prop_assert_eq!(rels.len(), envs.len());
        for (env, got) in envs.iter().zip(&rels) {
            let mut stats = EvalStats::default();
            let want = plan.execute_stats(&db, env, &mut stats).unwrap();
            prop_assert_eq!(got, &want);
        }
        // Each distinct binding costs exactly one index probe.
        let distinct: std::collections::HashSet<i64> = vs.iter().copied().collect();
        prop_assert_eq!(batch_stats.index_lookups, distinct.len() as u64);
    }
}
