//! Temporary review verification test (not part of the PR).

use xvc_rel::facts::{analyze_query, drop_redundant_conjuncts, FactSet};
use xvc_rel::{database_from_ddl, eval_query, parse_query, Value};

fn db() -> xvc_rel::Database {
    let mut db = database_from_ddl(
        "CREATE TABLE metroarea (metroid INT PRIMARY KEY, mname TEXT);\n\
         CREATE TABLE hotel (hotelid INT PRIMARY KEY, starrating INT, metro_id INT);",
    )
    .unwrap();
    db.insert(
        "metroarea",
        vec![Value::Int(1), Value::Str("sf".into())],
    )
    .unwrap();
    // One hotel with starrating 2: no hotel satisfies starrating > 4.
    db.insert(
        "hotel",
        vec![Value::Int(10), Value::Int(2), Value::Int(1)],
    )
    .unwrap();
    db
}

#[test]
fn padded_out_facts_soundness() {
    let db = db();
    let catalog = db.catalog();
    let sql = "SELECT * FROM (SELECT m.metroid AS mx, h.starrating AS hs \
               FROM OUTER (SELECT metroid FROM metroarea) AS m, hotel AS h \
               WHERE h.starrating > 4) AS t WHERE t.hs IS NULL";
    let q = parse_query(sql).unwrap();
    let rel = eval_query(&db, &q).unwrap();
    let a = analyze_query(&q, &catalog, &FactSet::new());
    println!("rows = {}", rel.rows.len());
    println!("analysis.empty = {}, chain = {:?}", a.empty, a.empty_chain);
    assert!(
        !(a.empty && !rel.rows.is_empty()),
        "UNSOUND: analysis says empty but eval returns {} row(s)",
        rel.rows.len()
    );
}

#[test]
fn padded_redundant_conjunct_soundness() {
    let db = db();
    let catalog = db.catalog();
    // Derived table pins hs = 2 (matches the data); the outer OUTER item
    // pads h-columns with NULL when no join partner survives the WHERE.
    let sql = "SELECT * FROM OUTER (SELECT metroid FROM metroarea) AS m, \
               (SELECT starrating AS hs FROM hotel WHERE starrating = 5) AS h \
               WHERE h.hs = 5";
    let mut q = parse_query(sql).unwrap();
    let before = eval_query(&db, &q).unwrap();
    let a = analyze_query(&q, &catalog, &FactSet::new());
    println!("redundant = {:?}", a.redundant);
    let dropped = drop_redundant_conjuncts(&mut q, &a);
    let after = eval_query(&db, &q).unwrap();
    println!(
        "dropped = {dropped}, rows before = {}, after = {}",
        before.rows.len(),
        after.rows.len()
    );
    assert_eq!(
        before.rows.len(),
        after.rows.len(),
        "UNSOUND: dropping 'redundant' conjunct changed the result"
    );
}
