//! Soundness checks for the predicate-dataflow analysis around
//! preserved-side (`OUTER`) derived tables, whose NULL padding invalidates
//! facts derived from the padded columns' defining queries.

use xvc_rel::facts::{analyze_query, drop_redundant_conjuncts, FactSet};
use xvc_rel::{database_from_ddl, eval_query, parse_query, ParamEnv, Value};

fn db() -> xvc_rel::Database {
    let mut db = database_from_ddl(
        "CREATE TABLE metroarea (metroid INT PRIMARY KEY, mname TEXT);\n\
         CREATE TABLE hotel (hotelid INT PRIMARY KEY, starrating INT, metro_id INT);",
    )
    .unwrap();
    db.insert("metroarea", vec![Value::Int(1), Value::Str("sf".into())])
        .unwrap();
    // One hotel with starrating 2: no hotel satisfies starrating > 4.
    db.insert("hotel", vec![Value::Int(10), Value::Int(2), Value::Int(1)])
        .unwrap();
    db
}

/// `starrating > 4` is unsatisfiable over the data, but the preserved
/// `OUTER` item pads its columns with NULL instead of dropping the row —
/// so the outer `t.hs IS NULL` query is *not* empty, and the analysis must
/// not claim it is.
#[test]
fn padded_out_facts_soundness() {
    let db = db();
    let catalog = db.catalog();
    let sql = "SELECT * FROM (SELECT m.metroid AS mx, h.starrating AS hs \
               FROM OUTER (SELECT metroid FROM metroarea) AS m, hotel AS h \
               WHERE h.starrating > 4) AS t WHERE t.hs IS NULL";
    let q = parse_query(sql).unwrap();
    let rel = eval_query(&db, &q, &ParamEnv::new()).unwrap();
    let a = analyze_query(&q, &catalog, &FactSet::new());
    assert!(
        !a.empty || rel.rows.is_empty(),
        "UNSOUND: analysis says empty but eval returns {} row(s)",
        rel.rows.len()
    );
}

/// A conjunct entailed by a derived table's defining query is only
/// droppable if NULL padding cannot reach its columns: here `h.hs = 5`
/// re-filters rows the `OUTER` padding would otherwise let through, so
/// dropping it must not change the result (if the analysis marks it
/// redundant regardless, `drop_redundant_conjuncts` changing row counts
/// would be unsound).
#[test]
fn padded_redundant_conjunct_soundness() {
    let db = db();
    let catalog = db.catalog();
    let sql = "SELECT * FROM OUTER (SELECT metroid FROM metroarea) AS m, \
               (SELECT starrating AS hs FROM hotel WHERE starrating = 5) AS h \
               WHERE h.hs = 5";
    let mut q = parse_query(sql).unwrap();
    let before = eval_query(&db, &q, &ParamEnv::new()).unwrap();
    let a = analyze_query(&q, &catalog, &FactSet::new());
    let _dropped = drop_redundant_conjuncts(&mut q, &a);
    let after = eval_query(&db, &q, &ParamEnv::new()).unwrap();
    assert_eq!(
        before.rows.len(),
        after.rows.len(),
        "UNSOUND: dropping 'redundant' conjunct changed the result"
    );
}
