//! Property tests for prepared plans: on every generated database and
//! query, `prepare(q).execute(db, env)` must produce exactly the same
//! rows — and `execute_stats` the same [`EvalStats`] counters — as the
//! interpreter (`eval_query_stats`). Queries both sides reject count as
//! agreement: the plan's promise is "same behaviour", not "no errors".

use proptest::prelude::*;
use xvc_rel::{
    eval_query_stats, parse_query, prepare, prepare_with, AggFunc, BinOp, ColumnDef, ColumnType,
    Database, EvalOptions, EvalStats, NamedTuple, ParamEnv, ScalarExpr, SelectItem, SelectQuery,
    TableRef, Value,
};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

// ---------------------------------------------------------------------------
// Generators (same shape as prop_engine.rs: r(a, b, k) ⋈ s(c, k2))
// ---------------------------------------------------------------------------

fn db_strategy() -> impl Strategy<Value = Database> {
    let row_r = (0i64..5, 0i64..5, 0i64..4);
    let row_s = (0i64..5, 0i64..4);
    (
        prop::collection::vec(row_r, 0..8),
        prop::collection::vec(row_s, 0..8),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_table(
                xvc_rel::TableSchema::new(
                    "r",
                    vec![
                        ColumnDef::new("a", ColumnType::Int),
                        ColumnDef::new("b", ColumnType::Int),
                        ColumnDef::new("k", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            db.create_table(
                xvc_rel::TableSchema::new(
                    "s",
                    vec![
                        ColumnDef::new("c", ColumnType::Int),
                        ColumnDef::new("k2", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            for (a, b, k) in rs {
                db.insert("r", vec![Value::Int(a), Value::Int(b), Value::Int(k)])
                    .unwrap();
            }
            for (c, k) in ss {
                db.insert("s", vec![Value::Int(c), Value::Int(k)]).unwrap();
            }
            db
        })
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// A conjunctive filter mixing per-table pushdowns, the equi-join key and
/// (optionally) a `$p.v` parameter bound — every classification bucket the
/// compiler distinguishes (pushdown / join key / prefix filter / residual)
/// gets exercised across the case set.
fn where_strategy() -> impl Strategy<Value = ScalarExpr> {
    let atom = (
        prop_oneof![Just("a"), Just("b"), Just("c")],
        cmp_op(),
        0i64..5,
        any::<bool>(),
    )
        .prop_map(|(col, op, v, param)| {
            let bound = if param {
                ScalarExpr::Param {
                    var: "p".into(),
                    column: "v".into(),
                }
            } else {
                ScalarExpr::int(v)
            };
            ScalarExpr::binary(op, ScalarExpr::col(col), bound)
        });
    (prop::collection::vec(atom, 0..3), any::<bool>()).prop_map(|(extra, join)| {
        let mut pred = if join {
            ScalarExpr::eq(ScalarExpr::col("k"), ScalarExpr::col("k2"))
        } else {
            // Cross product with a filter: exercises the nested-loop path.
            ScalarExpr::binary(BinOp::Le, ScalarExpr::col("k"), ScalarExpr::col("k2"))
        };
        for e in extra {
            pred = ScalarExpr::binary(BinOp::And, pred, e);
        }
        pred
    })
}

fn query_strategy() -> impl Strategy<Value = SelectQuery> {
    (where_strategy(), any::<bool>(), any::<bool>()).prop_map(|(w, agg, distinct)| {
        let select = if agg {
            vec![
                SelectItem::expr(ScalarExpr::col("k")),
                SelectItem::expr(ScalarExpr::Aggregate {
                    func: AggFunc::Count,
                    arg: None,
                }),
                SelectItem::aliased(
                    ScalarExpr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col("a"))),
                    },
                    "total",
                ),
            ]
        } else {
            vec![SelectItem::Star]
        };
        let mut q = SelectQuery::new(select, vec![TableRef::table("r"), TableRef::table("s")]);
        q.distinct = distinct && !agg;
        q.where_clause = Some(w);
        if agg {
            q.group_by = vec![ScalarExpr::col("k")];
        }
        q
    })
}

fn env_strategy() -> impl Strategy<Value = ParamEnv> {
    (0i64..5).prop_map(|v| {
        let mut env = ParamEnv::new();
        env.insert(
            "p".into(),
            NamedTuple {
                columns: vec!["v".into()],
                values: vec![Value::Int(v)],
            },
        );
        env
    })
}

/// Both paths on the same inputs; rows and stats must agree exactly
/// (including row order — the plan mirrors the interpreter's pipeline, so
/// even ordering is deterministic). Both-sides-error is agreement too.
fn assert_parity(db: &Database, q: &SelectQuery, env: &ParamEnv, options: EvalOptions) {
    let mut interp_stats = EvalStats::default();
    let interp = eval_query_stats(db, q, env, options, &mut interp_stats);
    let prepared = prepare_with(q, &db.catalog(), options).and_then(|plan| {
        let mut plan_stats = EvalStats::default();
        let rel = plan.execute_stats(db, env, &mut plan_stats)?;
        Ok((rel, plan_stats))
    });
    match (interp, prepared) {
        (Ok(i), Ok((p, p_stats))) => {
            assert_eq!(p, i, "relation mismatch for {}", q.to_sql());
            assert_eq!(p_stats, interp_stats, "stats mismatch for {}", q.to_sql());
        }
        (Err(_), Err(_)) => {} // both reject: agreement
        (Ok(_), Err(e)) => panic!("only the plan failed for {}: {e}", q.to_sql()),
        (Err(e), Ok(_)) => panic!("only the interpreter failed for {}: {e}", q.to_sql()),
    }
}

proptest! {
    #![proptest_config(cases(256))]

    /// `PreparedPlan::execute` ≡ `eval_query` on generated join queries,
    /// including parameter bindings and the EvalStats counters.
    #[test]
    fn prepared_equals_interpreted(
        db in db_strategy(),
        q in query_strategy(),
        env in env_strategy(),
    ) {
        assert_parity(&db, &q, &env, EvalOptions::default());
    }

    /// The equivalence holds under non-default options too: the plan bakes
    /// the options in at compile time, the interpreter applies them per
    /// call — both must land in the same place.
    #[test]
    fn prepared_equals_interpreted_without_hash_joins(
        db in db_strategy(),
        q in query_strategy(),
        env in env_strategy(),
    ) {
        assert_parity(
            &db,
            &q,
            &env,
            EvalOptions { hash_joins: false, ..EvalOptions::default() },
        );
    }

    /// EXISTS subqueries (correlated and not) through the plan compiler,
    /// including the uncorrelated-EXISTS cache counters.
    #[test]
    fn exists_parity(db in db_strategy(), threshold in 0i64..5, correlated in any::<bool>()) {
        let sql = if correlated {
            format!("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE k2 = k AND c > {threshold})")
        } else {
            format!("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c > {threshold})")
        };
        let q = parse_query(&sql).unwrap();
        assert_parity(&db, &q, &ParamEnv::new(), EvalOptions::default());
    }

    /// One plan, many environments: compiling once and re-executing with
    /// different bindings equals interpreting from scratch each time —
    /// the cached-plan reuse the publisher relies on.
    #[test]
    fn one_plan_many_environments(db in db_strategy(), vs in prop::collection::vec(0i64..5, 1..5)) {
        let q = parse_query("SELECT a, b FROM r WHERE k = $p.v").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        for v in vs {
            let mut env = ParamEnv::new();
            env.insert(
                "p".into(),
                NamedTuple { columns: vec!["v".into()], values: vec![Value::Int(v)] },
            );
            let mut interp_stats = EvalStats::default();
            let interp =
                eval_query_stats(&db, &q, &env, EvalOptions::default(), &mut interp_stats)
                    .unwrap();
            let mut plan_stats = EvalStats::default();
            let prepared = plan.execute_stats(&db, &env, &mut plan_stats).unwrap();
            prop_assert_eq!(&prepared, &interp);
            prop_assert_eq!(&plan_stats, &interp_stats);
        }
    }

    /// Derived tables (plain and parameterized) compile to nested blocks;
    /// parity must hold through the nesting.
    #[test]
    fn derived_table_parity(db in db_strategy(), env in env_strategy(), lo in 0i64..5) {
        let sql = format!(
            "SELECT k, c FROM s, (SELECT * FROM r WHERE a >= {lo} AND b = $p.v) AS t \
             WHERE k2 = t.k"
        );
        let q = parse_query(&sql).unwrap();
        assert_parity(&db, &q, &env, EvalOptions::default());
    }
}
