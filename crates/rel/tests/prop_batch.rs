//! Property tests for set-oriented execution: on every generated
//! database, query and binding list, `execute_batch` must agree
//! row-for-row (per binding, in order) with the scalar loop
//! `envs.iter().map(|e| plan.execute(db, e))` — including *which* error
//! surfaces when bindings fail, and the documented `EvalStats`
//! relationships between the two paths.

use proptest::prelude::*;
use xvc_rel::{
    parse_query, prepare, ColumnDef, ColumnType, Database, EvalStats, NamedTuple, ParamEnv,
    PreparedPlan, Relation, Value,
};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

fn db_strategy() -> impl Strategy<Value = Database> {
    let row_r = (0i64..5, 0i64..5, 0i64..4);
    let row_s = (0i64..5, 0i64..4);
    (
        prop::collection::vec(row_r, 0..8),
        prop::collection::vec(row_s, 0..8),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_table(
                xvc_rel::TableSchema::new(
                    "r",
                    vec![
                        ColumnDef::new("a", ColumnType::Int),
                        ColumnDef::new("b", ColumnType::Int),
                        ColumnDef::new("k", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            db.create_table(
                xvc_rel::TableSchema::new(
                    "s",
                    vec![
                        ColumnDef::new("c", ColumnType::Int),
                        ColumnDef::new("k2", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            for (a, b, k) in rs {
                db.insert("r", vec![Value::Int(a), Value::Int(b), Value::Int(k)])
                    .unwrap();
            }
            for (c, k) in ss {
                db.insert("s", vec![Value::Int(c), Value::Int(k)]).unwrap();
            }
            db
        })
}

/// Queries spanning every batch strategy: separable slot equalities
/// (fast path, alone / fused with other pushdowns / across a join /
/// under aggregation and DISTINCT) and non-separable slot predicates
/// (per-distinct-binding fallback).
fn query_pool() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("SELECT a, b FROM r WHERE k = $p.v"),
        Just("SELECT a FROM r WHERE k = $p.v AND a > 1"),
        Just("SELECT r.a, s.c FROM r, s WHERE k = k2 AND b = $p.v"),
        Just("SELECT k, COUNT(*) FROM r WHERE b = $p.v GROUP BY k"),
        Just("SELECT DISTINCT a FROM r WHERE k = $p.v"),
        Just("SELECT a FROM r WHERE k > $p.v"),
        Just("SELECT a FROM r WHERE k = $p.v AND b > $p.v"),
    ]
}

fn env(v: i64) -> ParamEnv {
    let mut env = ParamEnv::new();
    env.insert(
        "p".into(),
        NamedTuple {
            columns: vec!["v".into()],
            values: vec![Value::Int(v)],
        },
    );
    env
}

/// Binding lists: `Some(v)` binds `$p.v = v`, `None` leaves `$p` unbound
/// (the scalar path errors there, and the batch must agree).
fn binding_strategy() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(
        prop_oneof![4 => (0i64..5).prop_map(Some), 1 => Just(None)],
        0..7,
    )
}

fn envs_of(bindings: &[Option<i64>]) -> Vec<ParamEnv> {
    bindings
        .iter()
        .map(|b| b.map(env).unwrap_or_default())
        .collect()
}

/// The reference semantics: scalar execution per binding, stopping at
/// the first error, accumulating stats over the successes.
fn scalar_loop(
    plan: &PreparedPlan,
    db: &Database,
    envs: &[ParamEnv],
) -> Result<(Vec<Relation>, EvalStats), xvc_rel::Error> {
    let mut stats = EvalStats::default();
    let mut out = Vec::new();
    for e in envs {
        out.push(plan.execute_stats(db, e, &mut stats)?);
    }
    Ok((out, stats))
}

proptest! {
    #![proptest_config(cases(256))]

    /// Row-for-row and error agreement: for every binding `i`,
    /// `batch.rows_for(i)` equals the scalar `execute(db, &envs[i])`
    /// rows in the same order; if any binding errors scalarly, the batch
    /// fails with the first such error and absorbs no stats.
    #[test]
    fn batch_equals_scalar_loop(
        db in db_strategy(),
        sql in query_pool(),
        bindings in binding_strategy(),
    ) {
        let q = parse_query(sql).unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        let envs = envs_of(&bindings);
        let mut batch_stats = EvalStats::default();
        let batch = plan.execute_batch_stats(&db, &envs, &mut batch_stats);
        match (scalar_loop(&plan, &db, &envs), batch) {
            (Ok((scalar, _)), Ok(batch)) => {
                prop_assert_eq!(batch.bindings(), envs.len());
                for (i, rel) in scalar.iter().enumerate() {
                    prop_assert_eq!(
                        batch.rows_for(i),
                        &rel.rows[..],
                        "binding {} of {}", i, sql
                    );
                    prop_assert_eq!(batch.columns(), &rel.columns[..]);
                }
            }
            (Err(se), Err(be)) => {
                prop_assert_eq!(
                    format!("{se:?}"),
                    format!("{be:?}"),
                    "different errors for {}", sql
                );
                prop_assert_eq!(batch_stats, EvalStats::default());
            }
            (Ok(_), Err(e)) => prop_assert!(false, "only the batch failed for {}: {}", sql, e),
            (Err(e), Ok(_)) => {
                prop_assert!(false, "only the scalar loop failed for {}: {}", sql, e)
            }
        }
    }

    /// Stats consistency, fallback strategy: a non-separable slot
    /// predicate makes `execute_batch` run once per *distinct* binding,
    /// so its counters must equal the scalar loop over the deduplicated
    /// binding list.
    #[test]
    fn fallback_stats_equal_distinct_scalar_loop(
        db in db_strategy(),
        vs in prop::collection::vec(0i64..5, 1..7),
    ) {
        let q = parse_query("SELECT a FROM r WHERE k > $p.v").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        prop_assert!(!plan.batchable());
        let envs: Vec<ParamEnv> = vs.iter().copied().map(env).collect();
        let mut batch_stats = EvalStats::default();
        plan.execute_batch_stats(&db, &envs, &mut batch_stats).unwrap();
        let mut distinct: Vec<i64> = Vec::new();
        for v in &vs {
            if !distinct.contains(v) {
                distinct.push(*v);
            }
        }
        let distinct_envs: Vec<ParamEnv> = distinct.into_iter().map(env).collect();
        let (_, reference) = scalar_loop(&plan, &db, &distinct_envs).unwrap();
        prop_assert_eq!(batch_stats, reference);
    }

    /// Stats consistency, fast path: a separable single-table plan scans
    /// its table exactly once per batch regardless of binding count, the
    /// binding relation counts as one hash-join build probed once per
    /// distinct binding, and `param_queries` counts distinct bindings.
    #[test]
    fn fast_path_scans_once(
        db in db_strategy(),
        vs in prop::collection::vec(0i64..5, 1..7),
    ) {
        let q = parse_query("SELECT a, b FROM r WHERE k = $p.v").unwrap();
        let plan = prepare(&q, &db.catalog()).unwrap();
        prop_assert!(plan.batchable());
        let envs: Vec<ParamEnv> = vs.iter().copied().map(env).collect();
        let mut stats = EvalStats::default();
        plan.execute_batch_stats(&db, &envs, &mut stats).unwrap();
        let r_rows = prepare(&parse_query("SELECT * FROM r").unwrap(), &db.catalog())
            .unwrap()
            .execute(&db, &ParamEnv::new())
            .unwrap()
            .len() as u64;
        let mut distinct: Vec<i64> = Vec::new();
        for v in &vs {
            if !distinct.contains(v) {
                distinct.push(*v);
            }
        }
        prop_assert_eq!(stats.queries, 1);
        prop_assert_eq!(stats.rows_scanned, r_rows);
        prop_assert_eq!(stats.param_queries, distinct.len() as u64);
        prop_assert_eq!(stats.hash_join_builds, 1);
        prop_assert_eq!(stats.hash_join_build_rows, r_rows);
        prop_assert_eq!(stats.hash_join_probe_rows, distinct.len() as u64);
    }
}
