//! Property tests for the relational engine:
//!
//! * the SQL printer and parser are mutually inverse on generated ASTs;
//! * hash-join and nested-loop execution agree on every generated query;
//! * EXISTS caching never changes results;
//! * WHERE-conjunct order never changes results.

use proptest::prelude::*;
use xvc_rel::{
    eval_query_with, parse_query, AggFunc, BinOp, ColumnDef, ColumnType, Database, EvalOptions,
    ParamEnv, ScalarExpr, SelectItem, SelectQuery, TableRef, TableSchema, Value,
};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Two small tables `r(a, b, k)` and `s(c, k)` with random integer rows.
fn db_strategy() -> impl Strategy<Value = Database> {
    let row_r = (0i64..5, 0i64..5, 0i64..4);
    let row_s = (0i64..5, 0i64..4);
    (
        prop::collection::vec(row_r, 0..8),
        prop::collection::vec(row_s, 0..8),
    )
        .prop_map(|(rs, ss)| {
            let mut db = Database::new();
            db.create_table(
                TableSchema::new(
                    "r",
                    vec![
                        ColumnDef::new("a", ColumnType::Int),
                        ColumnDef::new("b", ColumnType::Int),
                        ColumnDef::new("k", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            db.create_table(
                TableSchema::new(
                    "s",
                    vec![
                        ColumnDef::new("c", ColumnType::Int),
                        ColumnDef::new("k2", ColumnType::Int),
                    ],
                )
                .unwrap(),
            );
            for (a, b, k) in rs {
                db.insert("r", vec![Value::Int(a), Value::Int(b), Value::Int(k)])
                    .unwrap();
            }
            for (c, k) in ss {
                db.insert("s", vec![Value::Int(c), Value::Int(k)]).unwrap();
            }
            db
        })
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// A conjunctive filter over `r` and `s` columns, always including the
/// equi-join key so hash joins have something to chew on. Bounds mix
/// integer and float literals (floats exercise the printer's `3.0`
/// round-trip and the evaluator's mixed-type comparisons).
fn where_strategy() -> impl Strategy<Value = ScalarExpr> {
    let atom = (
        prop_oneof![Just("a"), Just("b"), Just("c")],
        cmp_op(),
        0i64..5,
        any::<bool>(),
    )
        .prop_map(|(col, op, v, as_float)| {
            let bound = if as_float {
                ScalarExpr::Literal(Value::Float(v as f64))
            } else {
                ScalarExpr::int(v)
            };
            ScalarExpr::binary(op, ScalarExpr::col(col), bound)
        });
    prop::collection::vec(atom, 0..3).prop_map(|extra| {
        let mut pred = ScalarExpr::eq(ScalarExpr::col("k"), ScalarExpr::col("k2"));
        for e in extra {
            pred = ScalarExpr::binary(BinOp::And, pred, e);
        }
        pred
    })
}

fn join_query_strategy() -> impl Strategy<Value = SelectQuery> {
    (where_strategy(), any::<bool>(), any::<bool>()).prop_map(|(w, agg, distinct)| {
        let select = if agg {
            vec![
                SelectItem::expr(ScalarExpr::col("k")),
                SelectItem::expr(ScalarExpr::Aggregate {
                    func: AggFunc::Count,
                    arg: None,
                }),
                SelectItem::aliased(
                    ScalarExpr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(ScalarExpr::col("a"))),
                    },
                    "total",
                ),
            ]
        } else {
            vec![SelectItem::Star]
        };
        let mut q = SelectQuery::new(select, vec![TableRef::table("r"), TableRef::table("s")]);
        q.distinct = distinct && !agg;
        q.where_clause = Some(w);
        if agg {
            q.group_by = vec![ScalarExpr::col("k")];
        }
        q
    })
}

/// Sorts rows for order-insensitive comparison.
fn canonical(rel: &xvc_rel::Relation) -> Vec<String> {
    let mut rows: Vec<String> = rel
        .rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(cases(128))]

    /// print → parse is the identity on generated join queries.
    #[test]
    fn sql_printer_parser_roundtrip(q in join_query_strategy()) {
        let sql = q.to_sql();
        let reparsed = parse_query(&sql).unwrap();
        prop_assert_eq!(&q, &reparsed, "{}", sql);
        // And the printer is a fixed point.
        prop_assert_eq!(sql.clone(), reparsed.to_sql());
    }

    /// Hash joins and nested loops agree (same multiset of rows).
    #[test]
    fn hash_join_equals_nested_loop(db in db_strategy(), q in join_query_strategy()) {
        let hash = eval_query_with(&db, &q, &ParamEnv::new(), EvalOptions::default()).unwrap();
        let nested = eval_query_with(
            &db,
            &q,
            &ParamEnv::new(),
            EvalOptions { hash_joins: false, ..EvalOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(hash.columns.clone(), nested.columns.clone());
        prop_assert_eq!(canonical(&hash), canonical(&nested), "{}", q.to_sql());
    }

    /// EXISTS caching never changes results.
    #[test]
    fn exists_cache_is_transparent(db in db_strategy(), threshold in 0i64..5) {
        let q = parse_query(&format!(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE c > {threshold})"
        ))
        .unwrap();
        let qc = parse_query(&format!(
            "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE k2 = k AND c > {threshold})"
        ))
        .unwrap();
        for query in [&q, &qc] {
            let cached =
                eval_query_with(&db, query, &ParamEnv::new(), EvalOptions::default()).unwrap();
            let uncached = eval_query_with(
                &db,
                query,
                &ParamEnv::new(),
                EvalOptions { cache_uncorrelated_exists: false, ..EvalOptions::default() },
            )
            .unwrap();
            prop_assert_eq!(canonical(&cached), canonical(&uncached));
        }
    }

    /// Reordering WHERE conjuncts never changes results (the pushdown and
    /// join-key extraction must be order-insensitive in effect).
    #[test]
    fn conjunct_order_is_irrelevant(db in db_strategy(), q in join_query_strategy()) {
        fn flatten(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
            match e {
                ScalarExpr::Binary { op: BinOp::And, lhs, rhs } => {
                    flatten(lhs, out);
                    flatten(rhs, out);
                }
                other => out.push(other.clone()),
            }
        }
        let mut conjuncts = Vec::new();
        flatten(q.where_clause.as_ref().unwrap(), &mut conjuncts);
        let mut reversed = conjuncts.clone();
        reversed.reverse();
        let rebuild = |cs: &[ScalarExpr]| {
            let mut it = cs.iter().cloned();
            let first = it.next().unwrap();
            it.fold(first, |acc, c| ScalarExpr::binary(BinOp::And, acc, c))
        };
        let mut q2 = q.clone();
        q2.where_clause = Some(rebuild(&reversed));
        let a = eval_query_with(&db, &q, &ParamEnv::new(), EvalOptions::default()).unwrap();
        let b = eval_query_with(&db, &q2, &ParamEnv::new(), EvalOptions::default()).unwrap();
        prop_assert_eq!(canonical(&a), canonical(&b), "{}", q.to_sql());
    }

    /// DISTINCT is idempotent and never increases cardinality.
    #[test]
    fn distinct_laws(db in db_strategy(), q in join_query_strategy()) {
        let mut qd = q.clone();
        qd.distinct = true;
        let plain = eval_query_with(&db, &q, &ParamEnv::new(), EvalOptions::default()).unwrap();
        let distinct = eval_query_with(&db, &qd, &ParamEnv::new(), EvalOptions::default()).unwrap();
        prop_assert!(distinct.len() <= plain.len());
        let mut unique = canonical(&distinct);
        unique.dedup();
        prop_assert_eq!(unique.len(), distinct.len());
    }
}
