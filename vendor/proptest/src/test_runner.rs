//! Test-runner types: per-test configuration, the deterministic RNG, and
//! the error carried by `prop_assert!` failures.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration. Only `cases` is honored; the rest of
/// upstream's knobs (shrink iterations, persistence, …) have no meaning
/// without shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// The generator handed to strategies: a seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for one test case: a fixed mix of the test's base seed and
    /// the case index, so every run regenerates identical inputs.
    pub fn deterministic(base: u64, case: u32) -> Self {
        TestRng(StdRng::seed_from_u64(
            base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A stable base seed derived from the test's module path + name (FNV-1a),
/// optionally overridden with the `PROPTEST_RNG_SEED` environment variable
/// for replaying a whole suite under a different stream.
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(s) = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return s;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a generated case failed; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
