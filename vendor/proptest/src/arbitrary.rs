//! `any::<T>()` — canonical strategies per type.

use crate::strategy::{AnyBool, Strategy};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`: the whole domain, uniformly.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
