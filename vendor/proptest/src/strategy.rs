//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. Strategies generate values directly (no intermediate value
//! trees, no shrinking).

use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retains only values satisfying `f`. Rejection sampling: gives up
    /// with a panic after a generous retry budget, naming `whence`.
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Recursive structures: `recurse` receives the strategy for the next
    /// level down and wraps it. `_desired_size` and `_expected_branch_size`
    /// are accepted for upstream signature compatibility; only `depth`
    /// bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], the representation behind
/// [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): no accepted value in 1000 attempts",
            self.whence
        );
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            depth: self.depth,
            recurse: Rc::clone(&self.recurse),
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Uniform nesting budget in 0..=depth; each application of
        // `recurse` adds one potential level above the base leaves.
        let levels = rng.gen_range(0..=self.depth);
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.generate(rng)
    }
}

/// Weighted or uniform choice among same-typed strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn uniform(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice; weights must not all be zero.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer ranges, bool, tuples, &str-as-regex
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `bool` (used via `any::<bool>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// String literals act as regex-shaped string strategies, mirroring
/// upstream (`"[a-z]{1,8}"` generates matching strings).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic(0xfeed, 0)
    }

    #[test]
    fn map_filter_compose() {
        let s = (0u32..10)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v != 0 && v < 20);
        }
    }

    #[test]
    fn union_respects_weights() {
        let s = Union::weighted(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut r = rng();
        let ones = (0..1000).filter(|_| s.generate(&mut r) == 1).count();
        assert!(ones > 750, "ones = {ones}");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(())
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(T::Node)
            });
        let mut r = rng();
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }
}
