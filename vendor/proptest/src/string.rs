//! Regex-shaped string generation (`proptest::string::string_regex`).
//!
//! Supports the pattern subset the in-tree tests use: literal characters,
//! character classes with ranges (`[a-z0-9_]`, `[ -~]`), `\`-escapes, and
//! the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (starred/plus atoms are
//! capped at 8 repetitions to keep generated strings small).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An error from parsing an unsupported or malformed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// One repeatable unit of the pattern.
#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom may produce.
    choices: Vec<char>,
    /// Inclusive repetition bounds.
    min: u32,
    max: u32,
}

/// A strategy generating strings matching the parsed pattern.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

/// Parses `pattern` into a string strategy.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars)?,
            '\\' => {
                let esc = chars
                    .next()
                    .ok_or_else(|| Error("dangling escape".into()))?;
                vec![esc]
            }
            '.' => (' '..='~').collect(),
            '{' | '}' | '*' | '+' | '?' => {
                return Err(Error(format!("unexpected `{c}` in pattern {pattern:?}")))
            }
            other => vec![other],
        };
        if choices.is_empty() {
            return Err(Error(format!("empty character class in {pattern:?}")));
        }
        let (min, max) = parse_quantifier(&mut chars)?;
        atoms.push(Atom { choices, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, Error> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars
            .next()
            .ok_or_else(|| Error("unterminated character class".into()))?;
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                return Ok(out);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked above");
                let hi = chars
                    .next()
                    .ok_or_else(|| Error("unterminated range".into()))?;
                if hi < lo {
                    return Err(Error(format!("inverted range {lo}-{hi}")));
                }
                out.extend(lo..=hi);
            }
            '\\' => {
                if let Some(p) = pending.replace(
                    chars
                        .next()
                        .ok_or_else(|| Error("dangling escape in class".into()))?,
                ) {
                    out.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    out.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<(u32, u32), Error> {
    match chars.peek() {
        Some('?') => {
            chars.next();
            Ok((0, 1))
        }
        Some('*') => {
            chars.next();
            Ok((0, 8))
        }
        Some('+') => {
            chars.next();
            Ok((1, 8))
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (lo.trim().to_owned(), hi.trim().to_owned()),
                        None => (body.trim().to_owned(), body.trim().to_owned()),
                    };
                    let lo: u32 = lo
                        .parse()
                        .map_err(|_| Error(format!("bad quantifier {{{body}}}")))?;
                    let hi: u32 = hi
                        .parse()
                        .map_err(|_| Error(format!("bad quantifier {{{body}}}")))?;
                    if hi < lo {
                        return Err(Error(format!("inverted quantifier {{{body}}}")));
                    }
                    return Ok((lo, hi));
                }
                body.push(c);
            }
            Err(Error("unterminated quantifier".into()))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let s = string_regex(pattern).unwrap();
        let mut rng = TestRng::deterministic(0xabcd, 0);
        (0..n).map(|_| s.generate(&mut rng)).collect()
    }

    #[test]
    fn identifier_pattern() {
        for s in samples("[a-z][a-z0-9_]{0,6}", 200) {
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern() {
        for s in samples("[ -~]{0,12}", 200) {
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        for s in samples("ab[0-9]{3}", 50) {
            assert_eq!(s.len(), 5);
            assert!(s.starts_with("ab"));
            assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn malformed_patterns_error() {
        assert!(string_regex("[a-").is_err());
        assert!(string_regex("a{2,1}").is_err());
        assert!(string_regex("*").is_err());
    }
}
