//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of proptest's API its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, `Just`, `&str`-as-regex,
//!   [`collection::vec`], [`string::string_regex`], and [`arbitrary::any`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`test_runner::Config`] with `with_cases`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failure message reports the deterministic per-test seed instead, which
//! is enough to replay a case under a debugger. Generation is fully
//! deterministic per (test name, case index), so CI runs are reproducible.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`: everything the in-tree property
/// tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// The `proptest!` macro: expands each `fn name(pat in strategy, ...)` item
/// into a deterministic `#[test]` loop over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let base = $crate::test_runner::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases.max(1) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(base, case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} (base seed {:#x}) failed:\n{}",
                        case + 1,
                        config.cases,
                        base,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Fails the current proptest case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Chooses among strategies; `weight => strategy` entries bias the choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
