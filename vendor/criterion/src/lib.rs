//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `sample_size`, `criterion_group!` / `criterion_main!` —
//! with a deliberately simple measurement: per sample, the closure runs
//! in a timed batch, and the reported figure is the mean per-iteration
//! wall-clock time over `sample_size` samples (median and min/max are
//! printed alongside).
//!
//! Output is one line per benchmark:
//!
//! ```text
//! bench <group>/<id> ... mean 1.234 ms (median 1.200 ms, range 1.1..1.5 ms, N=10)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement-time budget. Accepted for API compatibility;
    /// the stand-in's sampling is bounded by [`Self::sample_size`] alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with an input value under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => f.write_str(func),
            (None, Some(p)) => f.write_str(p),
            (None, None) => f.write_str("benchmark"),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    /// Mean per-iteration duration of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then scale the batch so one sample costs
        // roughly a millisecond (bounded to keep total runtime sane).
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        let iters = if once.is_zero() {
            1000
        } else {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u32
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut means: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples.max(2) {
        let mut b = Bencher { last_mean: None };
        f(&mut b);
        if let Some(m) = b.last_mean {
            means.push(m);
        }
    }
    if means.is_empty() {
        println!("bench {label} ... no measurement (Bencher::iter never called)");
        return;
    }
    means.sort();
    let mean: Duration = means.iter().sum::<Duration>() / means.len() as u32;
    let median = means[means.len() / 2];
    println!(
        "bench {label} ... mean {} (median {}, range {}..{}, N={})",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(means[0]),
        fmt_duration(means[means.len() - 1]),
        means.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, i| {
            ran += 1;
            b.iter(|| black_box(*i * 2));
        });
        group.finish();
        assert!(ran >= 2);
    }
}
