//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace vendors the small API subset it actually
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`rngs::StdRng`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — statistically
//! strong for workload generation and fully deterministic, which is all
//! the seeded generators in `xvc-bench` require. The stream differs from
//! upstream `rand`'s `StdRng`, so seeds are not byte-compatible with
//! crates.io builds; every in-tree consumer only relies on determinism
//! within one build, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the `RngCore` subset the workspace uses.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (`seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly — the argument trait of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `x` in `0..n` (Lemire-style rejection on the top
/// bits; the loop terminates with overwhelming probability).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, per the xoshiro authors'
            // recommendation; guards against the all-zero state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&hits), "hits = {hits}");
    }
}
