#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, and the root test suite.
# Run from the repository root. Fails fast on the first broken step.
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test (tier-1)"
cargo test -q

echo "ci.sh: all green"
