#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, and the root test suite.
# Run from the repository root. Fails fast on the first broken step.
set -eu

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test (tier-1)"
cargo test -q

echo "== xvc check (examples must be error-free)"
cargo build --release --quiet --bin xvc
./target/release/xvc check \
    examples/files/guide.view examples/files/guide.xsl examples/files/schema.sql
./target/release/xvc check \
    examples/files/paper/figure1.view examples/files/paper/figure4.xsl \
    examples/files/paper/figure2.sql

echo "== xvc check --json (machine-readable gate, exits 1 on error-level codes)"
./target/release/xvc check --json \
    examples/files/guide.view examples/files/guide.xsl examples/files/schema.sql
./target/release/xvc check --json \
    examples/files/paper/figure1.view examples/files/paper/figure4.xsl \
    examples/files/paper/figure2.sql

echo "== figures -- batch (prepared-plan + set-oriented benchmark gates)"
# The binary verifies v'(I) = x(v(I)) and batched == scalar documents
# before timing, aborts on a warm publish that misses the plan cache, and
# aborts if the batched publisher is slower than tuple-at-a-time on the
# fan-out workload. The greps double-check the written artifact.
cargo run --release --quiet -p xvc-bench --bin figures -- batch
if grep -q '"plan_cache_hit_rate": 0\.000' BENCH_compose.json; then
    echo "ci.sh: plan cache never hit (see BENCH_compose.json)" >&2
    exit 1
fi
if ! grep -q '"eval_batched_ms"' BENCH_compose.json; then
    echo "ci.sh: batch study missing from BENCH_compose.json" >&2
    exit 1
fi

echo "== figures -- fuzz (recursion-heavy / wide-fanout differential gate)"
# Runs the two stress generator presets differentially: v'(I) must equal
# x(v(I)), the bound-driven publisher must match the heuristic path
# byte-for-byte, and measured batch sizes must stay within the static
# cardinality bounds. The binary aborts on any divergence.
cargo run --release --quiet -p xvc-bench --bin figures -- fuzz

echo "== figures -- scale smoke (storage/access-path gates, reduced sizes)"
# The binary publishes the needle view against the in-memory, paged, and
# indexed backends, aborts if any document diverges from the in-memory
# reference, and aborts if the index path is slower than the full scan (or
# scans as many rows) at the largest smoke size. The greps double-check
# the written artifact.
cargo run --release --quiet -p xvc-bench --bin figures -- scale smoke
if ! grep -q '"eval_indexed_ms"' BENCH_compose.json; then
    echo "ci.sh: scale study missing from BENCH_compose.json" >&2
    exit 1
fi
if ! grep -q '"eval_paged_ms"' BENCH_compose.json; then
    echo "ci.sh: paged backend missing from the scale study" >&2
    exit 1
fi
if grep -q '"index_lookups": 0' BENCH_compose.json; then
    echo "ci.sh: scale study never probed an index (see BENCH_compose.json)" >&2
    exit 1
fi

echo "== figures -- incr smoke (delta-publish gates, reduced sizes)"
# The binary inserts one row through the xvc_rel write path and absorbs
# the delta via Publisher::republish_delta, aborting if the delta document
# diverges from a full republish, if the re-executed batch count grows
# with instance size, or if the delta path re-runs >= 20% of the full
# batch count at the largest size. The greps double-check the artifact.
cargo run --release --quiet -p xvc-bench --bin figures -- incr smoke
if ! grep -q '"eval_full_republish_ms"' BENCH_compose.json; then
    echo "ci.sh: incremental study missing from BENCH_compose.json" >&2
    exit 1
fi
if ! grep -q '"eval_delta_ms"' BENCH_compose.json; then
    echo "ci.sh: delta timings missing from the incremental study" >&2
    exit 1
fi
if grep -q '"batches_delta": 0' BENCH_compose.json; then
    echo "ci.sh: delta path never re-executed a batch (see BENCH_compose.json)" >&2
    exit 1
fi

echo "== figures -- stream smoke (streamed-emission gates, reduced sizes)"
# The binary publishes the same instances by materialize-then-serialize
# and by Session::publish_to, aborting on any byte divergence, on streamed
# emission >25% slower than materialized at the largest size (both
# timings share the dominant relational term, so the gate carries its
# noise), or on a streamed peak-allocation track that grows with document
# size (it must stay within 2x across the 10x sweep). The greps
# double-check the written artifact.
cargo run --release --quiet -p xvc-bench --bin figures -- stream smoke
if ! grep -q '"emit_streamed_ms"' BENCH_compose.json; then
    echo "ci.sh: stream study missing from BENCH_compose.json" >&2
    exit 1
fi
if ! grep -q '"emit_materialized_ms"' BENCH_compose.json; then
    echo "ci.sh: materialized timings missing from the stream study" >&2
    exit 1
fi
if grep -q '"peak_track_bytes_streamed": 0' BENCH_compose.json; then
    echo "ci.sh: stream study tracked no emission allocations" >&2
    exit 1
fi

echo "== xvc serve smoke (concurrent publishing server + load driver)"
# Start the server on an ephemeral-ish port, generate the single-process
# reference document with `xvc run`, then drive 4 concurrent clients for
# ~2s. serve_load exits nonzero on any error or response that diverges
# from the reference, and the greps double-check the written artifact.
mkdir -p artifacts
SERVE_ADDR=127.0.0.1:7171
./target/release/xvc run \
    --view examples/files/guide.view --xslt examples/files/guide.xsl \
    --ddl examples/files/schema.sql --data examples/files/data \
    2>/dev/null > artifacts/serve_expected.xml
cargo build --release --quiet -p xvc-bench --bin serve_load
./target/release/xvc serve \
    --view examples/files/guide.view --xslt examples/files/guide.xsl \
    --ddl examples/files/schema.sql --data examples/files/data \
    --addr "$SERVE_ADDR" --threads 4 2>/dev/null &
SERVE_PID=$!
serve_cleanup() {
    kill "$SERVE_PID" 2>/dev/null || true
}
trap serve_cleanup EXIT
if ! ./target/release/serve_load \
    --addr "$SERVE_ADDR" --clients 4 --seconds 2 \
    --expected artifacts/serve_expected.xml --out BENCH_serve.json; then
    echo "ci.sh: serve load run failed (errors or divergent responses)" >&2
    exit 1
fi
# GET /publish streams chunked; an independent client (python's stdlib
# decoder, not the serve_load one) must see Transfer-Encoding: chunked and
# decode to exactly the single-process `xvc run` document.
python3 - "$SERVE_ADDR" <<'PYEOF'
import http.client, sys
host, port = sys.argv[1].rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=30)
conn.request("GET", "/publish")
resp = conn.getresponse()
assert resp.status == 200, f"/publish returned {resp.status}"
te = resp.getheader("Transfer-Encoding")
assert te == "chunked", f"/publish is not chunked (Transfer-Encoding: {te})"
ct = resp.getheader("Content-Type")
assert ct == "application/xml; charset=utf-8", f"bad Content-Type: {ct}"
body = resp.read().decode("utf-8")
with open("artifacts/serve_expected.xml", encoding="utf-8") as f:
    expected = f.read()
assert body.strip() == expected.strip(), \
    "chunked /publish decoded differently from the xvc run reference"
print("chunked /publish byte-identical to the xvc run reference")
PYEOF
for key in throughput_rps p50_ms p99_ms; do
    if ! grep -q "\"$key\"" BENCH_serve.json; then
        echo "ci.sh: $key missing from BENCH_serve.json" >&2
        exit 1
    fi
done
if ! grep -q '"errors": 0' BENCH_serve.json; then
    echo "ci.sh: serve load reported errors (see BENCH_serve.json)" >&2
    exit 1
fi
if ! grep -q '"divergent": 0' BENCH_serve.json; then
    echo "ci.sh: served documents diverged (see BENCH_serve.json)" >&2
    exit 1
fi
if ! grep -q '"warm_plan_cache_hit_rate": 1\.0' BENCH_serve.json; then
    echo "ci.sh: warm plan cache hit rate under load is not 1.0" >&2
    exit 1
fi
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
trap - EXIT

echo "ci.sh: all green"
